#include "hauberk/lint.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <numeric>
#include <optional>
#include <set>

#include "hauberk/plan.hpp"
#include "kir/analysis.hpp"

namespace hauberk::lint {

namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

int severity_rank(Severity s) { return static_cast<int>(s); }

/// Excluded from the coverage universe: instrumentation-owned state.  Their
/// corruption is either self-detecting (counters/accumulators feed a check by
/// construction) or handled by the duplication compare itself (shadows).
bool internal_var(const kir::Kernel& k, kir::VarId v) {
  const auto& info = k.vars[v];
  if (info.scatter_shadow) return true;
  if (info.name.rfind("__hbk_", 0) == 0) return true;
  const std::string suffix = "__shadow";
  return info.name.size() >= suffix.size() &&
         info.name.compare(info.name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

kir::VarId var_by_name(const kir::Kernel& k, const std::string& name) {
  for (kir::VarId v = 0; v < k.vars.size(); ++v)
    if (k.vars[v].name == name) return v;
  return kir::kInvalidVar;
}

// ---------------------------------------------------------------------------
// Bounds / barrier / overlap analyzers (over the interval fixpoint facts)
// ---------------------------------------------------------------------------

bool is_shared(kir::AccessKind k) {
  return k == kir::AccessKind::LoadShared || k == kir::AccessKind::StoreShared;
}
bool is_memory(kir::AccessKind k) { return k != kir::AccessKind::Barrier; }

/// pc and dense-sanitizer-site provenance for the ordinal-th access fact.
struct Provenance {
  std::vector<std::int64_t> pcs;    ///< per AccessFact ordinal, or empty
  std::vector<std::int64_t> sites;  ///< dense site id per ordinal, -1 if none
};

Provenance make_provenance(const kir::IntervalAnalysis& ia, const kir::BytecodeProgram* p) {
  Provenance out;
  const auto& acc = ia.accesses();
  if (p != nullptr) {
    auto pcs = kir::access_pcs(*p);
    if (pcs.size() == acc.size()) out.pcs = std::move(pcs);
  }
  // Dense sanitizer site ids are assigned to Barrier/LoadS/StoreS in pc
  // order (kir::decode_program), which matches access lowering order.
  out.sites.assign(acc.size(), -1);
  std::int64_t next = 0;
  for (std::size_t i = 0; i < acc.size(); ++i)
    if (is_shared(acc[i].kind) || acc[i].kind == kir::AccessKind::Barrier)
      out.sites[i] = next++;
  return out;
}

void check_bounds(const kir::IntervalAnalysis& ia, const Provenance& prov,
                  std::vector<Diagnostic>& out) {
  const double shared_hi = static_cast<double>(ia.shared_words()) - 1.0;
  const double global_hi = static_cast<double>(ia.env().global_words) - 1.0;
  for (const auto& a : ia.accesses()) {
    if (!is_memory(a.kind) || !a.reached) continue;
    const bool shared = is_shared(a.kind);
    const auto bounds = kir::ValInterval::range(0.0, shared ? shared_hi : global_hi);
    if (bounds.contains(a.addr)) continue;
    Diagnostic d;
    d.kind = DiagKind::PossibleOob;
    const bool always = kir::meet(bounds, a.addr).is_empty();
    d.severity = always ? Severity::Error : Severity::Warning;
    d.message = fmt("%s address %s %s %s memory bounds %s", kir::access_kind_name(a.kind),
                    a.addr.to_string().c_str(), always ? "is entirely outside" : "may escape",
                    shared ? "shared" : "global", bounds.to_string().c_str());
    if (!prov.pcs.empty()) d.pc = prov.pcs[static_cast<std::size_t>(a.ordinal)];
    d.site = prov.sites[static_cast<std::size_t>(a.ordinal)];
    out.push_back(std::move(d));
  }
}

void check_barriers(const kir::IntervalAnalysis& ia, const Provenance& prov,
                    std::vector<Diagnostic>& out) {
  for (const auto& a : ia.accesses()) {
    if (a.kind != kir::AccessKind::Barrier || !a.reached || !a.divergent_control) continue;
    Diagnostic d;
    d.kind = DiagKind::NonUniformBarrier;
    d.severity = Severity::Warning;
    d.message = "barrier under thread-dependent control flow: threads of a block may "
                "diverge around it and deadlock";
    if (!prov.pcs.empty()) d.pc = prov.pcs[static_cast<std::size_t>(a.ordinal)];
    d.site = prov.sites[static_cast<std::size_t>(a.ordinal)];
    out.push_back(std::move(d));
  }
}

/// Does [lo, hi] contain an integer multiple of g (g > 0)?
bool has_multiple(double lo, double hi, double g) {
  return std::floor(hi / g) >= std::ceil(lo / g);
}

/// Can two *distinct* threads of a block write the same shared word, given
/// that their address difference is `p + m` with p in [plo, phi] (the
/// tid-coefficient part plus base difference) and m any multiple of `g`
/// bounded by |m| <= B (the iterator delta set)?
bool delta_can_be_zero(double plo, double phi, double g, double B) {
  // Need m with -m in [plo, phi], |m| <= B, m multiple of g.
  const double lo = std::max(-phi, -B), hi = std::min(-plo, B);
  if (lo > hi) return false;
  if (g <= 0.0) return lo <= 0.0 && 0.0 <= hi;
  return has_multiple(lo, hi, g);
}

void check_overlap(const kir::IntervalAnalysis& ia, const Provenance& prov,
                   std::vector<Diagnostic>& out) {
  const auto& env = ia.env();
  const std::int64_t bx = env.block_x, by = env.block_y;
  if (bx * by < 2) return;  // single-thread blocks cannot conflict
  const auto& acc = ia.accesses();

  struct St {
    const kir::SharedStoreFootprint* fp;
    const kir::AccessFact* a;
  };
  std::vector<St> stores;
  for (const auto& fp : ia.shared_stores()) {
    const auto& a = acc[static_cast<std::size_t>(fp.access)];
    if (a.reached) stores.push_back({&fp, &a});
  }

  // Two dynamic store instances can race only when no barrier is guaranteed
  // between them.  Statically: equal pre-order epoch, or both inside loops
  // (the loop back-edge can bring the later store around to before the
  // earlier one without crossing a barrier).
  auto comparable = [](const St& x, const St& y) {
    return x.a->epoch == y.a->epoch || (x.a->in_loop && y.a->in_loop);
  };

  // Collision test between store instances executed by two distinct threads
  // (dtx, dty) apart.  Returns {may_collide, proven} where proven means a
  // zero-delta witness exists with no approximation involved.
  auto affine_pair = [&](const St& x, const St& y, bool& proven) -> bool {
    const auto& f = *x.fp;
    const auto& g = *y.fp;
    // Different tid coefficients: the thread terms do not cancel, so fall
    // back to plain interval disjointness.
    if (f.a != g.a || f.b != g.b) return !kir::meet(x.a->addr, y.a->addr).is_empty();
    // Base difference interval (0 for a self-pair by construction).
    double blo = 0.0, bhi = 0.0;
    if (&f != &g) {
      blo = g.base.lo - f.base.hi;
      bhi = g.base.hi - f.base.lo;
    } else {
      // One syntactic store joined over visits: the thread-uniform base is
      // identical for both threads, but joins may have widened it; only the
      // width can separate the two instances.
      bhi = f.base.width();
      blo = -bhi;
    }
    const double stride =
        f.iter_stride == 0.0
            ? g.iter_stride
            : (g.iter_stride == 0.0
                   ? f.iter_stride
                   : static_cast<double>(std::gcd(static_cast<std::int64_t>(f.iter_stride),
                                                  static_cast<std::int64_t>(g.iter_stride))));
    const double bound = f.iter_bound + g.iter_bound;
    for (std::int64_t dty = -(by - 1); dty <= by - 1; ++dty) {
      for (std::int64_t dtx = -(bx - 1); dtx <= bx - 1; ++dtx) {
        if (dtx == 0 && dty == 0) continue;
        const double dist = f.a * static_cast<double>(dtx) + f.b * static_cast<double>(dty);
        if (!delta_can_be_zero(dist + blo, dist + bhi, stride, bound)) continue;
        // Exact witness: zero base slack, no iterator delta needed, and both
        // threads provably reach the store (uniform control flow).
        proven = blo == 0.0 && bhi == 0.0 && dist == 0.0 && !x.a->divergent_control &&
                 !y.a->divergent_control;
        return true;
      }
    }
    return false;
  };

  auto emit = [&](const St& x, const St& y, bool proven, const char* how) {
    Diagnostic d;
    d.kind = DiagKind::SharedWriteOverlap;
    d.severity = proven ? Severity::Error : Severity::Warning;
    const bool self = x.fp == y.fp;
    d.message = fmt("shared stores %s %s write the same word from distinct threads (%s)",
                    self ? "at one site" : "at two sites", proven ? "provably" : "may",
                    how);
    if (!prov.pcs.empty()) {
      d.pc = prov.pcs[static_cast<std::size_t>(x.a->ordinal)];
      if (!self) d.other_pc = prov.pcs[static_cast<std::size_t>(y.a->ordinal)];
    }
    d.site = prov.sites[static_cast<std::size_t>(x.a->ordinal)];
    out.push_back(std::move(d));
  };

  for (std::size_t i = 0; i < stores.size(); ++i) {
    for (std::size_t j = i; j < stores.size(); ++j) {
      const St& x = stores[i];
      const St& y = stores[j];
      if (!comparable(x, y)) continue;
      if (x.fp->affine && y.fp->affine) {
        bool proven = false;
        if (affine_pair(x, y, proven)) emit(x, y, proven, "affine footprint collision");
        continue;
      }
      // Non-affine fallback: plain address-interval overlap.  A point
      // address reached under uniform control is a proven conflict (every
      // thread writes that word).
      const auto m = kir::meet(x.a->addr, y.a->addr);
      if (m.is_empty()) continue;
      const bool proven = i == j && x.a->addr.is_point() && !x.a->divergent_control;
      emit(x, y, proven, "non-affine address intervals intersect");
    }
  }
}

// ---------------------------------------------------------------------------
// Range cross-check (Fig. 16: profiled vs sound static ranges)
// ---------------------------------------------------------------------------

void check_ranges(const kir::IntervalAnalysis& ia, const std::vector<ObservedRange>& observed,
                  std::vector<Diagnostic>& out, std::vector<StaticDetectorRange>& ranges) {
  for (const auto& det : ia.detectors()) {
    StaticDetectorRange r;
    r.detector = det.detector;
    r.label = det.label;
    r.type = det.type;
    r.value = det.value;
    ranges.push_back(std::move(r));
  }
  for (const auto& obs : observed) {
    const kir::DetectorValueFact* det = nullptr;
    for (const auto& d : ia.detectors())
      if (d.detector == obs.detector) det = &d;
    if (det == nullptr || obs.samples == 0) continue;
    const auto o = kir::ValInterval::range(obs.lo, obs.hi);
    Diagnostic d;
    d.detector = obs.detector;
    if (!det->value.contains(o)) {
      d.kind = DiagKind::StaticRangeUnsound;
      d.severity = Severity::Error;
      d.message = fmt("detector '%s': profiled range %s escapes the sound static interval "
                      "%s — profiler or analysis defect",
                      det->label.c_str(), o.to_string().c_str(),
                      det->value.to_string().c_str());
      out.push_back(std::move(d));
    } else if (det->value.finite() && (o.lo > det->value.lo || o.hi < det->value.hi)) {
      d.kind = DiagKind::RangeTighterThanStatic;
      d.severity = Severity::Remark;
      const double slack = det->value.width() - o.width();
      d.message = fmt("detector '%s': profiled range %s is tighter than the static interval "
                      "%s; %g units of legal value space would be flagged as SDC "
                      "(Fig. 16 false-positive exposure)",
                      det->label.c_str(), o.to_string().c_str(),
                      det->value.to_string().c_str(), slack);
      out.push_back(std::move(d));
    }
  }
}

// ---------------------------------------------------------------------------
// Detector-coverage analyzer (Fig. 9 graph walk)
// ---------------------------------------------------------------------------

struct CoverageCtx {
  std::set<kir::VarId> protected_direct;
  std::map<kir::VarId, std::set<kir::VarId>> deps;  ///< var -> vars its defs read
  bool any_detector = false;
};

void scan_coverage(const kir::Kernel& k, const kir::Analysis& an, const kir::StmtList& body,
                   CoverageCtx& ctx) {
  for (const auto& s : body) {
    switch (s->kind) {
      case kir::StmtKind::Let:
      case kir::StmtKind::Assign:
        kir::Analysis::collect_reads(s->value, ctx.deps[s->var]);
        break;
      case kir::StmtKind::For: {
        auto& d = ctx.deps[s->var];
        kir::Analysis::collect_reads(s->init, d);
        kir::Analysis::collect_reads(s->limit, d);
        kir::Analysis::collect_reads(s->step, d);
        scan_coverage(k, an, s->body, ctx);
        break;
      }
      case kir::StmtKind::While:
      case kir::StmtKind::If:
        scan_coverage(k, an, s->body, ctx);
        scan_coverage(k, an, s->else_body, ctx);
        break;
      case kir::StmtKind::DupCheck:
        ctx.any_detector = true;
        if (s->var != kir::kInvalidVar) ctx.protected_direct.insert(s->var);
        break;
      case kir::StmtKind::ChecksumXor:
        ctx.any_detector = true;
        if (s->value && s->value->kind == kir::ExprKind::VarRef)
          ctx.protected_direct.insert(s->value->var);
        break;
      case kir::StmtKind::RangeCheck:
      case kir::StmtKind::ProfileValue: {
        ctx.any_detector = true;
        const kir::VarId v = var_by_name(k, s->label);
        if (v != kir::kInvalidVar) ctx.protected_direct.insert(v);
        break;
      }
      case kir::StmtKind::EqualCheck: {
        // Iteration-count check: protects the loop's iterator.
        ctx.any_detector = true;
        const std::string prefix = "__iter_check_loop";
        if (s->label.rfind(prefix, 0) == 0) {
          const auto id = static_cast<std::uint32_t>(std::atoi(s->label.c_str() + prefix.size()));
          if (id < an.loops().size() && an.loop(id).iterator != kir::kInvalidVar)
            ctx.protected_direct.insert(an.loop(id).iterator);
        }
        break;
      }
      default:
        break;
    }
  }
}

void check_coverage(const kir::Kernel& k, kir::AnalysisManager& am,
                    const core::HardeningPlan* plan, Coverage& cov,
                    std::vector<Diagnostic>& out) {
  const auto& an = am.analysis();
  CoverageCtx ctx;
  scan_coverage(k, an, k.body, ctx);
  if (!ctx.any_detector) return;  // uninstrumented kernel: nothing to grade

  // Plan-aware exclusions: a variable/loop the active HardeningPlan
  // deliberately leaves unprotected is an accepted budget decision, not an
  // instrumentation gap.
  const core::KernelPlan* kp = plan ? plan->find(k.name) : nullptr;
  const auto var_excluded = [&](kir::VarId v) {
    return kp != nullptr && (kp->nonloop == core::Tri::Off ||
                             !core::plan_allows_var(*kp, k.vars[v].name));
  };
  const auto loop_excluded = [&](std::uint32_t loop_id) {
    return kp != nullptr &&
           (kp->loops == core::Tri::Off || !core::plan_allows_loop(*kp, loop_id));
  };

  // Covered = detector-protected variables plus everything backward-reachable
  // from them through def-reads edges (an error in an input propagates into
  // the checked value, Section V.B's cumulative-backward-dependency rule).
  std::set<kir::VarId> covered;
  std::vector<kir::VarId> work(ctx.protected_direct.begin(), ctx.protected_direct.end());
  while (!work.empty()) {
    const kir::VarId v = work.back();
    work.pop_back();
    if (!covered.insert(v).second) continue;
    const auto it = ctx.deps.find(v);
    if (it == ctx.deps.end()) continue;
    for (const kir::VarId u : it->second) work.push_back(u);
  }

  for (kir::VarId v = 0; v < k.vars.size(); ++v) {
    if (internal_var(k, v)) continue;
    ++cov.total_vars;
    if (covered.count(v) != 0) {
      ++cov.covered_vars;
      continue;
    }
    Diagnostic d;
    d.var = v;
    if (var_excluded(v)) {
      ++cov.excluded_vars;
      d.kind = DiagKind::ExcludedByPlan;
      d.severity = Severity::Remark;
      d.message = fmt("variable '%s' is unprotected because the active hardening plan "
                      "excludes it from non-loop protection",
                      k.vars[v].name.c_str());
    } else {
      d.kind = DiagKind::UncoveredVariable;
      d.severity = Severity::Warning;
      d.message = fmt("variable '%s' is reached by no detector: corruption of it cannot "
                      "surface through ChkXor/DupCmp/RangeCheck or an accumulator",
                      k.vars[v].name.c_str());
    }
    out.push_back(std::move(d));
  }

  // Fig. 9 dataflow edges, graded per loop graph.
  for (const auto& loop : an.loops()) {
    const auto& df = am.loop_dataflow(loop.id);
    for (const auto& [def, uses] : df.uses) {
      if (internal_var(k, def)) continue;
      for (const kir::VarId use : uses) {
        if (internal_var(k, use)) continue;
        ++cov.total_edges;
        if (covered.count(def) != 0) {
          ++cov.covered_edges;
          continue;
        }
        Diagnostic d;
        d.var = def;
        d.var2 = use;
        d.loop_id = loop.id;
        if (loop_excluded(loop.id)) {
          ++cov.excluded_edges;
          d.kind = DiagKind::ExcludedByPlan;
          d.severity = Severity::Remark;
          d.message = fmt("dataflow edge '%s' -> '%s' is unprotected because the active "
                          "hardening plan excludes loop %u from loop detectors",
                          k.vars[use].name.c_str(), k.vars[def].name.c_str(), loop.id);
        } else {
          d.kind = DiagKind::UncoveredEdge;
          d.severity = Severity::Warning;
          d.message = fmt("dataflow edge '%s' -> '%s' in loop %u flows into no detector",
                          k.vars[use].name.c_str(), k.vars[def].name.c_str(), loop.id);
        }
        out.push_back(std::move(d));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Report assembly and printers
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += fmt("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

std::string json_num(double v) {
  if (std::isnan(v)) return "\"nan\"";
  if (std::isinf(v)) return v > 0 ? "\"inf\"" : "\"-inf\"";
  std::string s = fmt("%.17g", v);
  return s;
}

}  // namespace

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Remark: return "remark";
  }
  return "?";
}

const char* diag_kind_name(DiagKind k) noexcept {
  switch (k) {
    case DiagKind::PossibleOob: return "PossibleOob";
    case DiagKind::NonUniformBarrier: return "NonUniformBarrier";
    case DiagKind::SharedWriteOverlap: return "SharedWriteOverlap";
    case DiagKind::StaticRangeUnsound: return "StaticRangeUnsound";
    case DiagKind::RangeTighterThanStatic: return "RangeTighterThanStatic";
    case DiagKind::UncoveredVariable: return "UncoveredVariable";
    case DiagKind::UncoveredEdge: return "UncoveredEdge";
    case DiagKind::ExcludedByPlan: return "ExcludedByPlan";
  }
  return "?";
}

bool LintReport::has(DiagKind k) const noexcept { return count(k) > 0; }

int LintReport::count(DiagKind k) const noexcept {
  int n = 0;
  for (const auto& d : diagnostics) n += d.kind == k;
  return n;
}

std::string LintReport::to_string() const {
  std::string out = fmt("%s: %d error(s), %d warning(s), %d remark(s)", kernel.c_str(), errors,
                        warnings, remarks);
  if (coverage.total_vars != 0 || coverage.total_edges != 0) {
    out += fmt("; detector coverage %d/%d vars (%.1f%%), %d/%d edges (%.1f%%)",
               coverage.covered_vars, coverage.total_vars, coverage.var_pct(),
               coverage.covered_edges, coverage.total_edges, coverage.edge_pct());
    if (coverage.excluded_vars != 0 || coverage.excluded_edges != 0)
      out += fmt(" [%d vars, %d edges excluded by plan]", coverage.excluded_vars,
                 coverage.excluded_edges);
  }
  out += "\n";
  for (const auto& d : diagnostics) {
    out += fmt("  %s [%s] %s", severity_name(d.severity), diag_kind_name(d.kind),
               d.message.c_str());
    if (d.pc >= 0) out += fmt(" (pc %" PRId64 "%s)", d.pc,
                              d.other_pc >= 0 ? fmt(" vs pc %" PRId64, d.other_pc).c_str() : "");
    if (d.site >= 0) out += fmt(" (site %" PRId64 ")", d.site);
    out += "\n";
  }
  return out;
}

std::string LintReport::to_json() const {
  std::string out = "{\n";
  out += fmt("  \"kernel\": \"%s\",\n", json_escape(kernel).c_str());
  out += fmt("  \"errors\": %d,\n  \"warnings\": %d,\n  \"remarks\": %d,\n", errors, warnings,
             remarks);
  out += fmt("  \"coverage\": {\"total_vars\": %d, \"covered_vars\": %d, "
             "\"excluded_vars\": %d, \"total_edges\": %d, \"covered_edges\": %d, "
             "\"excluded_edges\": %d},\n",
             coverage.total_vars, coverage.covered_vars, coverage.excluded_vars,
             coverage.total_edges, coverage.covered_edges, coverage.excluded_edges);
  out += "  \"diagnostics\": [";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const auto& d = diagnostics[i];
    out += i == 0 ? "\n" : ",\n";
    out += fmt("    {\"kind\": \"%s\", \"severity\": \"%s\", \"pc\": %" PRId64
               ", \"other_pc\": %" PRId64 ", \"site\": %" PRId64
               ", \"var\": %d, \"var2\": %d, \"detector\": %d, \"loop\": %d, "
               "\"message\": \"%s\"}",
               diag_kind_name(d.kind), severity_name(d.severity), d.pc, d.other_pc, d.site,
               d.var == kir::kInvalidVar ? -1 : static_cast<int>(d.var),
               d.var2 == kir::kInvalidVar ? -1 : static_cast<int>(d.var2), d.detector,
               d.loop_id == kir::kNoLoop ? -1 : static_cast<int>(d.loop_id),
               json_escape(d.message).c_str());
  }
  out += diagnostics.empty() ? "],\n" : "\n  ],\n";
  out += "  \"detector_ranges\": [";
  for (std::size_t i = 0; i < detector_ranges.size(); ++i) {
    const auto& r = detector_ranges[i];
    out += i == 0 ? "\n" : ",\n";
    out += fmt("    {\"detector\": %d, \"label\": \"%s\", \"type\": \"%s\", \"lo\": %s, "
               "\"hi\": %s}",
               r.detector, json_escape(r.label).c_str(), kir::dtype_name(r.type),
               json_num(r.value.lo).c_str(), json_num(r.value.hi).c_str());
  }
  out += detector_ranges.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

LintReport run_lint(const kir::Kernel& kernel, const LintOptions& opt,
                    kir::AnalysisManager* am) {
  std::optional<kir::AnalysisManager> local;
  if (am == nullptr) {
    local.emplace(kernel);
    am = &*local;
  }
  LintReport rep;
  rep.kernel = kernel.name;

  const auto& ia = am->intervals(opt.env);
  const Provenance prov = make_provenance(ia, opt.program);

  if (opt.check_bounds) check_bounds(ia, prov, rep.diagnostics);
  if (opt.check_barriers) check_barriers(ia, prov, rep.diagnostics);
  if (opt.check_overlap) check_overlap(ia, prov, rep.diagnostics);
  check_ranges(ia, opt.observed, rep.diagnostics, rep.detector_ranges);
  if (opt.check_coverage)
    check_coverage(kernel, *am, opt.plan, rep.coverage, rep.diagnostics);

  std::stable_sort(rep.diagnostics.begin(), rep.diagnostics.end(),
                   [](const Diagnostic& x, const Diagnostic& y) {
                     if (x.severity != y.severity)
                       return severity_rank(x.severity) < severity_rank(y.severity);
                     if (x.kind != y.kind) return x.kind < y.kind;
                     if (x.pc != y.pc) return x.pc < y.pc;
                     if (x.site != y.site) return x.site < y.site;
                     if (x.var != y.var) return x.var < y.var;
                     if (x.detector != y.detector) return x.detector < y.detector;
                     if (x.loop_id != y.loop_id) return x.loop_id < y.loop_id;
                     return x.message < y.message;
                   });
  for (const auto& d : rep.diagnostics) {
    rep.errors += d.severity == Severity::Error;
    rep.warnings += d.severity == Severity::Warning;
    rep.remarks += d.severity == Severity::Remark;
  }
  return rep;
}

kir::IntervalEnv env_for(const gpusim::LaunchConfig& cfg, std::span<const kir::Value> args,
                         const gpusim::DeviceProps& props) {
  kir::IntervalEnv env;
  env.block_x = cfg.block_x;
  env.block_y = cfg.block_y;
  env.grid_x = cfg.grid_x;
  env.grid_y = cfg.grid_y;
  // shared_words stays 0: the kernel's own allocation is the bound the
  // dynamic engines enforce, not the device capacity.
  env.global_words = props.global_mem_words;
  env.params.reserve(args.size());
  for (const auto& v : args) env.params.push_back(kir::ValInterval::point(v.as_double()));
  return env;
}

}  // namespace hauberk::lint
