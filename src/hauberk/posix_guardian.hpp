// Process-level guardian (Section VI(i), Fig. 6): the paper's guardian is a
// *parent process* of the instrumented GPU program — a GPU kernel failure
// can take the whole host process down under the conservative fail-stop
// policy, so supervision must live outside the failure domain.  The OS
// notifies the parent via SIGCHLD; the guardian also kills children that
// exceed their time budget (preemptive hang detection) and restarts failed
// runs.
//
// This class is the real POSIX implementation: fork(), a pipe for the
// child's result blob (output digest + SDC flag), waitpid(), kill() on
// timeout.  The in-process core::Guardian implements the same Fig. 11
// diagnosis over the simulator; this one demonstrates the paper's actual
// process architecture and is exercised by tests/test_posix_guardian.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace hauberk::core {

/// What the supervised child reports back through the pipe on clean exit.
struct ChildReport {
  std::uint64_t output_digest = 0;  ///< FNV-1a over the program output words
  std::uint8_t sdc_alarm = 0;       ///< Hauberk detectors raised the SDC bit
  std::uint8_t ok = 0;              ///< report is valid
};

enum class ChildStatus : std::uint8_t {
  CleanNoAlarm,   ///< exited 0, no SDC alarm
  CleanWithAlarm, ///< exited 0, SDC alarm set (needs diagnosis)
  Crashed,        ///< abnormal termination (signal / nonzero exit)
  Hung,           ///< killed by the guardian's timeout
};

struct SupervisedRun {
  ChildStatus status = ChildStatus::Crashed;
  ChildReport report;
  int wait_status = 0;   ///< raw waitpid status
  bool killed = false;
};

struct ProcessOutcome {
  /// Final Fig. 11-style verdict at the process level.
  enum class Verdict : std::uint8_t {
    Success,
    FalseAlarmOrTransient,  ///< alarm diagnosed benign by reexecution
    RecoveredByRestart,     ///< failure, restart succeeded
    SdcSuspected,           ///< alarms with differing outputs (device diagnosis due)
    Failed,                 ///< repeated failure
  };
  Verdict verdict = Verdict::Failed;
  int executions = 0;
  int restarts = 0;
  SupervisedRun last;
};

[[nodiscard]] const char* process_verdict_name(ProcessOutcome::Verdict v) noexcept;

class PosixGuardian {
 public:
  struct Config {
    double timeout_seconds = 10.0;  ///< preemptive hang kill (paper: T x previous + interval)
    int max_restarts = 2;           ///< restarts before giving up
  };

  PosixGuardian() = default;
  explicit PosixGuardian(Config cfg) : cfg_(cfg) {}

  /// Fork and run `child` once under supervision.  The child runs the GPU
  /// program and fills the report (digest of its output, SDC flag); any
  /// crash, nonzero exit, or timeout is classified.  The parent never shares
  /// state with the child beyond the report pipe.
  [[nodiscard]] SupervisedRun run_once(const std::function<ChildReport()>& child) const;

  /// Full supervision loop: restart on failure up to max_restarts; on an SDC
  /// alarm, reexecute and compare output digests (identical -> false alarm /
  /// benign, differing -> SDC suspected, clean -> transient recovered).
  [[nodiscard]] ProcessOutcome supervise(const std::function<ChildReport()>& child) const;

  /// FNV-1a digest helper for child output buffers.
  [[nodiscard]] static std::uint64_t digest(const void* data, std::size_t bytes) noexcept;

 private:
  Config cfg_{};
};

}  // namespace hauberk::core
