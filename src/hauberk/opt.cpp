#include "hauberk/opt.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

namespace hauberk::opt {

namespace {

using core::HardeningPlan;
using core::KernelPlan;
using core::TranslateOptions;
using core::Tri;

/// Mirrors lint.cpp's internal_var: instrumentation-owned variables are
/// invisible to the coverage universe.
bool internal_var(const kir::Kernel& k, kir::VarId v) {
  const auto& info = k.vars[v];
  if (info.scatter_shadow) return true;
  if (info.name.rfind("__hbk_", 0) == 0) return true;
  const std::string suffix = "__shadow";
  return info.name.size() >= suffix.size() &&
         info.name.compare(info.name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The coverage universe lint grades: every non-internal variable, and every
/// non-internal (loop, def, use) dataflow edge.  Built from the *pristine*
/// kernel — instrumentation only adds internal items, so the identities (and
/// therefore lint's totals) are the same in every build of the kernel.
struct Universe {
  std::map<std::string, std::uint32_t> var_index;
  std::map<std::tuple<std::uint32_t, std::string, std::string>, std::uint32_t> edge_index;
  std::size_t num_vars = 0;
  [[nodiscard]] std::size_t size() const { return var_index.size() + edge_index.size(); }
};

Universe build_universe(const kir::Kernel& kernel) {
  Universe u;
  kir::AnalysisManager am(kernel);
  const kir::Analysis& an = am.analysis();
  std::uint32_t next = 0;
  for (kir::VarId v = 0; v < kernel.vars.size(); ++v) {
    if (internal_var(kernel, v)) continue;
    u.var_index.emplace(kernel.vars[v].name, next++);
  }
  u.num_vars = u.var_index.size();
  for (const auto& loop : an.loops()) {
    const auto& df = am.loop_dataflow(loop.id);
    for (const auto& [def, uses] : df.uses) {
      if (internal_var(kernel, def)) continue;
      for (const kir::VarId use : uses) {
        if (internal_var(kernel, use)) continue;
        u.edge_index.emplace(
            std::make_tuple(loop.id, kernel.vars[def].name, kernel.vars[use].name), next++);
      }
    }
  }
  return u;
}

/// One candidate build, translated + lint-graded + statically priced.
struct BuildEval {
  std::uint64_t est = 0;                ///< predicted cycles (estimator)
  std::set<std::uint32_t> covered;      ///< universe indices lint grades covered
  lint::Coverage coverage;              ///< lint's own covered/total counts
};

BuildEval eval_build(const kir::Kernel& kernel, const HardeningPlan& plan,
                     const cost::CostProfile& profile, const TranslateOptions& base,
                     const Universe& u) {
  TranslateOptions opt = base;
  opt.plan = std::make_shared<HardeningPlan>(plan);
  opt.lint = true;
  core::TranslateReport rep;
  const kir::Kernel inst = core::translate(kernel, opt, &rep);

  BuildEval ev;
  ev.est = cost::estimate_program_cycles(kir::lower(inst), profile);
  ev.coverage = rep.lint.coverage;
  // Lint grades nothing when the build has no detectors — coverage is empty,
  // not full.
  if (rep.lint.coverage.total_vars == 0 && rep.lint.coverage.total_edges == 0) return ev;

  // Covered = universe minus the uncovered diagnostics.
  for (const auto& [name, idx] : u.var_index) ev.covered.insert(idx);
  for (const auto& [key, idx] : u.edge_index) ev.covered.insert(idx);
  // A plan-excluded variable/edge (ExcludedByPlan, remark) is just as
  // unprotected as an UncoveredVariable/UncoveredEdge warning for grading
  // purposes — the candidate plan under evaluation is itself the plan doing
  // the excluding, so exclusions must count against its coverage.  The two
  // exclusion shapes share a kind and are told apart by var2 (edges have a
  // use variable, variables do not).
  for (const auto& d : rep.lint.diagnostics) {
    const bool excluded = d.kind == lint::DiagKind::ExcludedByPlan;
    if (d.kind == lint::DiagKind::UncoveredVariable ||
        (excluded && d.var2 == kir::kInvalidVar)) {
      const auto it = u.var_index.find(inst.vars[d.var].name);
      if (it != u.var_index.end()) ev.covered.erase(it->second);
    } else if (d.kind == lint::DiagKind::UncoveredEdge ||
               (excluded && d.var2 != kir::kInvalidVar)) {
      const auto it = u.edge_index.find(
          std::make_tuple(d.loop_id, inst.vars[d.var].name, inst.vars[d.var2].name));
      if (it != u.edge_index.end()) ev.covered.erase(it->second);
    }
  }
  return ev;
}

/// Non-loop variables protect_scope would reach: Let/Assign targets in
/// depth-0 scopes, recursing into If bodies only (mirror of instrument.cpp).
void nonloop_vars(const kir::Kernel& k, const kir::StmtList& body,
                  std::vector<std::string>& out, std::set<kir::VarId>& seen) {
  for (const auto& s : body) {
    if (s->hauberk_internal) continue;
    if (s->kind == kir::StmtKind::If) {
      nonloop_vars(k, s->body, out, seen);
      nonloop_vars(k, s->else_body, out, seen);
      continue;
    }
    if (s->kind != kir::StmtKind::Let && s->kind != kir::StmtKind::Assign) continue;
    if (seen.insert(s->var).second) out.push_back(k.vars[s->var].name);
  }
}

KernelPlan base_entry(const std::string& kernel_name) {
  KernelPlan kp;
  kp.kernel = kernel_name;
  return kp;
}

HardeningPlan single_entry(KernelPlan kp) {
  HardeningPlan p;
  p.kernels.push_back(std::move(kp));
  return p;
}

/// Ratio compare by exact cross-multiplication: is gain_a/cost_a >
/// gain_b/cost_b?  Zero costs count as the best possible ratio.
bool better_ratio(std::uint64_t gain_a, std::uint64_t cost_a, std::uint64_t gain_b,
                  std::uint64_t cost_b) {
  if (cost_a == 0 || cost_b == 0) {
    if (cost_a == 0 && cost_b == 0) return gain_a > gain_b;
    return cost_a == 0 ? gain_a > 0 : false;
  }
  return static_cast<unsigned __int128>(gain_a) * cost_b >
         static_cast<unsigned __int128>(gain_b) * cost_a;
}

std::size_t marginal_gain(const Item& it, const std::set<std::uint32_t>& cov) {
  std::size_t g = 0;
  for (const std::uint32_t x : it.covered)
    if (cov.count(x) == 0) ++g;
  return g;
}

}  // namespace

std::string Item::label() const {
  return is_loop ? "loop " + std::to_string(loop_id) : "var \"" + var + "\"";
}

Selection greedy_cover(const std::vector<Item>& items, std::uint64_t budget) {
  Selection sel;
  std::set<std::uint32_t> cov;
  std::vector<bool> used(items.size(), false);
  for (;;) {
    std::size_t best = items.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (used[i] || items[i].cost > budget - sel.cost) continue;
      const std::size_t gain = marginal_gain(items[i], cov);
      if (gain == 0) continue;
      if (best == items.size() ||
          better_ratio(gain, items[i].cost, best_gain, items[best].cost) ||
          (!better_ratio(best_gain, items[best].cost, gain, items[i].cost) &&
           (gain > best_gain ||
            (gain == best_gain && items[i].cost < items[best].cost)))) {
        best = i;
        best_gain = gain;
      }
    }
    if (best == items.size()) break;
    used[best] = true;
    sel.chosen.push_back(best);
    sel.cost += items[best].cost;
    cov.insert(items[best].covered.begin(), items[best].covered.end());
  }
  sel.covered = cov.size();

  // Classic fallback: a single large item can beat every ratio pick.
  std::size_t single = items.size();
  std::size_t single_gain = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].cost > budget) continue;
    const std::size_t gain = items[i].covered.size();
    if (gain > single_gain || (gain == single_gain && single != items.size() &&
                               items[i].cost < items[single].cost)) {
      single = i;
      single_gain = gain;
    }
  }
  if (single != items.size() && single_gain > sel.covered) {
    sel.chosen = {single};
    sel.cost = items[single].cost;
    sel.covered = single_gain;
  }
  std::sort(sel.chosen.begin(), sel.chosen.end());
  return sel;
}

namespace {

struct ExactState {
  const std::vector<Item>* items = nullptr;
  std::uint64_t budget = 0;
  std::vector<std::set<std::uint32_t>> suffix_union;  ///< covered by items [i..n)
  Selection best;
  std::vector<std::size_t> chosen;

  void dfs(std::size_t i, const std::set<std::uint32_t>& cov, std::uint64_t cost) {
    const auto& its = *items;
    if (i == its.size()) {
      if (cov.size() > best.covered ||
          (cov.size() == best.covered && cost < best.cost)) {
        best.chosen = chosen;
        best.cost = cost;
        best.covered = cov.size();
      }
      return;
    }
    // Bound: even taking every remaining item cannot beat the incumbent.
    std::size_t bound = cov.size();
    for (const std::uint32_t x : suffix_union[i])
      if (cov.count(x) == 0) ++bound;
    if (bound < best.covered || (bound == best.covered && cost >= best.cost)) return;

    if (cost + its[i].cost <= budget) {
      std::set<std::uint32_t> next = cov;
      next.insert(its[i].covered.begin(), its[i].covered.end());
      chosen.push_back(i);
      dfs(i + 1, next, cost + its[i].cost);
      chosen.pop_back();
    }
    dfs(i + 1, cov, cost);
  }
};

}  // namespace

Selection exact_cover(const std::vector<Item>& items, std::uint64_t budget) {
  ExactState st;
  st.items = &items;
  st.budget = budget;
  st.suffix_union.assign(items.size() + 1, {});
  for (std::size_t i = items.size(); i-- > 0;) {
    st.suffix_union[i] = st.suffix_union[i + 1];
    st.suffix_union[i].insert(items[i].covered.begin(), items[i].covered.end());
  }
  st.dfs(0, {}, 0);
  st.best.exact = true;
  std::sort(st.best.chosen.begin(), st.best.chosen.end());
  return st.best;
}

PlanResult plan_for_budget(const kir::Kernel& kernel, const cost::CostProfile& profile,
                           std::uint64_t budget_cycles, const TranslateOptions& base,
                           std::size_t exact_limit) {
  PlanResult res;
  res.baseline_cycles = profile.measured_cycles;
  const Universe u = build_universe(kernel);
  res.total_vars = u.num_vars;
  res.total_edges = u.size() - u.num_vars;

  // Anchor builds: no detectors at all, and full Hauberk.
  KernelPlan none = base_entry(kernel.name);
  none.loops = Tri::Off;
  none.nonloop = Tri::Off;
  const BuildEval e_none = eval_build(kernel, single_entry(none), profile, base, u);
  res.none_cycles = e_none.est;
  const BuildEval e_full = eval_build(kernel, HardeningPlan{}, profile, base, u);
  res.full_cycles = e_full.est;
  for (const std::uint32_t x : e_full.covered)
    (x < u.num_vars ? res.full_covered_vars : res.full_covered_edges) += 1;

  // Candidate items: one per protectable top-level loop, one per non-loop
  // variable; each priced and graded from its own single-item build.
  kir::AnalysisManager am(kernel);
  const kir::Analysis& an = am.analysis();
  for (const auto& ln : an.loops()) {
    if (ln.parent != kir::kNoLoop) continue;
    if (am.loop_plan(ln.id, base.maxvar).selected.empty()) continue;
    KernelPlan kp = base_entry(kernel.name);
    kp.nonloop = Tri::Off;
    kp.loop_actions.emplace(ln.id, true);  // allowlist: only this loop
    const BuildEval ev = eval_build(kernel, single_entry(kp), profile, base, u);
    Item it;
    it.is_loop = true;
    it.loop_id = ln.id;
    it.cost = ev.est > e_none.est ? ev.est - e_none.est : 0;
    it.covered.assign(ev.covered.begin(), ev.covered.end());
    res.items.push_back(std::move(it));
  }
  {
    std::vector<std::string> vars;
    std::set<kir::VarId> seen;
    nonloop_vars(kernel, kernel.body, vars, seen);
    for (const std::string& v : vars) {
      KernelPlan kp = base_entry(kernel.name);
      kp.loops = Tri::Off;
      kp.var_actions.emplace(v, true);  // allowlist: only this variable
      const BuildEval ev = eval_build(kernel, single_entry(kp), profile, base, u);
      Item it;
      it.var = v;
      it.cost = ev.est > e_none.est ? ev.est - e_none.est : 0;
      it.covered.assign(ev.covered.begin(), ev.covered.end());
      res.items.push_back(std::move(it));
    }
  }

  res.selection = res.items.size() <= exact_limit ? exact_cover(res.items, budget_cycles)
                                                  : greedy_cover(res.items, budget_cycles);

  // Assemble the combined plan, re-estimate (item costs can interact — e.g.
  // shared spill pressure), and shed worst-ratio items until the prediction
  // respects the budget.
  std::vector<std::size_t> chosen = res.selection.chosen;
  for (;;) {
    KernelPlan kp = base_entry(kernel.name);
    bool any_loop = false;
    bool any_var = false;
    for (const std::size_t i : chosen) {
      if (res.items[i].is_loop) {
        any_loop = true;
        kp.loop_actions.emplace(res.items[i].loop_id, true);
      } else {
        any_var = true;
        kp.var_actions.emplace(res.items[i].var, true);
      }
    }
    if (!any_loop) kp.loops = Tri::Off;
    if (!any_var) kp.nonloop = Tri::Off;
    const HardeningPlan plan = single_entry(kp);
    const BuildEval ev = eval_build(kernel, plan, profile, base, u);
    const std::uint64_t overhead = ev.est > e_none.est ? ev.est - e_none.est : 0;
    if (overhead <= budget_cycles || chosen.empty()) {
      res.plan = plan;
      res.predicted_cycles = ev.est;
      res.covered_vars = static_cast<std::size_t>(ev.coverage.covered_vars);
      res.covered_edges = static_cast<std::size_t>(ev.coverage.covered_edges);
      res.selection.chosen = chosen;
      res.selection.cost = overhead;
      res.selection.covered = ev.covered.size();
      break;
    }
    // Drop the chosen item with the worst standalone coverage-per-cycle.
    std::size_t worst = 0;
    for (std::size_t j = 1; j < chosen.size(); ++j) {
      const Item& a = res.items[chosen[j]];
      const Item& b = res.items[chosen[worst]];
      if (better_ratio(b.covered.size(), b.cost, a.covered.size(), a.cost)) worst = j;
    }
    chosen.erase(chosen.begin() + static_cast<long>(worst));
  }
  return res;
}

}  // namespace hauberk::opt
