#include "hauberk/posix_guardian.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace hauberk::core {

const char* process_verdict_name(ProcessOutcome::Verdict v) noexcept {
  using V = ProcessOutcome::Verdict;
  switch (v) {
    case V::Success: return "success";
    case V::FalseAlarmOrTransient: return "false-alarm-or-transient";
    case V::RecoveredByRestart: return "recovered-by-restart";
    case V::SdcSuspected: return "sdc-suspected";
    case V::Failed: return "failed";
  }
  return "?";
}

std::uint64_t PosixGuardian::digest(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

SupervisedRun PosixGuardian::run_once(const std::function<ChildReport()>& child) const {
  SupervisedRun run;

  int fds[2];
  if (pipe(fds) != 0) return run;

  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return run;
  }

  if (pid == 0) {
    // --- child: run the GPU program, write the report, exit ---
    close(fds[0]);
    ChildReport report{};
    report = child();
    report.ok = 1;
    // Best-effort write; a crash before this point simply leaves the pipe empty.
    ssize_t ignored = write(fds[1], &report, sizeof(report));
    (void)ignored;
    close(fds[1]);
    _exit(0);
  }

  // --- parent: SIGCHLD-driven wait with a preemptive hang timeout ---
  close(fds[1]);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(cfg_.timeout_seconds));
  int status = 0;
  bool exited = false;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      exited = true;
      break;
    }
    if (r < 0 && errno != EINTR) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      // Preemptive hang detection: kill the child (Section VI(i)).
      kill(pid, SIGKILL);
      (void)waitpid(pid, &status, 0);
      run.killed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  run.wait_status = status;
  if (run.killed) {
    run.status = ChildStatus::Hung;
  } else if (exited && WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    ChildReport report{};
    const ssize_t n = read(fds[0], &report, sizeof(report));
    if (n == static_cast<ssize_t>(sizeof(report)) && report.ok) {
      run.report = report;
      run.status = report.sdc_alarm ? ChildStatus::CleanWithAlarm : ChildStatus::CleanNoAlarm;
    } else {
      run.status = ChildStatus::Crashed;  // exited without a valid report
    }
  } else {
    run.status = ChildStatus::Crashed;  // signal or nonzero exit
  }
  close(fds[0]);
  return run;
}

ProcessOutcome PosixGuardian::supervise(const std::function<ChildReport()>& child) const {
  ProcessOutcome out;

  auto first = run_once(child);
  ++out.executions;
  out.last = first;

  // Failure path: restart up to max_restarts (Fig. 11 left column).
  if (first.status == ChildStatus::Crashed || first.status == ChildStatus::Hung) {
    for (int attempt = 0; attempt < cfg_.max_restarts; ++attempt) {
      ++out.restarts;
      auto r = run_once(child);
      ++out.executions;
      out.last = r;
      if (r.status == ChildStatus::CleanNoAlarm || r.status == ChildStatus::CleanWithAlarm) {
        out.verdict = ProcessOutcome::Verdict::RecoveredByRestart;
        return out;
      }
    }
    out.verdict = ProcessOutcome::Verdict::Failed;
    return out;
  }

  if (first.status == ChildStatus::CleanNoAlarm) {
    out.verdict = ProcessOutcome::Verdict::Success;
    return out;
  }

  // SDC alarm: diagnose by reexecution (Fig. 11 right column).
  auto second = run_once(child);
  ++out.executions;
  out.last = second;
  switch (second.status) {
    case ChildStatus::CleanNoAlarm:
      out.verdict = ProcessOutcome::Verdict::FalseAlarmOrTransient;  // transient fault
      break;
    case ChildStatus::CleanWithAlarm:
      out.verdict = second.report.output_digest == first.report.output_digest
                        ? ProcessOutcome::Verdict::FalseAlarmOrTransient  // false positive
                        : ProcessOutcome::Verdict::SdcSuspected;          // device diagnosis due
      break;
    default:
      out.verdict = ProcessOutcome::Verdict::Failed;
      break;
  }
  return out;
}

}  // namespace hauberk::core
