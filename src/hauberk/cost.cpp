#include "hauberk/cost.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace hauberk::cost {

CostProfile measure_profile(gpusim::Device& dev, const kir::Kernel& kernel,
                            core::KernelJob& job) {
  CostProfile pr;
  pr.baseline = kir::lower(kernel);
  auto args = job.setup(dev);
  gpusim::LaunchOptions opts;
  opts.instr_exec_counts = &pr.exec_counts;
  const auto res = dev.launch(pr.baseline, job.config(), args, opts);
  if (res.status != gpusim::LaunchStatus::Ok)
    throw std::runtime_error(std::string("measure_profile: baseline launch failed: ") +
                             gpusim::launch_status_name(res.status));
  pr.measured_cycles = res.cycles;
  pr.model = dev.cost_model();
  pr.regs_per_thread = dev.props().regs_per_thread;
  pr.ecc = dev.props().protection != gpusim::ecc::Scheme::None;
  return pr;
}

std::uint64_t estimate_program_cycles(const kir::BytecodeProgram& program,
                                      const CostProfile& profile) {
  const kir::BytecodeProgram& base = profile.baseline;
  // Baseline: (statement ordinal, intra-statement index) -> execution count.
  std::map<std::pair<std::int32_t, std::int32_t>, std::uint64_t> base_count;
  {
    std::map<std::int32_t, std::int32_t> intra;
    for (std::size_t pc = 0; pc < base.code.size() && pc < base.stmt_origin.size(); ++pc) {
      const std::int32_t ord = base.stmt_origin[pc];
      if (ord < 0) continue;
      const std::int32_t idx = intra[ord]++;
      base_count[{ord, idx}] = pc < profile.exec_counts.size() ? profile.exec_counts[pc] : 0;
    }
  }

  // Candidate pass 1: direct provenance matches.
  const std::size_t n = program.code.size();
  constexpr std::uint64_t kUnknown = ~0ull;
  std::vector<std::uint64_t> counts(n, kUnknown);
  {
    std::map<std::int32_t, std::int32_t> intra;
    for (std::size_t pc = 0; pc < n && pc < program.stmt_origin.size(); ++pc) {
      const std::int32_t ord = program.stmt_origin[pc];
      if (ord < 0) continue;
      const std::int32_t idx = intra[ord]++;
      const auto it = base_count.find({ord, idx});
      if (it != base_count.end()) counts[pc] = it->second;
    }
  }

  // Pass 2: inserted instructions inherit the *smaller* of the nearest
  // preceding and following matched counts.  Both neighbours matter:
  // detector-state inits sit between the prologue (1x) and a loop header
  // (iterations+1), and run at prologue frequency; post-loop guards sit
  // between the loop body (iterations) and the epilogue (1x), and run at
  // epilogue frequency; in-loop bookkeeping has iteration-frequency
  // neighbours on both sides.  Runs with no neighbour on one side fall back
  // to the per-thread count (baseline pc 0) on that side.
  const std::uint64_t per_thread = profile.exec_counts.empty() ? 0 : profile.exec_counts[0];
  std::vector<std::uint64_t> following(n, per_thread);
  std::uint64_t carry = per_thread;
  for (std::size_t i = n; i-- > 0;) {
    if (counts[i] != kUnknown) carry = counts[i];
    following[i] = carry;
  }
  carry = per_thread;
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[i] == kUnknown) counts[i] = std::min(carry, following[i]);
    else carry = counts[i];
  }

  // Predicted cycles: the device's own accounting, folded statically.
  const std::vector<std::uint32_t> costs = gpusim::instruction_costs(
      program, profile.model, profile.regs_per_thread, profile.ecc);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += counts[i] * costs[i];
  return total;
}

std::uint64_t estimate_kernel_cycles(const kir::Kernel& kernel,
                                     const core::HardeningPlan& plan,
                                     const CostProfile& profile,
                                     const core::TranslateOptions& base) {
  core::TranslateOptions opt = base;
  opt.plan = std::make_shared<core::HardeningPlan>(plan);
  const kir::Kernel hardened = core::translate(kernel, opt);
  return estimate_program_cycles(kir::lower(hardened), profile);
}

gpusim::CostBreakdown kernel_static_breakdown(const kir::Kernel& kernel,
                                              kir::AnalysisManager& am) {
  // Key in the manager's external-analysis slot; the manager is already
  // scoped to one kernel state, so a fixed tag suffices.
  constexpr std::uint64_t kKey = 0xC057'0000'0000'0001ull;
  auto cached = am.external(kKey, [&]() -> std::shared_ptr<void> {
    const gpusim::DeviceProps defaults;
    return std::make_shared<gpusim::CostBreakdown>(gpusim::static_breakdown(
        kir::lower(kernel), gpusim::CostModel{}, defaults.regs_per_thread,
        defaults.protection != gpusim::ecc::Scheme::None));
  });
  return *static_cast<const gpusim::CostBreakdown*>(cached.get());
}

}  // namespace hauberk::cost
