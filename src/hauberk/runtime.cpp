#include "hauberk/runtime.hpp"

#include <stdexcept>

namespace hauberk::core {

using gpusim::Device;
using gpusim::LaunchOptions;
using gpusim::LaunchStatus;

KernelVariants build_variants(const kir::Kernel& source, TranslateOptions opt) {
  KernelVariants v;
  v.source = kir::clone_kernel(source);
  v.baseline = kir::lower(source);

  opt.mode = LibMode::Profiler;
  v.profiler = kir::lower(translate(source, opt, &v.profiler_report));

  opt.mode = LibMode::FT;
  v.ft_source = translate(source, opt, &v.ft_report);
  v.ft = kir::lower(v.ft_source);

  opt.mode = LibMode::FI;
  v.fi_source = translate(source, opt, &v.fi_report);
  v.fi = kir::lower(v.fi_source);

  opt.mode = LibMode::FIFT;
  v.fift_source = translate(source, opt, &v.fift_report);
  v.fift = kir::lower(v.fift_source);
  return v;
}

ProfileData profile(Device& dev, const KernelVariants& v, std::vector<KernelJob*> training_jobs) {
  ProfileData pd;
  pd.samples.resize(v.profiler.detectors.size());

  for (KernelJob* job : training_jobs) {
    ControlBlock cb(v.profiler);
    const auto cfg = job->config();
    cb.prepare_profiling(cfg.total_threads());
    const auto args = job->setup(dev);
    LaunchOptions opts;
    opts.hooks = &cb;
    const auto res = dev.launch(v.profiler, cfg, args, opts);
    if (res.status != LaunchStatus::Ok)
      throw std::runtime_error("hauberk profile: training run failed: " +
                               std::string(gpusim::launch_status_name(res.status)));
    pd.golden.push_back(job->read_output(dev));
    // Merge detector samples.
    const auto& s = cb.profiled_samples();
    if (pd.samples.size() < s.size()) pd.samples.resize(s.size());
    for (std::size_t d = 0; d < s.size(); ++d)
      pd.samples[d].insert(pd.samples[d].end(), s[d].begin(), s[d].end());
    // Execution counts from the most recent job drive FI planning.
    pd.exec_counts = cb.exec_counts();
    pd.total_threads = cfg.total_threads();
  }
  return pd;
}

std::unique_ptr<ControlBlock> make_configured_control_block(const kir::BytecodeProgram& ft_prog,
                                                            const ProfileData& pd, double alpha) {
  auto cb = std::make_unique<ControlBlock>(ft_prog);
  cb->configure_from_profile(pd.samples);
  cb->set_alpha(alpha);
  return cb;
}

namespace {

/// Express a contiguous static interval in the control block's three-band
/// RangeSet form (negative / zero band / positive), covering it exactly.
RangeSet range_set_from_interval(const kir::ValInterval& v) {
  RangeSet rs;
  if (v.is_empty()) return rs;
  if (v.lo < -rs.zero_eps) rs.neg = {true, v.lo, std::min(v.hi, -rs.zero_eps)};
  if (v.hi > rs.zero_eps) rs.pos = {true, std::max(v.lo, rs.zero_eps), v.hi};
  rs.has_zero = v.lo <= rs.zero_eps && v.hi >= -rs.zero_eps;
  return rs;
}

}  // namespace

int apply_static_ranges(ControlBlock& cb, const hauberk::lint::LintReport& report) {
  int configured = 0;
  for (const auto& r : report.detector_ranges) {
    if (!r.usable()) continue;
    bool value_detector = false;
    for (const auto& d : cb.detectors())
      if (d.meta.id == r.detector && !d.meta.is_iteration_check) value_detector = true;
    if (!value_detector) continue;
    cb.set_ranges(r.detector, range_set_from_interval(r.value));
    ++configured;
  }
  return configured;
}

}  // namespace hauberk::core
