// The unit the recovery engine supervises: one GPU kernel launch together
// with its host-side data environment (Fig. 6's "isolated code + input").
//
// A KernelJob knows how to (re)initialize device memory for a given dataset,
// what launch geometry to use, and how to read the kernel's output back.
// Because setup() is deterministic, re-executing a job reproduces the
// golden computation — which is exactly what the guardian's reexecution
// diagnosis relies on (Section VI(ii)).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "kir/value.hpp"

namespace hauberk::core {

/// A kernel's output buffer copied back to the CPU.
struct ProgramOutput {
  kir::DType type = kir::DType::F32;
  std::vector<std::uint32_t> words;

  [[nodiscard]] double element(std::size_t i) const noexcept {
    return kir::Value{type, words[i]}.as_double();
  }
  [[nodiscard]] std::size_t size() const noexcept { return words.size(); }

  friend bool operator==(const ProgramOutput& a, const ProgramOutput& b) = default;
};

class KernelJob {
 public:
  virtual ~KernelJob() = default;

  /// Reset + repopulate device memory; returns the kernel launch arguments.
  virtual std::vector<kir::Value> setup(gpusim::Device& dev) = 0;

  /// Launch geometry for this job.
  [[nodiscard]] virtual gpusim::LaunchConfig config() const = 0;

  /// Read the kernel's output back from device memory (valid after launch).
  [[nodiscard]] virtual ProgramOutput read_output(const gpusim::Device& dev) const = 0;
};

}  // namespace hauberk::core
