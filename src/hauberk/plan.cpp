#include "hauberk/plan.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "hauberk/passes/pass_manager.hpp"

namespace hauberk::core {

const char* tri_name(Tri t) noexcept {
  switch (t) {
    case Tri::Default: return "default";
    case Tri::Off: return "off";
    case Tri::On: return "on";
  }
  return "?";
}

bool KernelPlan::trivial() const noexcept {
  return maxvar < 0 && loops == Tri::Default && nonloop == Tri::Default &&
         naive == Tri::Default && loop_actions.empty() && var_actions.empty();
}

bool plan_allows_loop(const KernelPlan& kp, std::uint32_t loop_id) noexcept {
  auto it = kp.loop_actions.find(loop_id);
  if (it != kp.loop_actions.end()) return it->second;
  for (const auto& [id, on] : kp.loop_actions)
    if (on) return false;  // allowlist mode: unlisted loops are skipped
  return true;
}

bool plan_allows_var(const KernelPlan& kp, const std::string& name) noexcept {
  auto it = kp.var_actions.find(name);
  if (it != kp.var_actions.end()) return it->second;
  for (const auto& [n, on] : kp.var_actions)
    if (on) return false;
  return true;
}

const KernelPlan* HardeningPlan::find(const std::string& kernel_name) const noexcept {
  const KernelPlan* wildcard = nullptr;
  for (const KernelPlan& kp : kernels) {
    if (kp.kernel == kernel_name) return &kp;
    if (kp.kernel.empty() && !wildcard) wildcard = &kp;
  }
  return wildcard;
}

bool HardeningPlan::trivial() const noexcept {
  for (const KernelPlan& kp : kernels)
    if (!kp.trivial()) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Serializer (canonical: fixed field order, sorted maps via std::map)
// ---------------------------------------------------------------------------

namespace {

void write_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

constexpr int kPlanVersion = 1;

}  // namespace

std::string serialize_plan(const HardeningPlan& plan) {
  std::string out = "(hauberk-plan " + std::to_string(kPlanVersion);
  for (const KernelPlan& kp : plan.kernels) {
    out += "\n (kernel ";
    write_string(out, kp.kernel);
    out += " (maxvar " + std::to_string(kp.maxvar) + ")";
    out += " (loops " + std::string(tri_name(kp.loops)) + ")";
    out += " (nonloop " + std::string(tri_name(kp.nonloop)) + ")";
    out += " (naive " + std::string(tri_name(kp.naive)) + ")";
    for (const auto& [id, on] : kp.loop_actions)
      out += " (loop " + std::to_string(id) + (on ? " on)" : " off)");
    for (const auto& [name, on] : kp.var_actions) {
      out += " (var ";
      write_string(out, name);
      out += on ? " on)" : " off)";
    }
    out += ")";
  }
  out += ")\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parser (strict recursive descent over a tiny token stream)
// ---------------------------------------------------------------------------

namespace {

struct Tok {
  enum Kind { LParen, RParen, Atom, Str, End } kind = End;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Tok next() {
    while (pos_ < src_.size() &&
           (src_[pos_] == ' ' || src_[pos_] == '\n' || src_[pos_] == '\t' ||
            src_[pos_] == '\r'))
      ++pos_;
    if (pos_ >= src_.size()) return {Tok::End, ""};
    const char c = src_[pos_];
    if (c == '(') { ++pos_; return {Tok::LParen, "("}; }
    if (c == ')') { ++pos_; return {Tok::RParen, ")"}; }
    if (c == '"') {
      ++pos_;
      std::string s;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        char ch = src_[pos_++];
        if (ch == '\\') {
          if (pos_ >= src_.size()) fail("unterminated escape");
          const char e = src_[pos_++];
          switch (e) {
            case '"': ch = '"'; break;
            case '\\': ch = '\\'; break;
            case 'n': ch = '\n'; break;
            case 't': ch = '\t'; break;
            default: fail("bad escape");
          }
        }
        s += ch;
      }
      if (pos_ >= src_.size()) fail("unterminated string");
      ++pos_;  // closing quote
      return {Tok::Str, std::move(s)};
    }
    std::string a;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != ')' &&
           src_[pos_] != '"' && src_[pos_] != ' ' && src_[pos_] != '\n' &&
           src_[pos_] != '\t' && src_[pos_] != '\r')
      a += src_[pos_++];
    return {Tok::Atom, std::move(a)};
  }

  [[noreturn]] static void fail(const std::string& why) {
    throw std::runtime_error("hauberk-plan parse error: " + why);
  }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
};

class PlanParser {
 public:
  explicit PlanParser(const std::string& src) : lex_(src) { advance(); }

  HardeningPlan parse() {
    expect(Tok::LParen, "plan must start with '('");
    expect_atom("hauberk-plan");
    const long long ver = expect_int("version");
    if (ver != kPlanVersion)
      Lexer::fail("unsupported version " + std::to_string(ver));
    HardeningPlan plan;
    while (cur_.kind == Tok::LParen) plan.kernels.push_back(parse_kernel(plan));
    expect(Tok::RParen, "expected ')' closing hauberk-plan");
    if (cur_.kind != Tok::End) Lexer::fail("trailing garbage after plan");
    return plan;
  }

 private:
  KernelPlan parse_kernel(const HardeningPlan& so_far) {
    expect(Tok::LParen, "expected '(kernel ...)'");
    expect_atom("kernel");
    KernelPlan kp;
    if (cur_.kind != Tok::Str) Lexer::fail("kernel name must be a quoted string");
    kp.kernel = cur_.text;
    advance();
    for (const KernelPlan& prev : so_far.kernels)
      if (prev.kernel == kp.kernel)
        Lexer::fail("duplicate kernel entry \"" + kp.kernel + "\"");
    while (cur_.kind == Tok::LParen) parse_field(kp);
    expect(Tok::RParen, "expected ')' closing kernel entry");
    return kp;
  }

  void parse_field(KernelPlan& kp) {
    advance();  // consume '('
    if (cur_.kind != Tok::Atom) Lexer::fail("expected field name");
    const std::string field = cur_.text;
    advance();
    if (field == "maxvar") {
      const long long v = expect_int("maxvar");
      if (v < -1 || v > 1 << 20) Lexer::fail("maxvar out of range");
      kp.maxvar = static_cast<int>(v);
    } else if (field == "loops") {
      kp.loops = expect_tri("loops");
    } else if (field == "nonloop") {
      kp.nonloop = expect_tri("nonloop");
    } else if (field == "naive") {
      kp.naive = expect_tri("naive");
    } else if (field == "loop") {
      const long long id = expect_int("loop id");
      if (id < 0 || id > 0xfffffffeLL) Lexer::fail("loop id out of range");
      const bool on = expect_on_off("loop action");
      if (!kp.loop_actions.emplace(static_cast<std::uint32_t>(id), on).second)
        Lexer::fail("duplicate loop entry " + std::to_string(id));
    } else if (field == "var") {
      if (cur_.kind != Tok::Str) Lexer::fail("var name must be a quoted string");
      const std::string name = cur_.text;
      advance();
      const bool on = expect_on_off("var action");
      if (!kp.var_actions.emplace(name, on).second)
        Lexer::fail("duplicate var entry \"" + name + "\"");
    } else {
      Lexer::fail("unknown field '" + field + "'");
    }
    expect(Tok::RParen, "expected ')' closing field");
  }

  long long expect_int(const std::string& what) {
    if (cur_.kind != Tok::Atom) Lexer::fail(what + " must be an integer");
    const std::string& t = cur_.text;
    std::size_t i = t[0] == '-' ? 1 : 0;
    if (i >= t.size()) Lexer::fail(what + " must be an integer");
    for (; i < t.size(); ++i)
      if (t[i] < '0' || t[i] > '9') Lexer::fail(what + " must be an integer");
    const long long v = std::stoll(t);
    advance();
    return v;
  }

  Tri expect_tri(const std::string& what) {
    if (cur_.kind != Tok::Atom) Lexer::fail(what + " must be on/off/default");
    Tri t;
    if (cur_.text == "on") t = Tri::On;
    else if (cur_.text == "off") t = Tri::Off;
    else if (cur_.text == "default") t = Tri::Default;
    else { Lexer::fail(what + " must be on/off/default"); }
    advance();
    return t;
  }

  bool expect_on_off(const std::string& what) {
    if (cur_.kind != Tok::Atom || (cur_.text != "on" && cur_.text != "off"))
      Lexer::fail(what + " must be on or off");
    const bool on = cur_.text == "on";
    advance();
    return on;
  }

  void expect_atom(const std::string& word) {
    if (cur_.kind != Tok::Atom || cur_.text != word)
      Lexer::fail("expected '" + word + "'");
    advance();
  }

  void expect(Tok::Kind k, const std::string& why) {
    if (cur_.kind != k) Lexer::fail(why);
    advance();
  }

  void advance() { cur_ = lex_.next(); }

  Lexer lex_;
  Tok cur_;
};

}  // namespace

HardeningPlan parse_plan(const std::string& text) { return PlanParser(text).parse(); }

HardeningPlan load_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("hauberk-plan: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_plan(buf.str());
}

std::uint64_t plan_digest(const HardeningPlan& plan) noexcept {
  if (plan.trivial()) return 0;  // plan-free campaign digests must not move
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : serialize_plan(plan)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h ? h : 1;
}

TranslateOptions apply_plan(const TranslateOptions& opt, const HardeningPlan& plan,
                            const std::string& kernel_name) {
  TranslateOptions eff = opt;
  const KernelPlan* kp = plan.find(kernel_name);
  eff.kernel_plan = kp;
  if (!kp) return eff;
  if (kp->maxvar >= 0) eff.maxvar = kp->maxvar;
  if (kp->loops != Tri::Default) eff.protect_loop = kp->loops == Tri::On;
  if (kp->nonloop != Tri::Default) eff.protect_nonloop = kp->nonloop == Tri::On;
  if (kp->naive != Tri::Default) eff.naive_duplication = kp->naive == Tri::On;
  return eff;
}

PassPipeline plan_to_pipeline(const HardeningPlan& plan, const TranslateOptions& base,
                              const std::string& kernel_name, TranslateOptions* resolved) {
  const TranslateOptions eff = apply_plan(base, plan, kernel_name);
  PassPipeline pipe = pipeline_for(eff.mode, eff);
  if (eff.kernel_plan && !eff.kernel_plan->trivial())
    pipe.set_name(pipe.name() + ".plan");
  if (resolved) *resolved = eff;
  return pipe;
}

}  // namespace hauberk::core
