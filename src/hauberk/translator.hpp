// The Hauberk source-to-source translator (Fig. 7, Table I).
//
// Given a kernel AST, produces an instrumented kernel for one of the four
// library modes:
//
//  * Profiler — inserts loop accumulators/counters that feed ProfileValue
//    statements (value-range profiling, Section V.B) and CountExec hooks
//    after every virtual-variable definition (FI target derivation).
//  * FT — fault tolerance: non-loop duplication + shared-checksum detectors
//    (Section V.A, Fig. 8(c)) and loop accumulation-based range checking +
//    iteration-count invariants (Section V.B).
//  * FI — inserts a fault-injection hook after every definition (Fig. 12).
//  * FIFT — FT instrumentation plus FI hooks, used to measure the detection
//    coverage of the placed detectors (Fig. 14).
//
// Baseline detectors from the related-work comparison (R-Naive, R-Scatter)
// live in src/swifi/baselines.*.
#pragma once

#include <cstdint>
#include <vector>

#include "kir/analysis.hpp"
#include "kir/ast.hpp"

namespace hauberk::core {

enum class LibMode : std::uint8_t { None, Profiler, FT, FI, FIFT };

[[nodiscard]] const char* lib_mode_name(LibMode m) noexcept;

struct TranslateOptions {
  LibMode mode = LibMode::FT;
  /// Maximum protected variables per loop (Maxvar, Section V.B); counts
  /// self-accumulating variables.
  int maxvar = 1;
  /// Enable the non-loop detectors (disable to build Hauberk-L only).
  bool protect_nonloop = true;
  /// Enable the loop detectors (disable to build Hauberk-NL only).
  bool protect_loop = true;
  /// Give FI hooks to loop iterators (emulates SM-scheduler/control faults;
  /// source of the loop-hang failures of Section IX.B).
  bool fi_target_iterators = true;
  /// Ablation: use the naive variable-granularity duplication of Fig. 8(b)
  /// (shadow variable alive until the last use, compared there) instead of
  /// Hauberk's checksum-based scheme of Fig. 8(c).
  bool naive_duplication = false;
};

/// One placed loop detector, for reporting and tests.
struct LoopDetectorInfo {
  std::uint32_t loop_id = 0;
  kir::VarId var = kir::kInvalidVar;
  int value_detector = -1;
  int iter_detector = -1;  ///< -1 when the trip count was not derivable
  bool self_accumulating = false;
};

struct TranslateReport {
  int nonloop_protected = 0;   ///< virtual variables covered by dup+checksum
  int params_protected = 0;
  std::vector<LoopDetectorInfo> loop_detectors;
  int fi_sites = 0;
  double transform_seconds = 0.0;  ///< Section IX.D instrumentation time
};

/// Instrument `input` according to `opt`.  The input kernel is not modified.
[[nodiscard]] kir::Kernel translate(const kir::Kernel& input, const TranslateOptions& opt,
                                    TranslateReport* report = nullptr);

}  // namespace hauberk::core
