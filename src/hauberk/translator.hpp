// The Hauberk source-to-source translator (Fig. 7, Table I).
//
// Given a kernel AST, produces an instrumented kernel for one of the four
// library modes:
//
//  * Profiler — inserts loop accumulators/counters that feed ProfileValue
//    statements (value-range profiling, Section V.B) and CountExec hooks
//    after every virtual-variable definition (FI target derivation).
//  * FT — fault tolerance: non-loop duplication + shared-checksum detectors
//    (Section V.A, Fig. 8(c)) and loop accumulation-based range checking +
//    iteration-count invariants (Section V.B).
//  * FI — inserts a fault-injection hook after every definition (Fig. 12).
//  * FIFT — FT instrumentation plus FI hooks, used to measure the detection
//    coverage of the placed detectors (Fig. 14).
//
// Since the pass-manager refactor each mode is a *named pass pipeline*
// (src/hauberk/passes): discrete transformation passes composed by
// pipeline_for(), sharing cached analyses through a kir::AnalysisManager and
// emitting structured PassRemarks into the TranslateReport.  translate()
// remains the convenience entry point; callers needing pass-level control
// (selective per-kernel hardening, pass tracing) use TranslateOptions::
// pipeline_override or the passes API directly.
//
// Baseline detectors from the related-work comparison (R-Naive, R-Scatter)
// live in src/swifi/baselines.*.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/cost.hpp"
#include "hauberk/lint.hpp"
#include "kir/analysis.hpp"
#include "kir/analysis_manager.hpp"
#include "kir/ast.hpp"

namespace hauberk::core {

enum class LibMode : std::uint8_t { None, Profiler, FT, FI, FIFT };

[[nodiscard]] const char* lib_mode_name(LibMode m) noexcept;

class PassPipeline;   // src/hauberk/passes/pass_manager.hpp
struct HardeningPlan;  // src/hauberk/plan.hpp
struct KernelPlan;

struct TranslateOptions {
  LibMode mode = LibMode::FT;
  /// Maximum protected variables per loop (Maxvar, Section V.B); counts
  /// self-accumulating variables.
  int maxvar = 1;
  /// Enable the non-loop detectors (disable to build Hauberk-L only).
  bool protect_nonloop = true;
  /// Enable the loop detectors (disable to build Hauberk-NL only).
  bool protect_loop = true;
  /// Give FI hooks to loop iterators (emulates SM-scheduler/control faults;
  /// source of the loop-hang failures of Section IX.B).
  bool fi_target_iterators = true;
  /// Ablation: use the naive variable-granularity duplication of Fig. 8(b)
  /// (shadow variable alive until the last use, compared there) instead of
  /// Hauberk's checksum-based scheme of Fig. 8(c).
  bool naive_duplication = false;
  /// Append the static lint stage (hauberk::lint) to the pipeline.  The
  /// stage never mutates the kernel; its LintReport lands in
  /// TranslateReport::lint and the pipeline name gains a ".lint" suffix.
  bool lint = false;
  /// Launch facts the lint stage's abstract interpretation may assume
  /// (block/grid dimensions, parameter intervals).  Defaults are fully
  /// conservative.
  kir::IntervalEnv lint_env;
  /// Configure RangeCheck detectors from the lint stage's proven-sound
  /// static intervals instead of profiled ranges (apply_static_ranges in
  /// runtime.hpp consumes TranslateReport::lint).  Eliminates the Fig. 16
  /// unlucky-training false positives at the cost of wider accepted ranges.
  bool substitute_static_ranges = false;
  /// Structured selective hardening (hauberk/plan.hpp): per-kernel,
  /// per-loop, per-variable decisions resolved by translate() before the
  /// pipeline is composed.  A trivial (decision-free) plan is guaranteed to
  /// behave exactly like no plan.
  std::shared_ptr<const HardeningPlan> plan;
  /// Resolved by apply_plan() for the kernel being translated; passes
  /// consult it for per-loop/per-variable selections.  Aliases `plan` —
  /// never set it by hand.
  const KernelPlan* kernel_plan = nullptr;
  /// DEPRECATED selective-hardening hook, superseded by `plan`: invoked
  /// with the kernel's name and the composed pass pipeline before it runs.
  /// Kept as a thin compatibility shim (applied after plan resolution); may
  /// drop or reorder passes.
  std::function<void(const std::string& kernel_name, PassPipeline& pipeline)>
      pipeline_override;
};

/// One structured remark emitted by an instrumentation pass: what was placed
/// or skipped, and why.  Remarks are deterministic — same kernel + options
/// produce the same remark sequence — and are surfaced through inspect
/// --print-passes and the SWIFI campaign results.
struct PassRemark {
  std::string pass;     ///< emitting pass name (e.g. "loop-check")
  std::string message;  ///< human-readable, deterministic
  std::uint32_t loop_id = 0xffffffffu;      ///< kir::kNoLoop when not loop-scoped
  kir::VarId var = kir::kInvalidVar;        ///< subject variable, if any
  int detector = -1;                        ///< placed detector id, if any
};

/// One placed loop detector, for reporting and tests.
struct LoopDetectorInfo {
  std::uint32_t loop_id = 0;
  kir::VarId var = kir::kInvalidVar;
  int value_detector = -1;
  int iter_detector = -1;  ///< -1 when the trip count was not derivable
  bool self_accumulating = false;
};

struct TranslateReport {
  int nonloop_protected = 0;   ///< virtual variables covered by dup+checksum
  int params_protected = 0;
  std::vector<LoopDetectorInfo> loop_detectors;
  int fi_sites = 0;
  double transform_seconds = 0.0;  ///< Section IX.D instrumentation time
  std::string pipeline;            ///< name of the pass pipeline that ran
  std::vector<PassRemark> remarks;
  /// Analysis-cache behavior of the run (hits/misses/invalidations).
  kir::AnalysisManager::Stats analysis_cache;
  /// Static per-class cost anatomy of the instrumented kernel under the
  /// default device pricing (shared gpusim cost layer; cached through the
  /// analysis manager's external slot).
  gpusim::CostBreakdown cost;
  /// Static analysis result; populated when TranslateOptions::lint is set.
  hauberk::lint::LintReport lint;
};

/// Stable digest over a report's remark stream (order-sensitive).  Campaign
/// results carry it so tests can pin that instrumentation remarks are
/// deterministic and worker-count-invariant.
[[nodiscard]] std::uint64_t remark_digest(const TranslateReport& report) noexcept;

/// Render remarks as one line each ("[pass] message"), for CLIs and logs.
[[nodiscard]] std::string format_remarks(const TranslateReport& report);

/// Instrument `input` according to `opt`.  The input kernel is not modified.
/// Rejects kernels that already carry Hauberk instrumentation (re-running
/// the translator would double-place detectors) with std::invalid_argument.
[[nodiscard]] kir::Kernel translate(const kir::Kernel& input, const TranslateOptions& opt,
                                    TranslateReport* report = nullptr);

/// True if `k` contains any translator-inserted statement (the idempotence
/// guard translate() enforces).
[[nodiscard]] bool is_instrumented(const kir::Kernel& k);

}  // namespace hauberk::core
