// Budgeted selective-hardening optimizer.
//
// Input: a kernel, one measured baseline CostProfile (hauberk/cost.hpp),
// and an overhead budget in extra cycles.  Output: the HardeningPlan that
// maximizes predicted SDC detection coverage — the lint layer's Fig. 9
// dataflow grading (covered variables + covered loop-dataflow edges) —
// subject to the plan's predicted cycle overhead staying within budget.
//
// Candidate items are the kernel's independent protection units:
//
//   * one per top-level loop with a non-empty LoopProtectionPlan
//     (Hauberk-L accumulator + range check + iteration invariant), and
//   * one per non-loop virtual variable protect_scope would reach
//     (checksum + duplicated recompute).
//
// Each item is priced by the static estimator (translate the single-item
// plan, lower, transfer baseline counts) and graded by a lint run of the
// same build, so costs and coverage come from the exact code the plan
// would ship.  Coverage sets compose by union under selection (lint's
// covered set is a backward closure from the protected-direct set, and
// closure(A ∪ B) = closure(A) ∪ closure(B)), which makes this a budgeted
// maximum-coverage problem: NP-hard in general, so
//
//   * greedy_cover() picks by marginal-coverage-per-cycle (with the
//     classic best-single-item fallback, giving the standard
//     (1 - 1/e)/2 approximation bound), and
//   * exact_cover() branch-and-bounds the small instances (<= ~16 items)
//     kirtune uses to bound greedy's gap — tests pin their agreement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hauberk/cost.hpp"
#include "hauberk/plan.hpp"

namespace hauberk::opt {

/// One selectable protection unit.
struct Item {
  bool is_loop = false;
  std::uint32_t loop_id = 0;  ///< valid when is_loop
  std::string var;            ///< valid when !is_loop
  std::uint64_t cost = 0;     ///< predicted extra cycles vs the unprotected build
  std::vector<std::uint32_t> covered;  ///< universe indices this item covers

  [[nodiscard]] std::string label() const;
};

/// A chosen subset of items.
struct Selection {
  std::vector<std::size_t> chosen;  ///< indices into the item vector
  std::uint64_t cost = 0;           ///< sum of item costs
  std::size_t covered = 0;          ///< |union of covered sets|
  bool exact = false;               ///< solved to optimality
};

/// Greedy budgeted maximum coverage: repeatedly take the affordable item
/// with the best marginal-coverage / cost ratio; return the better of that
/// and the single best affordable item.  Deterministic tie-breaks
/// (coverage, then cost, then index).  Never exceeds `budget`.
[[nodiscard]] Selection greedy_cover(const std::vector<Item>& items, std::uint64_t budget);

/// Exact optimum by depth-first branch and bound (prune on budget and on
/// the union of all remaining coverage).  Intended for small instances;
/// cost grows exponentially past ~20 items.  Never exceeds `budget`.
[[nodiscard]] Selection exact_cover(const std::vector<Item>& items, std::uint64_t budget);

/// End-to-end result of plan_for_budget.
struct PlanResult {
  core::HardeningPlan plan;          ///< the emitted plan (single kernel entry)
  std::vector<Item> items;           ///< all candidates considered
  Selection selection;               ///< what was chosen and why
  std::uint64_t baseline_cycles = 0;   ///< measured unprotected cycles
  std::uint64_t none_cycles = 0;       ///< predicted cycles of the no-detector build
  std::uint64_t full_cycles = 0;       ///< predicted cycles of the full-Hauberk build
  std::uint64_t predicted_cycles = 0;  ///< predicted cycles of the emitted plan
  /// Lint coverage of the emitted plan's build and of the full build, for
  /// the coverage-retention frontier.
  std::size_t covered_vars = 0, total_vars = 0;
  std::size_t covered_edges = 0, total_edges = 0;
  std::size_t full_covered_vars = 0, full_covered_edges = 0;
};

/// Emit the coverage-maximizing HardeningPlan for `kernel` whose predicted
/// overhead (vs the profile's measured baseline) stays within
/// `budget_cycles` extra cycles.  Uses exact_cover when the instance is
/// small (<= `exact_limit` items), greedy otherwise; either way the
/// combined plan is re-estimated and items are dropped worst-ratio-first
/// if interactions push it past budget, so the returned predicted_cycles
/// respects the budget.  `base` carries mode/maxvar (mode must be FT or
/// FIFT for detectors to exist).
[[nodiscard]] PlanResult plan_for_budget(const kir::Kernel& kernel,
                                         const cost::CostProfile& profile,
                                         std::uint64_t budget_cycles,
                                         const core::TranslateOptions& base = {},
                                         std::size_t exact_limit = 16);

}  // namespace hauberk::opt
