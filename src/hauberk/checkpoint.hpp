// Checkpoint support (Section VI(i)): the paper optionally links CheCUDA
// [25] so the guardian can restore the latest checkpoint instead of
// restarting the whole program when a GPU kernel fails.
//
// A checkpoint captures device memory (the kernel's input state) right
// before a launch; restore() writes the image back over the same allocation
// layout, which is much cheaper than re-staging the inputs from the host —
// restore_cost_cycles() vs setup replays every H2D copy.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"
#include "kir/value.hpp"

namespace hauberk::core {

class Checkpoint {
 public:
  /// Snapshot device memory and the kernel arguments.  Call after job
  /// setup, before the launch.
  void capture(const gpusim::Device& dev, std::vector<kir::Value> args) {
    image_ = dev.mem().image();
    args_ = std::move(args);
    valid_ = true;
  }

  /// Restore the captured memory image.  The device's allocation layout
  /// must be unchanged since capture (true within one job's lifetime: the
  /// interpreter never allocates).
  void restore(gpusim::Device& dev) const {
    dev.mem().restore(image_);
  }

  [[nodiscard]] bool valid() const noexcept { return valid_; }
  [[nodiscard]] const std::vector<kir::Value>& args() const noexcept { return args_; }
  [[nodiscard]] std::size_t image_words() const noexcept { return image_.size(); }

  void invalidate() noexcept {
    valid_ = false;
    image_.clear();
    args_.clear();
  }

 private:
  std::vector<std::uint32_t> image_;
  std::vector<kir::Value> args_;
  bool valid_ = false;
};

}  // namespace hauberk::core
