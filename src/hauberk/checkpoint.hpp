// Checkpoint support (Section VI(i)): the paper optionally links CheCUDA
// [25] so the guardian can restore the latest checkpoint instead of
// restarting the whole program when a GPU kernel fails.
//
// Two layers live here:
//
//  * Checkpoint — the original in-memory device snapshot: captures device
//    memory (the kernel's input state) right before a launch; restore()
//    writes the image back over the same allocation layout, which is much
//    cheaper than re-staging the inputs from the host.
//
//  * CheckpointWriter / CheckpointReader — the on-disk generalization the
//    campaign service builds on: a versioned binary file whose payload is
//    CRC-32-guarded and whose write is atomic (temp file + rename), so a
//    process killed mid-write can never leave a checkpoint that parses as a
//    newer-but-torn state.  Readers reject wrong magic, wrong version,
//    truncation and bit flips with a CheckpointError instead of resuming
//    from garbage.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "kir/value.hpp"

namespace hauberk::core {

/// Any failure loading or saving an on-disk checkpoint: I/O error, wrong
/// magic, version mismatch, truncated payload, CRC mismatch, exhausted
/// reader.  The message names the file and the specific defect.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

/// Builds the payload of one checkpoint file field by field, then writes it
/// atomically.  File layout (all integers little-endian):
///
///   offset  size  field
///   0       4     magic (caller-chosen, identifies the checkpoint kind)
///   4       4     version (caller-chosen; readers reject mismatches)
///   8       8     payload size in bytes
///   16      4     CRC-32 of the payload bytes
///   20      n     payload
///
/// save_atomic() writes to `path + ".tmp"` and renames over `path`, so the
/// previous checkpoint survives any crash during the write and a stale temp
/// file left by a killed run is simply overwritten next time.
class CheckpointWriter {
 public:
  void u8(std::uint8_t v) { payload_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed string.
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& payload() const noexcept { return payload_; }

  /// Atomically write magic + version + guarded payload to `path`.
  /// Throws CheckpointError on any I/O failure.
  void save_atomic(const std::string& path, std::uint32_t magic, std::uint32_t version) const;

 private:
  std::vector<std::uint8_t> payload_;
};

/// Loads and validates a checkpoint file, then hands the payload back field
/// by field in write order.  Every getter throws CheckpointError when the
/// payload is exhausted (a short read can only come from a file that lied
/// about its size and still matched the CRC — treat it as corruption).
class CheckpointReader {
 public:
  /// Read `path`, validating magic, version and payload CRC.
  [[nodiscard]] static CheckpointReader load(const std::string& path, std::uint32_t magic,
                                             std::uint32_t version);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  void bytes(std::span<std::uint8_t> out);
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept { return payload_.size() - pos_; }

 private:
  CheckpointReader(std::string path, std::vector<std::uint8_t> payload)
      : path_(std::move(path)), payload_(std::move(payload)) {}

  void need(std::size_t n) const;

  std::string path_;
  std::vector<std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

class Checkpoint {
 public:
  /// Snapshot device memory and the kernel arguments.  Call after job
  /// setup, before the launch.
  void capture(const gpusim::Device& dev, std::vector<kir::Value> args) {
    image_ = dev.mem().image();
    args_ = std::move(args);
    valid_ = true;
  }

  /// Restore the captured memory image.  The device's allocation layout
  /// must be unchanged since capture (true within one job's lifetime: the
  /// interpreter never allocates).
  void restore(gpusim::Device& dev) const {
    dev.mem().restore(image_);
  }

  [[nodiscard]] bool valid() const noexcept { return valid_; }
  [[nodiscard]] const std::vector<kir::Value>& args() const noexcept { return args_; }
  [[nodiscard]] std::size_t image_words() const noexcept { return image_.size(); }

  void invalidate() noexcept {
    valid_ = false;
    image_.clear();
    args_.clear();
  }

 private:
  std::vector<std::uint32_t> image_;
  std::vector<kir::Value> args_;
  bool valid_ = false;
};

}  // namespace hauberk::core
