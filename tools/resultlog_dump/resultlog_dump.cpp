// resultlog_dump — read, merge, and pretty-print campaign result logs.
//
// The binary per-trial result log (swifi/resultlog.hpp) is what campaignd
// leaves behind; this tool turns one log — or the merge of one campaign's
// per-shard logs — into a canonical text form.  The text is deterministic
// (merge sorts by trial index and normalizes the shard header), so CI can
// diff a crashed-and-resumed multi-shard campaign against an uninterrupted
// single-shot reference with plain `diff`.
//
// Usage:
//   resultlog_dump LOG [LOG...] [--records]
//
// One LOG prints it as-is; several are merged first (they must agree on
// config digest and trial total, and must cover every trial exactly once).
// --records additionally prints one "trial N: outcome" line per record.
//
// Exit codes: 0 success, 1 unreadable/mismatched logs, 2 usage error.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "swifi/resultlog.hpp"

using namespace hauberk;

int main(int argc, char** argv) {
  bool records = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--records") {
      records = true;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return 2;
    } else {
      paths.emplace_back(a);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: %s LOG [LOG...] [--records]\n", argv[0]);
    return 2;
  }

  swifi::ResultLogData data;
  try {
    if (paths.size() == 1) {
      data = swifi::read_result_log(paths[0]);
    } else {
      std::vector<swifi::ResultLogData> shards;
      shards.reserve(paths.size());
      for (const auto& p : paths) shards.push_back(swifi::read_result_log(p));
      data = swifi::merge_result_logs(shards);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("resultlog: shard %u/%u, config digest %016llx, campaign trials %llu\n",
              data.header.shard_index, data.header.shards,
              static_cast<unsigned long long>(data.header.config_digest),
              static_cast<unsigned long long>(data.header.total_trials));
  std::printf("records %zu, torn tail bytes %llu\n", data.records.size(),
              static_cast<unsigned long long>(data.torn_tail_bytes));

  const auto c = data.counts();
  std::printf("failure %llu\n", static_cast<unsigned long long>(c.failure));
  std::printf("masked %llu\n", static_cast<unsigned long long>(c.masked));
  std::printf("detected&masked %llu\n", static_cast<unsigned long long>(c.detected_masked));
  std::printf("detected %llu\n", static_cast<unsigned long long>(c.detected));
  std::printf("undetected %llu\n", static_cast<unsigned long long>(c.undetected));
  std::printf("not-activated %llu\n", static_cast<unsigned long long>(c.not_activated));
  std::printf("race-detected %llu\n", static_cast<unsigned long long>(c.race_detected));
  std::printf("barrier-divergence %llu\n",
              static_cast<unsigned long long>(c.barrier_divergence));
  std::printf("ecc-corrected %llu\n", static_cast<unsigned long long>(c.ecc_corrected));
  std::printf("ecc-uncorrectable %llu\n",
              static_cast<unsigned long long>(c.ecc_uncorrectable));
  std::printf("coverage %.6f\n", c.coverage());

  if (records)
    for (const auto& r : data.records)
      std::printf("trial %u: %s\n", r.trial,
                  swifi::outcome_name(static_cast<swifi::Outcome>(r.outcome)));
  return 0;
}
