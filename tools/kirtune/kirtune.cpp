// kirtune — budgeted selective-hardening planner.
//
// For each selected benchmark program: measure the unprotected baseline
// (one launch, per-pc execution counts + cycles), enumerate the kernel's
// protection units (top-level Hauberk-L loops, non-loop variables), price
// each with the static cycle estimator, grade each with the lint coverage
// closure, and solve the budgeted maximum-coverage problem (exact branch
// and bound for small instances, ratio-greedy otherwise).  The winning
// HardeningPlan is printed, optionally serialized (--emit-plan) for
// fault_campaign / campaignd --plan=FILE, and optionally dumped as JSON.
//
// Usage:
//   kirtune [--program=CP|all] [--scale=tiny|small] [--seed=S]
//           [--budget=P%|N] [--maxvar=N] [--exact-limit=N]
//           [--emit-plan=FILE] [--json=FILE] [--quiet]
//
// --budget accepts a percent of the measured baseline cycles ("10%",
// default) or an absolute extra-cycle count.  Exit status: 2 on usage
// errors, 1 when any program's measurement fails, 0 otherwise.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "hauberk/cost.hpp"
#include "hauberk/opt.hpp"
#include "hauberk/plan.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

struct Entry {
  std::unique_ptr<workloads::Workload> w;
  bool cpu = false;  ///< runs on a PagedCpu device
};

std::vector<Entry> selected(const std::string& program) {
  std::vector<Entry> out;
  for (auto& w : workloads::hpc_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::graphics_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::cpu_suite()) out.push_back({std::move(w), true});
  out.push_back({workloads::make_cpu_matmul(), true});  // not in cpu_suite
  if (program.empty() || program == "all") return out;
  std::vector<Entry> one;
  for (auto& e : out)
    if (e.w->name() == program) one.push_back(std::move(e));
  return one;
}

double pct_of(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

struct ProgramRecord {
  std::string name;
  opt::PlanResult res;
  std::uint64_t budget = 0;
};

void print_result(const ProgramRecord& r, bool quiet) {
  const auto& res = r.res;
  std::printf("== %s ==\n", r.name.c_str());
  std::printf("  baseline %llu cycles; budget %llu extra (%.2f%%)\n",
              static_cast<unsigned long long>(res.baseline_cycles),
              static_cast<unsigned long long>(r.budget),
              pct_of(r.budget, res.baseline_cycles));
  std::printf("  no-detector %llu, full-hauberk %llu (+%.2f%%), plan %llu (+%.2f%%)\n",
              static_cast<unsigned long long>(res.none_cycles),
              static_cast<unsigned long long>(res.full_cycles),
              pct_of(res.full_cycles - res.none_cycles, res.none_cycles),
              static_cast<unsigned long long>(res.predicted_cycles),
              pct_of(res.predicted_cycles > res.none_cycles
                         ? res.predicted_cycles - res.none_cycles
                         : 0,
                     res.none_cycles));
  std::printf("  coverage: %zu/%zu vars, %zu/%zu edges (full plan: %zu vars, %zu edges)\n",
              res.covered_vars, res.total_vars, res.covered_edges, res.total_edges,
              res.full_covered_vars, res.full_covered_edges);
  std::printf("  %zu candidate item(s); chose %zu (%s)\n", res.items.size(),
              res.selection.chosen.size(), res.selection.exact ? "exact" : "greedy");
  if (!quiet) {
    for (std::size_t i = 0; i < res.items.size(); ++i) {
      const auto& it = res.items[i];
      bool chosen = false;
      for (const std::size_t c : res.selection.chosen) chosen |= (c == i);
      std::printf("    [%c] %-24s cost %8llu covers %zu\n", chosen ? 'x' : ' ',
                  it.label().c_str(), static_cast<unsigned long long>(it.cost),
                  it.covered.size());
    }
    std::printf("  plan:\n%s", core::serialize_plan(res.plan).c_str());
  }
}

void write_json(std::ostream& out, const std::vector<ProgramRecord>& records) {
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    const auto& res = r.res;
    out << "  {\"program\": \"" << json_escape(r.name) << "\""
        << ", \"baseline_cycles\": " << res.baseline_cycles
        << ", \"budget_cycles\": " << r.budget
        << ", \"none_cycles\": " << res.none_cycles
        << ", \"full_cycles\": " << res.full_cycles
        << ", \"predicted_cycles\": " << res.predicted_cycles
        << ", \"exact\": " << (res.selection.exact ? "true" : "false")
        << ", \"items\": " << res.items.size()
        << ", \"chosen\": " << res.selection.chosen.size()
        << ", \"covered_vars\": " << res.covered_vars
        << ", \"total_vars\": " << res.total_vars
        << ", \"covered_edges\": " << res.covered_edges
        << ", \"total_edges\": " << res.total_edges
        << ", \"full_covered_vars\": " << res.full_covered_vars
        << ", \"full_covered_edges\": " << res.full_covered_edges
        << ", \"plan_digest\": " << core::plan_digest(res.plan) << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  for (const auto& f :
       args.unknown_flags({"program", "scale", "seed", "budget", "maxvar", "exact-limit",
                           "emit-plan", "json", "quiet"})) {
    std::fprintf(stderr, "kirtune: unknown flag --%s\n", f.c_str());
    return 2;
  }

  const auto entries = selected(args.get("program", "all"));
  if (entries.empty()) {
    std::fprintf(stderr, "kirtune: unknown program '%s'\n", args.get("program").c_str());
    return 2;
  }

  double budget_pct = 10.0;
  std::uint64_t budget_abs = 0;
  if (args.has("budget") &&
      !common::parse_budget(args.get("budget"), budget_pct, budget_abs)) {
    std::fprintf(stderr,
                 "kirtune: --budget: expected P%% (0 <= P <= 100) or a cycle count "
                 "(got '%s')\n",
                 args.get("budget").c_str());
    return 2;
  }

  const auto scale = args.get("scale", "tiny") == "small" ? workloads::Scale::Small
                                                          : workloads::Scale::Tiny;
  core::TranslateOptions base;
  base.mode = core::LibMode::FT;
  base.maxvar = static_cast<int>(args.get_int("maxvar", 1));
  const auto exact_limit = static_cast<std::size_t>(args.get_int("exact-limit", 16));
  const auto seed = args.get_u64("seed", 1);
  if (!args.ok()) {
    for (const auto& err : args.errors()) std::fprintf(stderr, "kirtune: %s\n", err.c_str());
    return 2;
  }

  std::vector<ProgramRecord> records;
  core::HardeningPlan merged;
  for (const auto& e : entries) {
    const auto kernel = e.w->build_kernel(scale);
    gpusim::DeviceProps props;
    if (e.cpu) props.memory_model = gpusim::MemoryModel::PagedCpu;
    gpusim::Device dev(props);
    const auto ds = e.w->make_dataset(seed, scale);
    const auto job = e.w->make_job(ds);
    cost::CostProfile profile;
    try {
      profile = cost::measure_profile(dev, kernel, *job);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "kirtune: %s: %s\n", e.w->name().c_str(), ex.what());
      return 1;
    }
    const std::uint64_t budget =
        budget_pct >= 0.0 ? static_cast<std::uint64_t>(
                                budget_pct / 100.0 *
                                static_cast<double>(profile.measured_cycles))
                          : budget_abs;

    ProgramRecord rec;
    rec.name = e.w->name();
    rec.budget = budget;
    rec.res = opt::plan_for_budget(kernel, profile, budget, base, exact_limit);
    for (const auto& kp : rec.res.plan.kernels) merged.kernels.push_back(kp);
    print_result(rec, args.has("quiet"));
    records.push_back(std::move(rec));
  }

  const std::string emit = args.get("emit-plan", "");
  if (!emit.empty()) {
    std::ofstream out(emit);
    if (!out) {
      std::fprintf(stderr, "kirtune: cannot write %s\n", emit.c_str());
      return 2;
    }
    out << core::serialize_plan(merged);
    std::printf("kirtune: wrote plan for %zu kernel(s) to %s (digest %llu)\n",
                merged.kernels.size(), emit.c_str(),
                static_cast<unsigned long long>(core::plan_digest(merged)));
  }

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    if (!out) {
      std::fprintf(stderr, "kirtune: cannot write %s\n", json.c_str());
      return 2;
    }
    write_json(out, records);
  }
  return 0;
}
