// kirprune — static fault-site equivalence analysis and pruning planner.
//
// For each selected benchmark program: build the instrumented variants, run
// kir::DefUseAnalysis over the injected kernel (FI, or FI&FT under
// --protected), derive per-site pruning facts (bit-liveness masks,
// propagation-cone signatures, thread uniformity, occurrence symmetry), and
// emit them as a hauberk-prune s-expression for fault_campaign / campaignd /
// bench --prune=FILE.  With --stats, additionally plan the default SWIFI
// campaign and report how the facts partition it: classes, statically-Benign
// specs, and the trial reduction factor.
//
// Usage:
//   kirprune [--program=CP|all] [--protected] [--scale=tiny|small] [--seed=S]
//            [--vars=N] [--masks=N] [--bits=N]
//            [--emit-plan=FILE] [--stats] [--quiet]
//
// A plan entry pins the exact bytecode program digest it was computed for,
// so a plan emitted with --protected only applies to --protected campaigns
// (and vice versa).  Exit status: 2 on usage errors, 1 when any program's
// analysis fails, 0 otherwise.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "hauberk/prune.hpp"
#include "hauberk/runtime.hpp"
#include "swifi/campaign.hpp"
#include "swifi/prune.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

struct Entry {
  std::unique_ptr<workloads::Workload> w;
  bool cpu = false;  ///< runs on a PagedCpu device
};

std::vector<Entry> selected(const std::string& program) {
  std::vector<Entry> out;
  for (auto& w : workloads::hpc_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::graphics_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::cpu_suite()) out.push_back({std::move(w), true});
  out.push_back({workloads::make_cpu_matmul(), true});  // not in cpu_suite
  if (program.empty() || program == "all") return out;
  std::vector<Entry> one;
  for (auto& e : out)
    if (e.w->name() == program) one.push_back(std::move(e));
  return one;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  for (const auto& f : args.unknown_flags({"program", "protected", "scale", "seed", "vars",
                                           "masks", "bits", "emit-plan", "stats",
                                           "quiet"})) {
    std::fprintf(stderr, "error: unknown flag --%s\n", f.c_str());
    return 2;
  }
  const std::string program = args.get("program", "all");
  const bool use_ft = args.has("protected");
  const bool stats = args.has("stats");
  const bool quiet = args.has("quiet");
  const std::string emit = args.get("emit-plan");
  const auto scale = args.get("scale", "tiny") == "small" ? workloads::Scale::Small
                                                          : workloads::Scale::Tiny;
  const std::uint64_t seed = args.get_u64("seed", 1);
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::fprintf(stderr, "error: %s\n", e.c_str());
    return 2;
  }

  auto entries = selected(program);
  if (entries.empty()) {
    std::fprintf(stderr, "error: unknown program '%s'\n", program.c_str());
    return 2;
  }

  prune::PruningPlan plan;
  bool failed = false;
  for (const Entry& e : entries) {
    try {
      const auto v = core::build_variants(e.w->build_kernel(scale));
      const auto& prog = use_ft ? v.fift : v.fi;
      const auto& src = use_ft ? v.fift_source : v.fi_source;
      auto facts = prune::build_kernel_prune_facts(src, prog);
      // Key the entry by the benchmark program name: that is what every
      // campaign harness selects by (--program=CP), and the pinned program
      // digest already identifies the exact kernel build.
      facts.kernel = e.w->name();

      std::uint64_t dead = 0, partial = 0;
      for (const auto& s : facts.sites) {
        if (s.live_mask == 0) ++dead;
        else if (s.live_mask != 0xffffffffu) ++partial;
      }
      if (!quiet)
        std::printf("== %s (%s) ==\n  %zu sites: %llu dead, %llu partially live\n",
                    e.w->name().c_str(), use_ft ? "FI&FT" : "FI", facts.sites.size(),
                    static_cast<unsigned long long>(dead),
                    static_cast<unsigned long long>(partial));

      if (stats) {
        gpusim::DeviceProps props;
        if (e.cpu) {
          props.memory_model = gpusim::MemoryModel::PagedCpu;
          props.num_sms = 1;
        }
        gpusim::Device dev(props);
        const auto ds = e.w->make_dataset(seed, scale);
        auto job = e.w->make_job(ds);
        const auto profile = core::profile(dev, v, {job.get()});
        swifi::PlanOptions popt;
        popt.max_vars = static_cast<int>(args.get_int("vars", 20));
        popt.masks_per_var = static_cast<int>(args.get_int("masks", 10));
        popt.error_bits = static_cast<int>(args.get_int("bits", 1));
        popt.seed = seed + 99;
        const auto specs = swifi::plan_faults(prog, profile, popt);
        prune::PruningPlan one;
        one.kernels.push_back(facts);
        const auto pruned = swifi::prune_specs(one, e.w->name(), prog, specs);
        std::printf("  campaign: %llu specs -> %llu classes (%.2fx); %llu benign specs "
                    "in %llu classes, %llu at dead sites, %llu unknown-site\n",
                    static_cast<unsigned long long>(pruned.stats.total_specs),
                    static_cast<unsigned long long>(pruned.stats.kept_specs),
                    pruned.stats.reduction(),
                    static_cast<unsigned long long>(pruned.stats.benign_specs),
                    static_cast<unsigned long long>(pruned.stats.benign_classes),
                    static_cast<unsigned long long>(pruned.stats.dead_site_specs),
                    static_cast<unsigned long long>(pruned.stats.unknown_site_specs));
      }
      plan.kernels.push_back(std::move(facts));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "kirprune: %s: %s\n", e.w->name().c_str(), ex.what());
      failed = true;
    }
  }

  if (!emit.empty() && !plan.kernels.empty()) {
    std::ofstream out(emit);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", emit.c_str());
      return 1;
    }
    out << prune::serialize_pruning_plan(plan);
    if (!quiet)
      std::printf("wrote %s (%zu kernel(s), digest %016llx)\n", emit.c_str(),
                  plan.kernels.size(),
                  static_cast<unsigned long long>(prune::pruning_plan_digest(plan)));
  }
  return failed ? 1 : 0;
}
