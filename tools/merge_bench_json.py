#!/usr/bin/env python3
"""Merge per-bench --json outputs into one BENCH_engines.json document.

Usage: merge_bench_json.py interp.json campaign.json [...] > BENCH_engines.json

Each input is the --json output of one bench binary (bench_interp_throughput,
bench_campaign_throughput, ...).  The merged document maps each bench's
"bench" name to its full payload so the per-PR artifact carries every engine
row and the headline speedups in one file.

The merge validates its inputs and fails loudly instead of papering over
problems: a bench that silently dropped out of the artifact looks exactly
like a bench that never regressed.  Every input must parse as a JSON object
whose "bench" key is a non-empty string, and no two inputs may claim the
same bench name — a duplicate means the CI recipe merged the same file twice
or two benches collide on a name, and either way the artifact would silently
keep only one of them.  Any violation prints the offending path and exits
nonzero without emitting a document.
"""
import json
import sys


def fail(msg):
    print(f"merge_bench_json: error: {msg}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) < 2:
        return fail("no input files (usage: merge_bench_json.py a.json b.json ...)")
    merged = {}
    sources = {}  # bench name -> path that contributed it
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except OSError as e:
            return fail(f"cannot read {path}: {e}")
        except ValueError as e:
            return fail(f"{path} is not valid JSON: {e}")
        if not isinstance(doc, dict):
            return fail(f"{path}: top level must be a JSON object, got {type(doc).__name__}")
        bench = doc.get("bench")
        if not isinstance(bench, str) or not bench:
            return fail(f'{path}: missing or empty "bench" key (not a bench --json output?)')
        if bench in sources:
            return fail(f'duplicate bench "{bench}": {sources[bench]} and {path}')
        sources[bench] = path
        merged[bench] = doc
    json.dump(merged, sys.stdout, indent=2)
    print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
