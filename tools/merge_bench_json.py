#!/usr/bin/env python3
"""Merge per-bench --json outputs into one BENCH_engines.json document.

Usage: merge_bench_json.py interp.json campaign.json [...] > BENCH_engines.json

Each input is the --json output of bench_interp_throughput or
bench_campaign_throughput; the merged document maps each bench's "bench" name
to its full payload so the per-PR artifact carries every engine row and the
headline speedups in one file.  Inputs that are missing or malformed are
skipped with a warning instead of failing the merge — a perf artifact should
never be the reason CI goes red.
"""
import json
import sys


def main(argv):
    merged = {}
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"merge_bench_json: skipping {path}: {e}", file=sys.stderr)
            continue
        merged[doc.get("bench", path)] = doc
    json.dump(merged, sys.stdout, indent=2)
    print()
    return 0 if merged else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
