// campaignd — the sharded, checkpointed campaign driver CLI.
//
// Runs one shard of a SWIFI campaign through swifi::CampaignService:
// lock-free trial distribution across worker threads, periodic CRC-guarded
// checkpoints, and a compact binary result log.  A campaign killed at any
// point resumes from its last checkpoint with byte-identical final results.
//
// Usage:
//   campaignd run --program=CP [--protected] [--bits=1] [--vars=20] [--masks=10]
//                 [--scale=tiny|small] [--seed=N]
//                 [--workers=N] [--engine=reference|fast|sanitizer|threaded]
//                 [--sanitize] [--sanitize-cap=N]
//                 [--protection=none|hamming|hsiao]
//                                         hardware ECC on every campaign device
//                                         (--protected is Hauberk's software FT;
//                                         the two compose for the ECC-vs-Hauberk
//                                         study)
//                 [--shards=K/I]          run shard I of K (trial t -> shard t mod K)
//                 [--checkpoint=FILE]     checkpoint file to maintain
//                 [--checkpoint-every=N]  checkpoint every N committed trials
//                 [--resume=FILE]         resume from FILE (implies --checkpoint=FILE)
//                 [--resultlog=FILE]      binary per-trial result log
//                 [--plan=FILE]           selective-hardening plan (kirtune
//                                         --emit-plan output) applied to the
//                                         instrumented variants; its digest is
//                                         folded into the campaign digest, so
//                                         checkpoints/logs bind to the plan
//                 [--prune=FILE]          static pruning plan (kirprune
//                                         --emit-plan output): run one trial
//                                         per fault-site equivalence class,
//                                         weight aggregates and result-log
//                                         populations by class size; the
//                                         plan digest binds checkpoints/logs
//                 [--crash-after=N]       testing: simulate SIGKILL (exit 42,
//                                         no cleanup) right after the N-th
//                                         periodic checkpoint of this process
//                 [--quiet]               suppress the outcome table
//
// Exit codes: 0 success, 2 usage error, 42 simulated crash (--crash-after).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/cli.hpp"
#include "hauberk/checkpoint.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/prune.hpp"
#include "hauberk/runtime.hpp"
#include "swifi/prune.hpp"
#include "swifi/service.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run --program=NAME [--protected] [--shards=K/I]\n"
               "       [--checkpoint=FILE --checkpoint-every=N | --resume=FILE]\n"
               "       [--resultlog=FILE] [--workers=N] [--engine=E]\n"
               "       [--protection=none|hamming|hsiao] [--crash-after=N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string_view(argv[1]) != "run") return usage(argv[0]);
  common::CliArgs args(argc, argv);
  for (const auto& f : args.unknown_flags(
           {"program", "bits", "vars", "masks", "protected", "scale", "seed", "workers",
            "sanitize", "sanitize-cap", "engine", "protection", "shards", "checkpoint",
            "checkpoint-every", "resume", "resultlog", "plan", "prune", "crash-after",
            "quiet"})) {
    std::fprintf(stderr, "error: unknown flag --%s\n", f.c_str());
    return 2;
  }
  const std::string name = args.get("program", "CP");
  const int bits = static_cast<int>(args.get_int("bits", 1));
  const bool use_ft = args.has("protected");
  const bool quiet = args.has("quiet");
  const std::uint64_t crash_after = args.get_u64("crash-after", 0);
  const auto flags = common::parse_campaign_flags(args);
  const auto scale = args.get("scale", "small") == "tiny" ? workloads::Scale::Tiny
                                                          : workloads::Scale::Small;
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::fprintf(stderr, "error: %s\n", e.c_str());
    return 2;
  }

  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == name) w = std::move(cand);
  for (auto& cand : workloads::graphics_suite())
    if (cand && cand->name() == name) w = std::move(cand);
  if (!w) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 2;
  }

  // ProtectionKind mirrors gpusim::ecc::Scheme value for value (pinned by
  // static_asserts in bench/bench_common.hpp, same arrangement as --engine).
  core::TranslateOptions topt;
  if (!flags.plan.empty()) {
    try {
      topt.plan = std::make_shared<core::HardeningPlan>(core::load_plan(flags.plan));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: --plan: %s\n", ex.what());
      return 2;
    }
  }

  gpusim::DeviceProps props;
  props.protection = static_cast<gpusim::ecc::Scheme>(flags.protection);
  gpusim::Device dev(props);
  const auto v = core::build_variants(w->build_kernel(scale), topt);
  const auto ds = w->make_dataset(args.get_u64("seed", 1), scale);
  auto job = w->make_job(ds);
  const auto profile = core::profile(dev, v, {job.get()});

  swifi::PlanOptions opt;
  opt.max_vars = static_cast<int>(args.get_int("vars", 20));
  opt.masks_per_var = static_cast<int>(args.get_int("masks", 10));
  opt.error_bits = bits;
  opt.seed = args.get_u64("seed", 1) + 99;

  const auto& prog = use_ft ? v.fift : v.fi;
  const auto& prog_report = use_ft ? v.fift_report : v.fi_report;
  auto specs = swifi::plan_faults(prog, profile, opt);

  swifi::PrunedCampaign pruned;
  bool use_prune = false;
  if (!flags.prune.empty()) {
    try {
      const auto pplan = prune::load_pruning_plan(flags.prune);
      pruned = swifi::prune_specs(pplan, w->name(), prog, specs);
      specs = pruned.specs;
      use_prune = true;
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: --prune: %s\n", ex.what());
      return 2;
    }
  }

  swifi::ServiceConfig scfg;
  scfg.campaign.engine = static_cast<gpusim::ExecEngine>(flags.engine);
  scfg.campaign.sanitize = flags.sanitize;
  scfg.campaign.sanitize_cap = static_cast<std::size_t>(flags.sanitize_cap);
  scfg.campaign.protection = props.protection;
  scfg.campaign.pipeline = swifi::PipelineSpec::from_report(prog_report);
  if (topt.plan) scfg.campaign.plan_digest = core::plan_digest(*topt.plan);
  if (use_prune) {
    scfg.campaign.prune_digest = pruned.plan_digest;
    scfg.campaign.trial_weights = pruned.weights;
  }
  scfg.workers = flags.workers;
  scfg.shards = static_cast<std::uint32_t>(flags.shards);
  scfg.shard_index = static_cast<std::uint32_t>(flags.shard_index);
  scfg.checkpoint_every = flags.checkpoint_every;
  scfg.checkpoint_path = flags.checkpoint;
  scfg.resultlog_path = flags.resultlog;
  scfg.resume = !flags.resume.empty();
  if (crash_after > 0) {
    scfg.on_checkpoint = [crash_after, n = std::uint64_t{0}](
                             const swifi::CampaignCheckpoint& ck) mutable {
      if (++n >= crash_after) {
        std::fprintf(stderr, "campaignd: simulated crash after checkpoint (watermark %llu)\n",
                     static_cast<unsigned long long>(ck.watermark));
        std::fflush(nullptr);
        std::_Exit(42);  // no destructors, no flushes: as close to SIGKILL as it gets
      }
    };
  }

  if (!quiet) {
    std::printf("campaignd: %s %s, %zu trials total, shard %d/%d, %llu per checkpoint\n",
                name.c_str(), use_ft ? "(FI&FT)" : "(FI)", specs.size(), flags.shard_index,
                flags.shards, static_cast<unsigned long long>(flags.checkpoint_every));
    if (use_prune)
      std::printf("campaignd: pruned %llu specs -> %llu representatives (%.1fx)\n",
                  static_cast<unsigned long long>(pruned.stats.total_specs),
                  static_cast<unsigned long long>(pruned.stats.kept_specs),
                  pruned.stats.reduction());
  }

  swifi::CampaignService service(scfg);
  swifi::ServiceResult res;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    res = service.run(
        prog,
        [&] {
          swifi::WorkerContext ctx;
          ctx.device = std::make_unique<gpusim::Device>(props);
          ctx.job = w->make_job(ds);
          if (use_ft) ctx.cb = core::make_configured_control_block(v.fift, profile);
          return ctx;
        },
        specs, w->requirement());
  } catch (const core::CheckpointError& e) {
    std::fprintf(stderr, "campaignd: %s\n", e.what());
    return 2;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  if (!quiet) {
    const auto& c = res.counts;
    std::printf("pipeline %s (remark digest %016llx), config digest %016llx\n",
                res.pipeline.c_str(), static_cast<unsigned long long>(res.remark_digest),
                static_cast<unsigned long long>(res.config_digest));
    std::printf("shard trials %llu (ran %llu, resumed %llu), checkpoints %llu, %.1f "
                "trials/sec\n",
                static_cast<unsigned long long>(res.shard_trials),
                static_cast<unsigned long long>(res.trials_run),
                static_cast<unsigned long long>(res.trials_resumed),
                static_cast<unsigned long long>(res.checkpoints_written),
                secs > 0 ? static_cast<double>(res.trials_run) / secs : 0.0);
    std::printf("  failure %llu  masked %llu  detected&masked %llu  detected %llu  "
                "undetected %llu  not-activated %llu\n",
                static_cast<unsigned long long>(c.failure),
                static_cast<unsigned long long>(c.masked),
                static_cast<unsigned long long>(c.detected_masked),
                static_cast<unsigned long long>(c.detected),
                static_cast<unsigned long long>(c.undetected),
                static_cast<unsigned long long>(c.not_activated));
    if (props.protection != gpusim::ecc::Scheme::None)
      std::printf("  ecc-corrected %llu  ecc-uncorrectable %llu\n",
                  static_cast<unsigned long long>(c.ecc_corrected),
                  static_cast<unsigned long long>(c.ecc_uncorrectable));
    std::printf("  coverage %.4f, %llu trial sites histogrammed, %llu SDC sites\n",
                c.coverage(), static_cast<unsigned long long>(res.site_hist.total()),
                static_cast<unsigned long long>(res.sdc_site_hist.total()));
  }
  return 0;
}
