// kirlint — static analysis front end for the Hauberk KIR lint suite.
//
// For each selected benchmark program: instrument the kernel for the chosen
// library mode, derive the launch environment (block/grid dimensions and
// parameter values) from real datasets, optionally run the profiler variant
// over those datasets to obtain the observed per-detector value ranges, and
// run every hauberk::lint analyzer.  The profiled ranges are cross-checked
// against the sound static intervals: an escaping profile is an error
// (StaticRangeUnsound), a tighter one a remark quantifying the Fig. 16
// false-positive exposure.
//
// Usage:
//   kirlint [--program=CP|all] [--scale=tiny|small] [--mode=ft] [--maxvar=N]
//           [--naive] [--plan=FILE] [--datasets=N] [--seed=S] [--json-dir=DIR]
//           [--Werror] [--quiet]
//
// --plan=FILE instruments under the given HardeningPlan (kirtune --emit-plan
// output) and makes the coverage analyzer report plan-excluded variables and
// loop edges as ExcludedByPlan remarks instead of Uncovered* warnings.
//
// Exit status: 1 when any report contains an error-severity diagnostic
// (warnings too under --Werror), 2 on usage errors; 0 otherwise.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "hauberk/lint.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/runtime.hpp"
#include "hauberk/translator.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

core::LibMode mode_from(const std::string& s) {
  if (s == "baseline" || s == "none") return core::LibMode::None;
  if (s == "profiler") return core::LibMode::Profiler;
  if (s == "fi") return core::LibMode::FI;
  if (s == "fift" || s == "fi+ft") return core::LibMode::FIFT;
  return core::LibMode::FT;
}

struct Entry {
  std::unique_ptr<workloads::Workload> w;
  bool cpu = false;  ///< runs on a PagedCpu device
};

std::vector<Entry> selected(const std::string& program) {
  std::vector<Entry> out;
  for (auto& w : workloads::hpc_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::graphics_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::cpu_suite()) out.push_back({std::move(w), true});
  out.push_back({workloads::make_cpu_matmul(), true});  // not in cpu_suite
  if (program.empty() || program == "all") return out;
  std::vector<Entry> one;
  for (auto& e : out)
    if (e.w->name() == program) one.push_back(std::move(e));
  return one;
}

/// Widen `into` so it also covers `from` (per-field maxima, param joins).
void join_env(kir::IntervalEnv& into, const kir::IntervalEnv& from) {
  into.block_x = std::max(into.block_x, from.block_x);
  into.block_y = std::max(into.block_y, from.block_y);
  into.grid_x = std::max(into.grid_x, from.grid_x);
  into.grid_y = std::max(into.grid_y, from.grid_y);
  if (into.params.size() < from.params.size()) into.params.resize(from.params.size());
  for (std::size_t i = 0; i < from.params.size(); ++i)
    into.params[i] = kir::join(into.params[i], from.params[i]);
}

int lint_one(const Entry& e, const common::CliArgs& args,
             const std::shared_ptr<core::HardeningPlan>& plan, int& reports_with_errors,
             int& reports_with_warnings) {
  const auto scale = args.get("scale", "tiny") == "small" ? workloads::Scale::Small
                                                          : workloads::Scale::Tiny;
  core::TranslateOptions opt;
  opt.mode = mode_from(args.get("mode", "ft"));
  opt.maxvar = static_cast<int>(args.get_int("maxvar", 1));
  opt.naive_duplication = args.has("naive");
  opt.plan = plan;  // instrument exactly what the plan selects

  const auto kernel = e.w->build_kernel(scale);
  const kir::Kernel instrumented =
      opt.mode == core::LibMode::None ? kernel : core::translate(kernel, opt);
  const kir::BytecodeProgram program = kir::lower(instrumented);

  gpusim::DeviceProps props;
  if (e.cpu) props.memory_model = gpusim::MemoryModel::PagedCpu;

  // Launch environment joined over every dataset, plus the observed
  // per-detector ranges from profiling runs over the same datasets.
  const int datasets = static_cast<int>(args.get_int("datasets", 2));
  const auto seed0 = args.get_u64("seed", 1);
  lint::LintOptions lo;
  lo.program = &program;
  lo.plan = plan.get();  // grade coverage against the plan's decisions
  bool have_env = false;
  std::vector<std::unique_ptr<core::KernelJob>> jobs;
  std::vector<core::KernelJob*> job_ptrs;
  gpusim::Device dev(props);
  for (int d = 0; d < datasets; ++d) {
    const auto ds = e.w->make_dataset(seed0 + static_cast<std::uint64_t>(d), scale);
    jobs.push_back(e.w->make_job(ds));
    const auto argv = jobs.back()->setup(dev);
    const auto env = lint::env_for(jobs.back()->config(), argv, dev.props());
    if (!have_env) {
      lo.env = env;
      have_env = true;
    } else {
      join_env(lo.env, env);
    }
    job_ptrs.push_back(jobs.back().get());
  }

  if (datasets > 0 && opt.mode != core::LibMode::None) {
    const auto variants = core::build_variants(kernel, opt);
    const auto pd = core::profile(dev, variants, job_ptrs);
    for (std::size_t det = 0; det < pd.samples.size(); ++det) {
      const auto& s = pd.samples[det];
      if (s.empty()) continue;
      lint::ObservedRange o;
      o.detector = static_cast<int>(det);
      o.lo = o.hi = s[0];
      for (const double v : s) {
        o.lo = std::min(o.lo, v);
        o.hi = std::max(o.hi, v);
      }
      o.samples = s.size();
      lo.observed.push_back(o);
    }
  }

  const lint::LintReport rep = lint::run_lint(instrumented, lo);
  reports_with_errors += rep.errors > 0;
  reports_with_warnings += rep.warnings > 0;

  if (args.has("quiet")) {
    std::printf("%s: %d error(s), %d warning(s), %d remark(s)\n", rep.kernel.c_str(),
                rep.errors, rep.warnings, rep.remarks);
  } else {
    std::fputs(rep.to_string().c_str(), stdout);
  }

  const std::string json_dir = args.get("json-dir", "");
  if (!json_dir.empty()) {
    const std::string path = json_dir + "/" + e.w->name() + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "kirlint: cannot write %s\n", path.c_str());
      return 2;
    }
    out << rep.to_json();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  for (const auto& f :
       args.unknown_flags({"program", "scale", "mode", "maxvar", "naive", "plan",
                           "datasets", "seed", "json-dir", "Werror", "quiet"})) {
    std::fprintf(stderr, "kirlint: unknown flag --%s\n", f.c_str());
    return 2;
  }

  const auto entries = selected(args.get("program", "all"));
  if (entries.empty()) {
    std::fprintf(stderr, "kirlint: unknown program '%s'\n", args.get("program").c_str());
    return 2;
  }

  std::shared_ptr<core::HardeningPlan> plan;
  if (args.has("plan")) {
    try {
      plan = std::make_shared<core::HardeningPlan>(core::load_plan(args.get("plan")));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "kirlint: --plan: %s\n", ex.what());
      return 2;
    }
  }

  int with_errors = 0, with_warnings = 0;
  for (const auto& e : entries) {
    const int rc = lint_one(e, args, plan, with_errors, with_warnings);
    if (rc != 0) return rc;
  }
  if (!args.ok()) {
    for (const auto& err : args.errors()) std::fprintf(stderr, "kirlint: %s\n", err.c_str());
    return 2;
  }
  if (with_errors > 0) {
    std::fprintf(stderr, "kirlint: %d program(s) with errors\n", with_errors);
    return 1;
  }
  if (args.has("Werror") && with_warnings > 0) {
    std::fprintf(stderr, "kirlint: %d program(s) with warnings (--Werror)\n", with_warnings);
    return 1;
  }
  return 0;
}
