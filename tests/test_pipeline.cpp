// Tests for multi-kernel program protection: the HISTO-EQ three-stage
// pipeline under baseline execution, Hauberk FT instrumentation, and the
// guardian's per-kernel recovery.
#include <gtest/gtest.h>

#include "hauberk/pipeline.hpp"
#include "hauberk/runtime.hpp"
#include "workloads/histo_eq.hpp"

using namespace hauberk;
using namespace hauberk::core;
using workloads::HistoEq;

namespace {

struct PipelineFx {
  std::vector<kir::Kernel> kernels = HistoEq::build_kernels();
  std::vector<KernelVariants> variants;
  std::vector<std::int32_t> image = HistoEq::make_image(11, 512);
  HistoEq::Job job{image};
  std::vector<std::unique_ptr<ControlBlock>> cbs;
  std::vector<PipelineStage> ft_stages;
  std::vector<const kir::BytecodeProgram*> baselines;

  PipelineFx() {
    for (const auto& k : kernels) variants.push_back(build_variants(k));
    for (auto& v : variants) {
      cbs.push_back(std::make_unique<ControlBlock>(v.ft));
      ft_stages.push_back({&v.ft, cbs.back().get()});
      baselines.push_back(&v.baseline);
    }
  }
};

std::vector<std::int32_t> as_ints(const ProgramOutput& o) {
  std::vector<std::int32_t> v(o.words.size());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<std::int32_t>(o.words[i]);
  return v;
}

}  // namespace

TEST(HistoEq, BaselinePipelineMatchesNativeGolden) {
  PipelineFx fx;
  gpusim::Device dev;
  fx.job.stage_inputs(dev);
  for (int s = 0; s < HistoEq::kStages; ++s) {
    const auto args = fx.job.args(s);
    const auto res = dev.launch(fx.variants[static_cast<std::size_t>(s)].baseline,
                                fx.job.config(s), args);
    ASSERT_EQ(res.status, gpusim::LaunchStatus::Ok) << "stage " << s;
  }
  EXPECT_EQ(as_ints(fx.job.read_output(dev)), HistoEq::golden(fx.image));
}

TEST(HistoEq, EqualizationActuallyFlattensTheHistogram) {
  // Sanity of the workload itself: the input is dark-skewed; after
  // equalization the output must use the bright half of the range.
  PipelineFx fx;
  const auto out = HistoEq::golden(fx.image);
  std::int32_t in_max = 0, out_max = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    in_max = std::max(in_max, fx.image[i]);
    out_max = std::max(out_max, out[i]);
  }
  EXPECT_GE(out_max, 250);
  EXPECT_GT(out_max, in_max - 5);
}

TEST(Pipeline, ProtectedRunCompletesWithoutAlarms) {
  PipelineFx fx;
  gpusim::Device dev;
  Guardian guardian;
  const auto out =
      run_pipeline_protected(guardian, dev, nullptr, fx.ft_stages, fx.baselines, fx.job);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(static_cast<int>(out.stages.size()), HistoEq::kStages);
  for (const auto& s : out.stages) EXPECT_EQ(s.verdict, RecoveryVerdict::Success);
  EXPECT_EQ(as_ints(out.output), HistoEq::golden(fx.image));
  EXPECT_EQ(out.total_executions, HistoEq::kStages);
}

TEST(Pipeline, TransientFaultMidPipelineIsRecovered) {
  PipelineFx fx;
  gpusim::Device dev;
  // Configure loop detectors so a wrecked accumulator is caught.
  for (std::size_t s = 0; s < fx.variants.size(); ++s) {
    gpusim::Device clean;
    HistoEq::Job job2{fx.image};
    // Profile stage s on a clean device: stage inputs + replay prerequisites.
    job2.stage_inputs(clean);
    for (std::size_t p = 0; p < s; ++p) {
      const auto args = job2.args(static_cast<int>(p));
      ASSERT_EQ(clean.launch(fx.variants[p].baseline, job2.config(static_cast<int>(p)), args)
                    .status,
                gpusim::LaunchStatus::Ok);
    }
    ControlBlock prof_cb(fx.variants[s].profiler);
    prof_cb.prepare_profiling(job2.config(static_cast<int>(s)).total_threads());
    const auto args = job2.args(static_cast<int>(s));
    gpusim::LaunchOptions opts;
    opts.hooks = &prof_cb;
    ASSERT_EQ(
        clean.launch(fx.variants[s].profiler, job2.config(static_cast<int>(s)), args, opts)
            .status,
        gpusim::LaunchStatus::Ok);
    fx.cbs[s]->configure_from_profile(prof_cb.profiled_samples());
  }

  // A transient ALU fault that corrupts a handful of early operations.
  // Low-order bits only: wrecks computed values (bins, counts) without
  // pushing addresses beyond physical memory, so the failure manifests as
  // an SDC alarm rather than repeated crashes.
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Transient;
  fm.component = gpusim::DeviceFaultModel::Component::ALU;
  fm.mask = 0x00003f00;
  fm.duration_ops = 20;
  dev.install_fault(fm);

  Guardian guardian;
  const auto out =
      run_pipeline_protected(guardian, dev, nullptr, fx.ft_stages, fx.baselines, fx.job);
  ASSERT_TRUE(out.completed);
  // The final product must be correct despite the fault.
  EXPECT_EQ(as_ints(out.output), HistoEq::golden(fx.image));
}

TEST(Pipeline, StageCountMismatchIsRejected) {
  PipelineFx fx;
  gpusim::Device dev;
  Guardian guardian;
  auto stages = fx.ft_stages;
  stages.pop_back();
  auto baselines = fx.baselines;
  EXPECT_THROW(
      (void)run_pipeline_protected(guardian, dev, nullptr, stages, baselines, fx.job),
      std::invalid_argument);
}

TEST(Pipeline, CheckpointServesStageReexecutions) {
  // Force an alarm in stage 2 (tight ranges): the diagnosis reexecution must
  // come from the checkpoint, not from a full re-stage + replay.
  PipelineFx fx;
  gpusim::Device dev;
  for (auto& d : fx.cbs[2]->detectors()) {
    if (d.meta.is_iteration_check) continue;
    d.ranges.pos = {true, 1e20, 2e20};
    d.configured = true;
  }
  Guardian guardian;
  const auto out =
      run_pipeline_protected(guardian, dev, nullptr, fx.ft_stages, fx.baselines, fx.job);
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.stages[2].verdict, RecoveryVerdict::FalseAlarm);
  EXPECT_GE(out.stages[2].checkpoint_restores, 1);
  EXPECT_EQ(as_ints(out.output), HistoEq::golden(fx.image));
}
