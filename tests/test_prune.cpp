// Unit tests for the static fault-site pruning stack: kir::DefUseAnalysis
// (bit-liveness, divergence, dominance facts, cone signatures), the
// hauberk::prune PruningPlan s-expression round trip + digest, the
// swifi::prune_specs equivalence partitioner, and the weighted-aggregation
// plumbing (OutcomeCounts::add, trial_weights, result-log populations,
// campaign-digest binding).
#include <gtest/gtest.h>

#include <stdexcept>

#include "hauberk/prune.hpp"
#include "hauberk/runtime.hpp"
#include "kir/analysis_manager.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"
#include "kir/defuse.hpp"
#include "swifi/campaign.hpp"
#include "swifi/prune.hpp"
#include "swifi/resultlog.hpp"
#include "swifi/service.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::kir;

namespace {

/// Variable id by source name; fails the test when absent.
VarId vid(const Kernel& k, const std::string& name) {
  for (VarId v = 0; v < k.vars.size(); ++v)
    if (k.vars[v].name == name) return v;
  ADD_FAILURE() << "no variable named " << name;
  return kInvalidVar;
}

}  // namespace

// --- DefUseAnalysis: bit-liveness ("observed bits") ---

TEST(DefUse, BitAndConstKillsMaskedOutBits) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto x = kb.let("x", kb.load_i32(p));
  auto y = kb.let("y", x & i32c(0xff));
  kb.store(p, y);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  EXPECT_EQ(du.live_mask(vid(k, "x")), 0xffu);
  EXPECT_EQ(du.live_mask(vid(k, "y")), 0xffffffffu);
  EXPECT_FALSE(du.dead_destination(vid(k, "x")));
}

TEST(DefUse, ShlConstKillsHighBits) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto x = kb.let("x", kb.load_i32(p));
  auto y = kb.let("y", x << i32c(16));
  kb.store(p, y);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  // Bits 16..31 of x are shifted out before the store observes them.
  EXPECT_EQ(du.live_mask(vid(k, "x")), 0x0000ffffu);
}

TEST(DefUse, ShrConstKeepsSignAndHighBits) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto x = kb.let("x", kb.load_i32(p));
  auto y = kb.let("y", x >> i32c(16));
  kb.store(p, y);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  // Arithmetic shift: the low 16 bits never reach the store; the sign bit
  // (already in the high half) smears into every result bit.
  EXPECT_EQ(du.live_mask(vid(k, "x")), 0xffff0000u);
}

TEST(DefUse, BitOrConstKillsForcedOneBits) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto x = kb.let("x", kb.load_i32(p));
  auto y = kb.let("y", x | i32c(0x0f));
  kb.store(p, y);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  EXPECT_EQ(du.live_mask(vid(k, "x")), 0xfffffff0u);
}

TEST(DefUse, MaskingComposesTransitively) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto x = kb.let("x", kb.load_i32(p));
  auto y = kb.let("y", x & i32c(0x00ffff00));
  auto z = kb.let("z", y >> i32c(8));
  kb.store(p, z & i32c(0xff));
  const auto k = kb.build();
  DefUseAnalysis du(k);
  // Store observes only (z & 0xff); z = y >> 8, so y contributes bits
  // 8..15 (plus the sign smear, masked away by y's own & 0x00ffff00).
  EXPECT_EQ(du.live_mask(vid(k, "z")), 0xffu);
  EXPECT_EQ(du.live_mask(vid(k, "y")), 0x0000ff00u);
  EXPECT_EQ(du.live_mask(vid(k, "x")), 0x0000ff00u);
}

TEST(DefUse, DeadDestinationHasZeroLiveMask) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto x = kb.let("x", kb.load_i32(p));
  auto dead = kb.let("dead", x + i32c(1));
  (void)dead;
  kb.store(p, x);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  EXPECT_TRUE(du.dead_destination(vid(k, "dead")));
  EXPECT_EQ(du.live_mask(vid(k, "dead")), 0u);
  EXPECT_FALSE(du.dead_destination(vid(k, "x")));
}

TEST(DefUse, AddressAndConditionRootsObserveAllBits) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto idx = kb.let("idx", kb.load_i32(p) & i32c(0xf));
  auto addr_in = kb.let("addr_in", kb.load_i32(p + i32c(1)));
  kb.store(p + idx, kb.load_f32(p + addr_in));
  const auto k = kb.build();
  DefUseAnalysis du(k);
  EXPECT_EQ(du.live_mask(vid(k, "addr_in")), 0xffffffffu);
  EXPECT_TRUE(du.var(vid(k, "addr_in")).feeds_address);
  EXPECT_TRUE(du.var(vid(k, "idx")).feeds_address);
}

// --- DefUseAnalysis: divergence, control, dominance facts ---

TEST(DefUse, ThreadBuiltinsAndLoadsSeedDivergence) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto u = kb.let("u", kb.bdim_x() * i32c(2));
  auto t = kb.let("t", kb.tid_x() + i32c(1));
  auto m = kb.let("m", kb.load_i32(p));
  kb.store(p + t, u + m);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  EXPECT_TRUE(du.thread_uniform(vid(k, "u")));
  EXPECT_FALSE(du.thread_uniform(vid(k, "t")));
  EXPECT_FALSE(du.thread_uniform(vid(k, "m")));
}

TEST(DefUse, DivergentControlTaintsBodyDefs) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto n = kb.param_i32("n");
  ExprH inner = i32c(0);
  kb.if_then(kb.tid_x() < n, [&] { inner = kb.let("inner", n + i32c(3)); });
  kb.store(p, inner);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  // `inner` computes from uniform operands, but whether it executes depends
  // on tid: its observed value is thread-dependent.
  EXPECT_FALSE(du.thread_uniform(vid(k, "inner")));
}

TEST(DefUse, AccumulatorIsLoopCarriedAndNotOccurrenceSymmetric) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto n = kb.param_i32("n");
  auto acc = kb.let("acc", f32c(0.0f));
  kb.for_loop("i", i32c(0), n, [&](ExprH i) {
    auto elem = kb.let("elem", kb.load_f32(p + i));
    kb.assign(acc, acc + elem);
  });
  kb.store(p, acc);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  EXPECT_TRUE(du.var(vid(k, "acc")).loop_carried);
  EXPECT_FALSE(du.occurrence_symmetric(vid(k, "acc")));
  // A straight-line per-iteration temporary is occurrence-symmetric.
  EXPECT_FALSE(du.var(vid(k, "elem")).loop_carried);
  EXPECT_TRUE(du.occurrence_symmetric(vid(k, "elem")));
  // The loop iterator steers control.
  EXPECT_TRUE(du.var(vid(k, "i")).feeds_control);
  EXPECT_FALSE(du.occurrence_symmetric(vid(k, "i")));
}

TEST(DefUse, SymmetricLanesShareConeSignature) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  auto n = kb.param_i32("n");
  auto a = kb.let("a", kb.load_f32(p + i32c(0)) * f32c(2.0f));
  auto b = kb.let("b", kb.load_f32(p + i32c(1)) * f32c(3.0f));
  auto odd = kb.let("odd", sqrt_(kb.load_f32(p + i32c(2))));
  kb.store(p + n, a);
  kb.store(p + n + i32c(1), b);
  kb.store(p + n + i32c(2), odd);
  const auto k = kb.build();
  DefUseAnalysis du(k);
  // a and b are structurally identical lanes (identities and constants
  // erased); odd has a different local shape.
  EXPECT_EQ(du.var(vid(k, "a")).cone_sig, du.var(vid(k, "b")).cone_sig);
  EXPECT_NE(du.var(vid(k, "a")).cone_sig, du.var(vid(k, "odd")).cone_sig);
}

TEST(DefUse, AnalysisManagerCachesDefUse) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  kb.store(p, kb.load_i32(p) & i32c(1));
  const auto k = kb.build();
  AnalysisManager am(k);
  const auto* first = &am.def_use();
  const auto* second = &am.def_use();
  EXPECT_EQ(first, second);
  am.invalidate();
  EXPECT_EQ(am.def_use().vars().size(), k.vars.size());
}

// --- PruningPlan: serialization round trip, digest, parser strictness ---

namespace {

prune::PruningPlan sample_plan() {
  prune::PruningPlan plan;
  prune::KernelPruneFacts k1;
  k1.kernel = "CP";
  k1.program_digest = 0x1f2e3d4c5b6a7988ull;
  k1.sites = {{0, 0xffffffffu, 0xa1b2c3d4e5f60718ull, false, true},
              {3, 0x0000ff00u, 0x1111111111111111ull, true, false},
              {7, 0u, 0x2222222222222222ull, true, true}};
  prune::KernelPruneFacts k2;
  k2.kernel = "MRI-Q";
  k2.program_digest = 42;
  k2.sites = {{1, 1u, 2u, false, false}};
  plan.kernels = {k1, k2};
  return plan;
}

}  // namespace

TEST(PruningPlan, SerializeParseRoundTrip) {
  const auto plan = sample_plan();
  const auto text = prune::serialize_pruning_plan(plan);
  const auto back = prune::parse_pruning_plan(text);
  ASSERT_EQ(back.kernels.size(), 2u);
  EXPECT_EQ(back.kernels[0].kernel, "CP");
  EXPECT_EQ(back.kernels[0].program_digest, 0x1f2e3d4c5b6a7988ull);
  ASSERT_EQ(back.kernels[0].sites.size(), 3u);
  EXPECT_EQ(back.kernels[0].sites[1].site_id, 3u);
  EXPECT_EQ(back.kernels[0].sites[1].live_mask, 0x0000ff00u);
  EXPECT_EQ(back.kernels[0].sites[1].cone_sig, 0x1111111111111111ull);
  EXPECT_TRUE(back.kernels[0].sites[1].uniform);
  EXPECT_FALSE(back.kernels[0].sites[1].occ_symmetric);
  EXPECT_EQ(back.kernels[1].kernel, "MRI-Q");
  // Canonical: re-serialization is byte-identical.
  EXPECT_EQ(prune::serialize_pruning_plan(back), text);
}

TEST(PruningPlan, DigestIsStableAndBindsContent) {
  const auto plan = sample_plan();
  const auto d = prune::pruning_plan_digest(plan);
  EXPECT_NE(d, 0u);
  EXPECT_EQ(d, prune::pruning_plan_digest(prune::parse_pruning_plan(
                   prune::serialize_pruning_plan(plan))));
  auto other = plan;
  other.kernels[0].sites[0].live_mask ^= 1u;
  EXPECT_NE(prune::pruning_plan_digest(other), d);
  EXPECT_EQ(prune::pruning_plan_digest(prune::PruningPlan{}), 0u);
}

TEST(PruningPlan, FindByKernelAndSite) {
  const auto plan = sample_plan();
  ASSERT_NE(plan.find("CP"), nullptr);
  EXPECT_EQ(plan.find("nope"), nullptr);
  const auto* k = plan.find("CP");
  ASSERT_NE(k->find(7), nullptr);
  EXPECT_EQ(k->find(7)->live_mask, 0u);
  EXPECT_EQ(k->find(99), nullptr);
  EXPECT_TRUE(prune::statically_benign(*k->find(3), 0x000000ffu));
  EXPECT_FALSE(prune::statically_benign(*k->find(3), 0x00000100u));
}

TEST(PruningPlan, ParserRejectsMalformedInput) {
  const auto text = prune::serialize_pruning_plan(sample_plan());
  EXPECT_THROW((void)prune::parse_pruning_plan(""), std::runtime_error);
  EXPECT_THROW((void)prune::parse_pruning_plan("(hauberk-plan 1)"), std::runtime_error);
  EXPECT_THROW((void)prune::parse_pruning_plan("(hauberk-prune 2)"), std::runtime_error);
  EXPECT_THROW((void)prune::parse_pruning_plan(text + " junk"), std::runtime_error);
  EXPECT_THROW((void)prune::parse_pruning_plan(
                   "(hauberk-prune 1 (kernel \"a\" (program 1) "
                   "(site 0 (live zz) (cone 1) (uniform 0) (occsym 0))))"),
               std::runtime_error);
  // Duplicate kernel / duplicate site entries are rejected.
  EXPECT_THROW((void)prune::parse_pruning_plan(
                   "(hauberk-prune 1 (kernel \"a\" (program 1)) (kernel \"a\" (program 1)))"),
               std::runtime_error);
  EXPECT_THROW((void)prune::parse_pruning_plan(
                   "(hauberk-prune 1 (kernel \"a\" (program 1) "
                   "(site 0 (live 1) (cone 1) (uniform 0) (occsym 0)) "
                   "(site 0 (live 1) (cone 1) (uniform 0) (occsym 0))))"),
               std::runtime_error);
}

// --- build_kernel_prune_facts over a real instrumented workload ---

TEST(PruneFacts, FactsCoverEveryFISiteOfCP) {
  auto w = std::move(workloads::hpc_suite().front());  // CP
  const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
  const auto facts = prune::build_kernel_prune_facts(v.fi_source, v.fi);
  EXPECT_EQ(facts.program_digest, kir::program_digest(v.fi));
  ASSERT_FALSE(facts.sites.empty());
  // Site list is sorted and unique; every FISite of the program is present.
  for (std::size_t i = 1; i < facts.sites.size(); ++i)
    EXPECT_LT(facts.sites[i - 1].site_id, facts.sites[i].site_id);
  for (const auto& site : v.fi.fi_sites)
    EXPECT_NE(facts.find(site.site_id), nullptr) << "missing site " << site.site_id;
  // Dead-window sites are exactly the live_mask == 0 ones the planner
  // counts on (the paper's "inject after last use" arm).
  std::size_t dead = 0;
  for (const auto& s : facts.sites) dead += s.live_mask == 0 ? 1 : 0;
  EXPECT_GT(dead, 0u);
  EXPECT_LT(dead, facts.sites.size());
  // Determinism: a second computation yields identical facts.
  const auto again = prune::build_kernel_prune_facts(v.fi_source, v.fi);
  EXPECT_EQ(prune::serialize_pruning_plan(prune::PruningPlan{{facts}}),
            prune::serialize_pruning_plan(prune::PruningPlan{{again}}));
}

TEST(PruneFacts, DeadWindowLivenessRespectsDetectorsAndLoopCarry) {
  auto w = std::move(workloads::hpc_suite().front());  // CP
  const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
  const auto fi = prune::build_kernel_prune_facts(v.fi_source, v.fi);
  const auto fift = prune::build_kernel_prune_facts(v.fift_source, v.fift);
  const DefUseAnalysis fi_du(v.fi_source);

  // FI build: no detectors anywhere, so a closed dead window is fully Benign
  // — but a loop-carried variable's window never closes (the next iteration
  // re-reads the value after the hook fires).
  std::size_t closed = 0, carried = 0;
  for (const auto& site : v.fi.fi_sites) {
    if (!site.dead_window || site.var >= v.fi_source.vars.size()) continue;
    const auto& du = fi_du.var(site.var);
    const auto* f = fi.find(site.site_id);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(du.detector_observed_mask, 0u) << "FI build has no detectors";
    if (du.loop_carried || du.use_before_def) {
      EXPECT_EQ(f->live_mask, du.observed_mask) << "site " << site.site_id;
      ++carried;
    } else {
      EXPECT_EQ(f->live_mask, 0u) << "site " << site.site_id;
      ++closed;
    }
  }
  EXPECT_GT(closed, 0u);

  // FI&FT build: checksum/dup detectors re-read protected values at check
  // time, so at least one dead-window site must stay detector-live.
  const DefUseAnalysis fift_du(v.fift_source);
  std::size_t detector_live = 0;
  for (const auto& site : v.fift.fi_sites) {
    if (!site.dead_window || site.var >= v.fift_source.vars.size()) continue;
    const auto& du = fift_du.var(site.var);
    const auto* f = fift.find(site.site_id);
    ASSERT_NE(f, nullptr);
    // The detector mask is a subset of the full observed mask, and a closed
    // window's liveness is exactly that subset.
    EXPECT_EQ(du.detector_observed_mask & ~du.observed_mask, 0u);
    if (!du.loop_carried && !du.use_before_def) {
      EXPECT_EQ(f->live_mask, du.detector_observed_mask);
      if (f->live_mask != 0) ++detector_live;
    }
  }
  EXPECT_GT(detector_live, 0u);
}

// --- swifi::prune_specs partitioning ---

namespace {

struct SpecFixture {
  kir::BytecodeProgram prog;
  prune::PruningPlan plan;

  static SpecFixture make() {
    SpecFixture f;
    KernelBuilder kb("fixture");
    auto p = kb.param_ptr("p");
    kb.store(p, kb.load_i32(p) + i32c(1));
    f.prog = kir::lower(kb.build());

    prune::KernelPruneFacts facts;
    facts.kernel = "fixture";
    facts.program_digest = kir::program_digest(f.prog);
    facts.sites = {
        {0, 0xffffffffu, 0xaaaaull, false, true},   // fully live, occ-symmetric
        {1, 0xffffffffu, 0xaaaaull, false, true},   // isomorphic twin of site 0
        {2, 0x0000ff00u, 0xbbbbull, false, false},  // partially live, occ matters
        {3, 0u, 0xccccull, true, true},             // dead site
    };
    f.plan.kernels.push_back(std::move(facts));
    return f;
  }

  static swifi::FaultSpec spec(std::uint32_t site, std::uint32_t thread,
                               std::uint32_t occ, std::uint32_t mask) {
    swifi::FaultSpec s;
    s.site_id = site;
    s.thread = thread;
    s.occurrence = occ;
    s.mask = mask;
    return s;
  }
};

}  // namespace

TEST(PruneSpecs, CollapsesThreadsTwinsAndBenignSpecs) {
  const auto f = SpecFixture::make();
  const std::vector<swifi::FaultSpec> specs = {
      SpecFixture::spec(0, 0, 1, 0x1),     // [0] class A rep (site 0, lo bit)
      SpecFixture::spec(0, 17, 1, 0x2),    // [1] class A (thread collapsed)
      SpecFixture::spec(0, 5, 9, 0x4),     // [2] class A (occurrence symmetric)
      SpecFixture::spec(1, 3, 1, 0x8),     // [3] class A (isomorphic twin site)
      SpecFixture::spec(2, 0, 1, 0x00000001),  // [4] benign at site 2
      SpecFixture::spec(2, 4, 2, 0x00000002),  // [5] benign at site 2
      SpecFixture::spec(2, 1, 1, 0x00000100),  // [6] live flip, occurrence 1
      SpecFixture::spec(2, 1, 2, 0x00000200),  // [7] live flip, occurrence 2
      SpecFixture::spec(3, 2, 1, 0x80000000),  // [8] benign at dead site 3
  };
  const auto pruned = swifi::prune_specs(f.plan, "fixture", f.prog, specs);

  // Classes: A {0,1,2,3}, benign@2 {4,5}, live@2 occ1 {6}, live@2 occ2 {7},
  // benign@3 {8} -> 5 representatives.
  ASSERT_EQ(pruned.specs.size(), 5u);
  EXPECT_EQ(pruned.stats.total_specs, 9u);
  EXPECT_EQ(pruned.stats.kept_specs, 5u);
  EXPECT_EQ(pruned.stats.benign_specs, 3u);
  EXPECT_EQ(pruned.stats.benign_classes, 2u);
  EXPECT_EQ(pruned.stats.dead_site_specs, 1u);
  EXPECT_EQ(pruned.stats.unknown_site_specs, 0u);

  // Representatives keep original relative order and carry class sizes.
  EXPECT_EQ(pruned.rep_index, (std::vector<std::uint32_t>{0, 4, 6, 7, 8}));
  EXPECT_EQ(pruned.weights, (std::vector<std::uint32_t>{4, 2, 1, 1, 1}));
  std::uint64_t weight_sum = 0;
  for (const auto w : pruned.weights) weight_sum += w;
  EXPECT_EQ(weight_sum, specs.size());

  // class_of maps every full spec onto its representative slot.
  ASSERT_EQ(pruned.class_of.size(), specs.size());
  EXPECT_EQ(pruned.class_of[1], pruned.class_of[0]);
  EXPECT_EQ(pruned.class_of[2], pruned.class_of[0]);
  EXPECT_EQ(pruned.class_of[3], pruned.class_of[0]);
  EXPECT_EQ(pruned.class_of[5], pruned.class_of[4]);
  EXPECT_NE(pruned.class_of[6], pruned.class_of[7]);

  // Benign flags mark the two all-Benign classes.
  ASSERT_EQ(pruned.benign.size(), 5u);
  EXPECT_FALSE(pruned.benign[0]);
  EXPECT_TRUE(pruned.benign[1]);
  EXPECT_TRUE(pruned.benign[4]);

  EXPECT_EQ(pruned.plan_digest, prune::pruning_plan_digest(f.plan));

  // Pure function: identical inputs partition identically.
  const auto again = swifi::prune_specs(f.plan, "fixture", f.prog, specs);
  EXPECT_EQ(again.rep_index, pruned.rep_index);
  EXPECT_EQ(again.weights, pruned.weights);
  EXPECT_EQ(again.class_of, pruned.class_of);
}

TEST(PruneSpecs, UnknownSitesAreKeptUnpruned) {
  const auto f = SpecFixture::make();
  const std::vector<swifi::FaultSpec> specs = {
      SpecFixture::spec(99, 0, 1, 0x1),
      SpecFixture::spec(99, 0, 1, 0x1),  // identical spec, still kept
  };
  const auto pruned = swifi::prune_specs(f.plan, "fixture", f.prog, specs);
  EXPECT_EQ(pruned.specs.size(), 2u);
  EXPECT_EQ(pruned.stats.unknown_site_specs, 2u);
  EXPECT_EQ(pruned.weights, (std::vector<std::uint32_t>{1, 1}));
}

TEST(PruneSpecs, RejectsMissingKernelAndDigestMismatch) {
  const auto f = SpecFixture::make();
  const std::vector<swifi::FaultSpec> specs = {SpecFixture::spec(0, 0, 1, 1)};
  EXPECT_THROW((void)swifi::prune_specs(f.plan, "other-kernel", f.prog, specs),
               std::runtime_error);
  auto stale = f.plan;
  stale.kernels[0].program_digest ^= 0xdeadbeefull;
  EXPECT_THROW((void)swifi::prune_specs(stale, "fixture", f.prog, specs),
               std::runtime_error);
}

// --- cross_check_benign ---

TEST(PruneCrossCheck, FlagsOnlyUnsoundBenignProofs) {
  const auto f = SpecFixture::make();
  const auto& facts = f.plan.kernels[0];
  const std::vector<swifi::FaultSpec> specs = {
      SpecFixture::spec(3, 0, 1, 0x1),         // benign (dead site)
      SpecFixture::spec(2, 0, 1, 0x00000001),  // benign (masked bits)
      SpecFixture::spec(2, 0, 1, 0x00000100),  // live
      SpecFixture::spec(3, 1, 1, 0x2),         // benign (dead site)
  };
  using swifi::Outcome;
  // Benign specs resolving Masked / NotActivated are fine; a live spec may
  // do anything.
  EXPECT_TRUE(swifi::cross_check_benign(
                  facts, specs,
                  {Outcome::Masked, Outcome::NotActivated, Outcome::Undetected,
                   Outcome::Masked})
                  .empty());
  // A benign spec with an SDC ground truth is an analysis soundness bug.
  const auto bad = swifi::cross_check_benign(
      facts, specs,
      {Outcome::Masked, Outcome::Undetected, Outcome::Masked, Outcome::Failure});
  ASSERT_EQ(bad.size(), 2u);
  EXPECT_EQ(bad[0].spec_index, 1u);
  EXPECT_EQ(bad[0].outcome, Outcome::Undetected);
  EXPECT_EQ(bad[1].spec_index, 3u);
  EXPECT_EQ(bad[1].outcome, Outcome::Failure);
}

// --- weighted aggregation plumbing ---

TEST(PruneWeights, OutcomeCountsWeightedAdd) {
  swifi::OutcomeCounts c;
  c.add(swifi::Outcome::Masked, 3);
  c.add(swifi::Outcome::Undetected, 2);
  c.add(swifi::Outcome::Masked, 1);
  EXPECT_EQ(c.masked, 4u);
  EXPECT_EQ(c.undetected, 2u);
  EXPECT_EQ(c.activated(), 6u);
}

TEST(PruneWeights, CampaignConfigTrialWeightDefaultsToOne) {
  swifi::CampaignConfig cfg;
  EXPECT_EQ(cfg.trial_weight(0), 1u);
  cfg.trial_weights = {3, 0, 7};
  EXPECT_EQ(cfg.trial_weight(0), 3u);
  EXPECT_EQ(cfg.trial_weight(1), 1u);  // 0 encodes "unweighted"
  EXPECT_EQ(cfg.trial_weight(2), 7u);
  EXPECT_EQ(cfg.trial_weight(3), 1u);  // out of range -> unweighted
}

TEST(PruneWeights, ResultRecordWeightRoundTrip) {
  swifi::ResultRecord rec{};
  EXPECT_EQ(rec.weight(), 1u);  // legacy zero reserved bytes decode as 1
  rec.set_weight(5);
  EXPECT_EQ(rec.weight(), 5u);
  rec.set_weight(0x00fedcbau);
  EXPECT_EQ(rec.weight(), 0x00fedcbau);
  rec.set_weight(0x12345678u);  // saturates at the u24 ceiling
  EXPECT_EQ(rec.weight(), 0x00ffffffu);
  rec.set_weight(0);
  EXPECT_EQ(rec.weight(), 1u);
}

TEST(PruneDigest, CampaignDigestBindsPruneDigest) {
  auto w = std::move(workloads::hpc_suite().front());
  const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
  const std::vector<swifi::FaultSpec> specs = {SpecFixture::spec(0, 0, 1, 1)};
  const auto req = w->requirement();
  const auto base = swifi::campaign_digest(v.fi, specs, req, 7);
  // prune_digest 0 is the historic digest (stored checkpoints stay valid).
  EXPECT_EQ(swifi::campaign_digest(v.fi, specs, req, 7, gpusim::ecc::Scheme::None, 0, 0),
            base);
  const auto pruned =
      swifi::campaign_digest(v.fi, specs, req, 7, gpusim::ecc::Scheme::None, 0, 0x1234);
  EXPECT_NE(pruned, base);
  EXPECT_NE(swifi::campaign_digest(v.fi, specs, req, 7, gpusim::ecc::Scheme::None, 0,
                                   0x1235),
            pruned);
}
