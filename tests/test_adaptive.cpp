// Tests for the on-line adaptive protection service: the recovery engine's
// alpha recalibration loop of Section VI(iii) driving false positives down
// over a stream of jobs with varying datasets.
#include <gtest/gtest.h>

#include "hauberk/adaptive.hpp"
#include "hauberk/runtime.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::core;

namespace {

struct Stream {
  std::unique_ptr<workloads::Workload> w;
  KernelVariants v;
  gpusim::Device dev;
  std::unique_ptr<ControlBlock> cb;

  explicit Stream(std::unique_ptr<workloads::Workload> wl, int training_sets = 1)
      : w(std::move(wl)), v(build_variants(w->build_kernel(workloads::Scale::Tiny))) {
    // Train on a handful of datasets (deliberately few: the adaptive loop is
    // what must cope with the remaining imprecision).
    std::vector<std::unique_ptr<KernelJob>> jobs;
    std::vector<KernelJob*> ptrs;
    for (int t = 0; t < training_sets; ++t) {
      jobs.push_back(w->make_job(w->make_dataset(1000 + static_cast<std::uint64_t>(t),
                                                 workloads::Scale::Tiny)));
      ptrs.push_back(jobs.back().get());
    }
    const auto pd = profile(dev, v, ptrs);
    cb = make_configured_control_block(v.ft, pd);
  }

  RecoveryOutcome run_one(AdaptiveProtection& svc, std::uint64_t seed) {
    auto job = w->make_job(w->make_dataset(seed, workloads::Scale::Tiny));
    return svc.run(dev, nullptr, v.ft, *job);
  }
};

}  // namespace

TEST(Adaptive, AlphaStaysAtOneOnWellTrainedProgram) {
  // PNS's detectors converge from one training set: no false alarms, so the
  // controller never raises alpha.
  Stream s(workloads::make_pns());
  AdaptiveProtection::Config cfg;
  cfg.window = 5;
  AdaptiveProtection svc(*s.cb, cfg);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto out = s.run_one(svc, 2000 + seed);
    EXPECT_NE(out.verdict, RecoveryVerdict::FalseAlarm) << "seed " << seed;
  }
  EXPECT_DOUBLE_EQ(svc.alpha(), 1.0);
  EXPECT_EQ(svc.total_false_alarms(), 0u);
}

TEST(Adaptive, AlphaRisesUnderFalseAlarmsAndSuppressesThem) {
  // MRI-FHD trained on a single dataset alarms on most new datasets at
  // alpha=1; the adaptive loop must raise alpha and the false-alarm rate
  // must drop.
  Stream s(workloads::make_mri_fhd());
  AdaptiveProtection::Config cfg;
  cfg.window = 6;
  AdaptiveProtection svc(*s.cb, cfg);

  int early_fp = 0, late_fp = 0;
  double alpha_peak = 1.0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    early_fp += s.run_one(svc, 3000 + seed).verdict == RecoveryVerdict::FalseAlarm;
    alpha_peak = std::max(alpha_peak, svc.alpha());
  }
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    late_fp += s.run_one(svc, 4000 + seed).verdict == RecoveryVerdict::FalseAlarm;
    alpha_peak = std::max(alpha_peak, svc.alpha());
  }

  EXPECT_GT(early_fp, 0) << "single-set MRI-FHD training must produce false alarms";
  EXPECT_GT(alpha_peak, 1.0) << "the controller must have raised alpha at some point";
  // Alpha widening plus the guardian's on-line range learning must make
  // false alarms rarer over time (alpha may have decayed back by now — the
  // controller is a feedback loop, not a ratchet).
  EXPECT_LE(late_fp, early_fp);
}

TEST(Adaptive, AlphaDecaysBackWhenAlarmsStop) {
  Stream s(workloads::make_cp());
  AdaptiveProtection::Config cfg;
  cfg.window = 4;
  AdaptiveProtection svc(*s.cb, cfg);
  // Manually push alpha up, then feed clean windows: it must shrink to 1.
  for (auto& d : s.cb->detectors()) (void)d;
  // Force via false alarms: break ranges once.
  for (auto& d : s.cb->detectors()) {
    if (d.meta.is_iteration_check || !d.configured) continue;
    d.ranges = RangeSet{};
    d.ranges.pos = {true, 1e20, 2e20};
  }
  (void)s.run_one(svc, 5000);  // false alarm; also absorbs outliers (learns)
  for (std::uint64_t seed = 1; seed < 13; ++seed) (void)s.run_one(svc, 5000 + seed);
  EXPECT_DOUBLE_EQ(svc.alpha(), 1.0) << "clean windows must decay alpha to the floor";
}

TEST(Adaptive, WindowRatioTracksRecentRunsOnly) {
  Stream s(workloads::make_pns());
  AdaptiveProtection::Config cfg;
  cfg.window = 100;  // never closes during the test
  AdaptiveProtection svc(*s.cb, cfg);
  for (std::uint64_t seed = 0; seed < 5; ++seed) (void)s.run_one(svc, 6000 + seed);
  EXPECT_EQ(svc.runs(), 5u);
  EXPECT_DOUBLE_EQ(svc.window_fp_ratio(), 0.0);
}
