// Determinism tests for the parallel campaign engine (swifi/executor.hpp):
// identical seeds and specs must produce bitwise-identical per-fault
// outcomes and counts for every worker count, and the executor must agree
// exactly with the single-device run_campaign path.
#include <gtest/gtest.h>

#include "hauberk/runtime.hpp"
#include "swifi/campaign.hpp"
#include "swifi/executor.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::swifi;
using namespace hauberk::workloads;

namespace {

struct Fixture {
  std::unique_ptr<Workload> w;
  core::KernelVariants v;
  Dataset ds;
  core::ProfileData pd;

  explicit Fixture(std::unique_ptr<Workload> wl, std::uint64_t seed = 21)
      : w(std::move(wl)),
        v(core::build_variants(w->build_kernel(Scale::Tiny))),
        ds(w->make_dataset(seed, Scale::Tiny)) {
    gpusim::Device dev;
    auto job = w->make_job(ds);
    pd = core::profile(dev, v, {job.get()});
  }

  /// Every invocation stages the same dataset and (optionally) an
  /// identically configured control block — the factory contract.
  [[nodiscard]] WorkerContextFactory factory(bool with_cb) const {
    return [this, with_cb] {
      WorkerContext ctx;
      ctx.device = std::make_unique<gpusim::Device>();
      ctx.job = w->make_job(ds);
      if (with_cb) ctx.cb = core::make_configured_control_block(v.fift, pd);
      return ctx;
    };
  }
};

void expect_same_result(const CampaignResult& a, const CampaignResult& b, const char* what) {
  ASSERT_EQ(a.per_fault.size(), b.per_fault.size()) << what;
  for (std::size_t i = 0; i < a.per_fault.size(); ++i)
    EXPECT_EQ(a.per_fault[i], b.per_fault[i]) << what << " trial " << i;
  EXPECT_EQ(a.counts.failure, b.counts.failure) << what;
  EXPECT_EQ(a.counts.masked, b.counts.masked) << what;
  EXPECT_EQ(a.counts.detected_masked, b.counts.detected_masked) << what;
  EXPECT_EQ(a.counts.detected, b.counts.detected) << what;
  EXPECT_EQ(a.counts.undetected, b.counts.undetected) << what;
  EXPECT_EQ(a.counts.not_activated, b.counts.not_activated) << what;
}

}  // namespace

TEST(CampaignExecutor, PlannedCampaignInvariantAcrossWorkerCounts) {
  Fixture f(make_cp());
  PlanOptions opt;
  opt.max_vars = 8;
  opt.masks_per_var = 4;
  opt.seed = 7;
  const auto specs = plan_faults(f.v.fi, f.pd, opt);
  ASSERT_FALSE(specs.empty());

  CampaignExecutor one(1);
  const auto base = one.run(f.v.fi, f.factory(false), specs, f.w->requirement());
  EXPECT_EQ(base.per_fault.size(), specs.size());
  for (const int workers : {2, 8}) {
    CampaignExecutor ex(workers);
    EXPECT_EQ(ex.workers(), workers);
    const auto res = ex.run(f.v.fi, f.factory(false), specs, f.w->requirement());
    expect_same_result(base, res, "planned FI campaign");
  }
}

TEST(CampaignExecutor, MatchesSingleDeviceRunCampaign) {
  Fixture f(make_mri_q());
  PlanOptions opt;
  opt.max_vars = 6;
  opt.masks_per_var = 4;
  const auto specs = plan_faults(f.v.fi, f.pd, opt);

  gpusim::Device dev;
  auto job = f.w->make_job(f.ds);
  const auto serial = run_campaign(dev, f.v.fi, *job, nullptr, specs, f.w->requirement());

  CampaignExecutor ex(4);
  const auto parallel = ex.run(f.v.fi, f.factory(false), specs, f.w->requirement());
  expect_same_result(serial, parallel, "run_campaign vs executor");
}

TEST(CampaignExecutor, FiFtCampaignWithControlBlockInvariant) {
  Fixture f(make_cp());
  PlanOptions opt;
  opt.max_vars = 8;
  opt.masks_per_var = 4;
  opt.error_bits = 6;
  opt.seed = 5;
  const auto specs = plan_faults(f.v.fift, f.pd, opt);
  ASSERT_FALSE(specs.empty());

  CampaignExecutor one(1);
  const auto base = one.run(f.v.fift, f.factory(true), specs, f.w->requirement());
  EXPECT_GT(base.counts.detected + base.counts.detected_masked, 0u)
      << "detectors must fire so the invariance check covers detected outcomes";
  for (const int workers : {2, 8}) {
    CampaignExecutor ex(workers);
    const auto res = ex.run(f.v.fift, f.factory(true), specs, f.w->requirement());
    expect_same_result(base, res, "FI&FT campaign");
  }
}

TEST(CampaignExecutor, MemoryFaultCampaignInvariant) {
  Fixture f(make_sad());
  CampaignExecutor one(1);
  const auto base =
      one.run_memory_faults(f.v.baseline, f.factory(false), 11, 40, 3, f.w->requirement());
  EXPECT_EQ(base.per_fault.size(), 40u);
  for (const int workers : {2, 8}) {
    CampaignExecutor ex(workers);
    const auto res =
        ex.run_memory_faults(f.v.baseline, f.factory(false), 11, 40, 3, f.w->requirement());
    expect_same_result(base, res, "memory-fault campaign");
  }
}

TEST(CampaignExecutor, CodeFaultCampaignInvariant) {
  Fixture f(make_pns());
  CampaignExecutor one(1);
  const auto base = one.run_code_faults(f.v.baseline, f.factory(false), 9, 50, f.w->requirement());
  EXPECT_EQ(base.per_fault.size(), 50u);
  EXPECT_GT(base.counts.failure, 0u);
  for (const int workers : {2, 8}) {
    CampaignExecutor ex(workers);
    const auto res =
        ex.run_code_faults(f.v.baseline, f.factory(false), 9, 50, f.w->requirement());
    expect_same_result(base, res, "code-fault campaign");
  }
}

TEST(CampaignExecutor, EmptySpecsYieldEmptyResult) {
  Fixture f(make_cp());
  CampaignExecutor ex(2);
  const auto res = ex.run(f.v.fi, f.factory(false), {}, f.w->requirement());
  EXPECT_TRUE(res.per_fault.empty());
  EXPECT_EQ(res.counts.activated() + res.counts.not_activated, 0u);
}

TEST(CampaignExecutor, ZeroWorkersSelectsHardwareConcurrency) {
  CampaignExecutor ex;
  EXPECT_GE(ex.workers(), 1);
}
