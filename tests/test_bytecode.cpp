// Exhaustive interpreter-semantics tests: every binary/unary operator per
// operand type against natively computed expectations (including edge
// values: INT_MIN, NaN, infinities, negative zero), plus disassembler and
// code-fault validator properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"
#include "hauberk/runtime.hpp"
#include "swifi/campaign.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::kir;

namespace {

/// Run a single-thread kernel computing `expr(a, b)` and return the result.
Value eval_binary(BinOp op, Value a, Value b, gpusim::LaunchStatus* status = nullptr) {
  KernelBuilder kb("bin");
  auto pa = a.type == DType::F32 ? kb.param_f32("a")
            : a.type == DType::PTR ? kb.param_ptr("a") : kb.param_i32("a");
  auto pb = b.type == DType::F32 ? kb.param_f32("b")
            : b.type == DType::PTR ? kb.param_ptr("b") : kb.param_i32("b");
  auto out = kb.param_ptr("out");
  kb.store(out, ExprH(Expr::make_binary(op, pa.node(), pb.node())));
  auto prog = lower(kb.build());
  gpusim::Device dev;
  const auto oa = dev.mem().alloc(1);
  const Value args[] = {a, b, Value::ptr(oa)};
  const auto res = dev.launch(prog, gpusim::LaunchConfig{}, args);
  if (status) *status = res.status;
  if (res.status != gpusim::LaunchStatus::Ok) return Value{};
  std::uint32_t w = 0;
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&w, 1));
  const DType rt = Expr::make_binary(op, pa.node(), pb.node())->type;
  return Value{rt, w};
}

Value eval_unary(UnOp op, Value a) {
  KernelBuilder kb("un");
  auto pa = a.type == DType::F32 ? kb.param_f32("a") : kb.param_i32("a");
  auto out = kb.param_ptr("out");
  kb.store(out, ExprH(Expr::make_unary(op, pa.node())));
  auto prog = lower(kb.build());
  gpusim::Device dev;
  const auto oa = dev.mem().alloc(1);
  const Value args[] = {a, Value::ptr(oa)};
  EXPECT_EQ(dev.launch(prog, gpusim::LaunchConfig{}, args).status, gpusim::LaunchStatus::Ok);
  std::uint32_t w = 0;
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&w, 1));
  return Value{Expr::make_unary(op, pa.node())->type, w};
}

constexpr float kInf = std::numeric_limits<float>::infinity();

}  // namespace

// --- float binary semantics match host single-precision arithmetic ---

struct FloatBinCase {
  BinOp op;
  float a, b;
  float (*ref)(float, float);
};

class FloatBinOps : public ::testing::TestWithParam<FloatBinCase> {};

TEST_P(FloatBinOps, MatchesHostArithmeticBitExactly) {
  const auto& c = GetParam();
  const Value r = eval_binary(c.op, Value::f32(c.a), Value::f32(c.b));
  const float expect = c.ref(c.a, c.b);
  if (std::isnan(expect))
    EXPECT_TRUE(std::isnan(r.as_f32()));
  else
    EXPECT_EQ(r.bits, Value::f32(expect).bits);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FloatBinOps,
    ::testing::Values(
        FloatBinCase{BinOp::Add, 1.5f, 2.25f, [](float a, float b) { return a + b; }},
        FloatBinCase{BinOp::Add, 1e30f, 1e30f, [](float a, float b) { return a + b; }},
        FloatBinCase{BinOp::Sub, -0.0f, 0.0f, [](float a, float b) { return a - b; }},
        FloatBinCase{BinOp::Mul, 3.0f, -7.5f, [](float a, float b) { return a * b; }},
        FloatBinCase{BinOp::Mul, 1e30f, 1e30f, [](float a, float b) { return a * b; }},  // inf
        FloatBinCase{BinOp::Div, 1.0f, 3.0f, [](float a, float b) { return a / b; }},
        FloatBinCase{BinOp::Div, 5.0f, 0.0f, [](float a, float b) { return a / b; }},    // inf
        FloatBinCase{BinOp::Div, 0.0f, 0.0f, [](float a, float b) { return a / b; }},    // NaN
        FloatBinCase{BinOp::Mod, 7.5f, 2.0f, [](float a, float b) { return std::fmod(a, b); }},
        FloatBinCase{BinOp::Min, kInf, 3.0f, [](float a, float b) { return std::fmin(a, b); }},
        FloatBinCase{BinOp::Max, -kInf, 3.0f, [](float a, float b) { return std::fmax(a, b); }}));

// --- integer binary semantics: wraparound, division, shifts ---

TEST(IntBinOps, AdditionWrapsLikeTwosComplement) {
  const Value r = eval_binary(BinOp::Add, Value::i32(0x7fffffff), Value::i32(1));
  EXPECT_EQ(r.as_i32(), std::numeric_limits<std::int32_t>::min());
}

TEST(IntBinOps, MultiplicationWraps) {
  const Value r = eval_binary(BinOp::Mul, Value::i32(1 << 30), Value::i32(4));
  EXPECT_EQ(r.as_i32(), 0);
}

TEST(IntBinOps, DivisionTruncatesTowardZero) {
  EXPECT_EQ(eval_binary(BinOp::Div, Value::i32(-7), Value::i32(2)).as_i32(), -3);
  EXPECT_EQ(eval_binary(BinOp::Mod, Value::i32(-7), Value::i32(2)).as_i32(), -1);
}

TEST(IntBinOps, IntMinDividedByMinusOneDoesNotTrap) {
  // Would be UB/SIGFPE on x86; the simulated ALU wraps via the 64-bit path.
  gpusim::LaunchStatus st;
  const Value r = eval_binary(BinOp::Div, Value::i32(std::numeric_limits<std::int32_t>::min()),
                              Value::i32(-1), &st);
  EXPECT_EQ(st, gpusim::LaunchStatus::Ok);
  EXPECT_EQ(r.as_i32(), std::numeric_limits<std::int32_t>::min());
}

TEST(IntBinOps, ArithmeticShiftRightOnNegatives) {
  EXPECT_EQ(eval_binary(BinOp::Shr, Value::i32(-8), Value::i32(1)).as_i32(), -4);
}

TEST(IntBinOps, ShiftCountMaskedTo5Bits) {
  EXPECT_EQ(eval_binary(BinOp::Shl, Value::i32(1), Value::i32(33)).as_i32(), 2);
}

TEST(IntBinOps, ComparisonsYieldZeroOne) {
  EXPECT_EQ(eval_binary(BinOp::Lt, Value::i32(-5), Value::i32(3)).as_i32(), 1);
  EXPECT_EQ(eval_binary(BinOp::Ge, Value::i32(-5), Value::i32(3)).as_i32(), 0);
  EXPECT_EQ(eval_binary(BinOp::Eq, Value::i32(7), Value::i32(7)).as_i32(), 1);
}

TEST(IntBinOps, LogicalOpsTreatNonzeroAsTrue) {
  EXPECT_EQ(eval_binary(BinOp::LogicalAnd, Value::i32(-3), Value::i32(2)).as_i32(), 1);
  EXPECT_EQ(eval_binary(BinOp::LogicalOr, Value::i32(0), Value::i32(0)).as_i32(), 0);
}

TEST(PtrBinOps, UnsignedComparisonSemantics) {
  // 0xffff0000 > 5 as unsigned pointers (would be negative as signed int).
  EXPECT_EQ(eval_binary(BinOp::Gt, Value::ptr(0xffff0000u), Value::ptr(5)).as_i32(), 1);
}

TEST(PtrBinOps, PointerDifferenceIsInt) {
  const Value r = eval_binary(BinOp::Sub, Value::ptr(100), Value::ptr(108));
  EXPECT_EQ(r.type, DType::I32);
  EXPECT_EQ(static_cast<std::int32_t>(r.bits), -8);
}

// --- float comparisons with NaN ---

TEST(FloatCompare, NaNComparesFalse) {
  const Value nan = Value::f32(std::nanf(""));
  EXPECT_EQ(eval_binary(BinOp::Lt, nan, Value::f32(1.0f)).as_i32(), 0);
  EXPECT_EQ(eval_binary(BinOp::Ge, nan, Value::f32(1.0f)).as_i32(), 0);
  EXPECT_EQ(eval_binary(BinOp::Eq, nan, nan).as_i32(), 0);
  EXPECT_EQ(eval_binary(BinOp::Ne, nan, nan).as_i32(), 1);
}

// --- unary semantics ---

TEST(UnaryOps, SqrtOfNegativeIsNaN) {
  EXPECT_TRUE(std::isnan(eval_unary(UnOp::Sqrt, Value::f32(-4.0f)).as_f32()));
}

TEST(UnaryOps, RsqrtMatchesReference) {
  const Value r = eval_unary(UnOp::Rsqrt, Value::f32(16.0f));
  EXPECT_EQ(r.as_f32(), 0.25f);
}

TEST(UnaryOps, CastI32SaturatesAndZeroesNaN) {
  EXPECT_EQ(eval_unary(UnOp::CastI32, Value::f32(3e9f)).as_i32(), 0x7fffffff);
  EXPECT_EQ(eval_unary(UnOp::CastI32, Value::f32(-3e9f)).as_i32(),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(eval_unary(UnOp::CastI32, Value::f32(std::nanf(""))).as_i32(), 0);
  EXPECT_EQ(eval_unary(UnOp::CastI32, Value::f32(-2.75f)).as_i32(), -2);  // truncation
}

TEST(UnaryOps, CastF32FromNegativeInt) {
  EXPECT_EQ(eval_unary(UnOp::CastF32, Value::i32(-3)).as_f32(), -3.0f);
}

TEST(UnaryOps, AbsAndNeg) {
  EXPECT_EQ(eval_unary(UnOp::Abs, Value::i32(-7)).as_i32(), 7);
  EXPECT_EQ(eval_unary(UnOp::Neg, Value::f32(-0.0f)).bits, Value::f32(0.0f).bits);
  EXPECT_EQ(eval_unary(UnOp::Abs, Value::f32(-2.5f)).as_f32(), 2.5f);
}

TEST(UnaryOps, FloorOfNegative) {
  EXPECT_EQ(eval_unary(UnOp::Floor, Value::f32(-1.25f)).as_f32(), -2.0f);
}

TEST(UnaryOps, TranscendentalsMatchHostFloat) {
  for (float x : {0.25f, 1.0f, 2.5f}) {
    EXPECT_EQ(eval_unary(UnOp::Exp, Value::f32(x)).bits, Value::f32(std::exp(x)).bits);
    EXPECT_EQ(eval_unary(UnOp::Log, Value::f32(x)).bits, Value::f32(std::log(x)).bits);
    EXPECT_EQ(eval_unary(UnOp::Sin, Value::f32(x)).bits, Value::f32(std::sin(x)).bits);
    EXPECT_EQ(eval_unary(UnOp::Cos, Value::f32(x)).bits, Value::f32(std::cos(x)).bits);
  }
}

// --- disassembler & code-fault validator ---

TEST(Disassemble, ListsEveryInstruction) {
  KernelBuilder kb("d");
  auto out = kb.param_ptr("out");
  auto x = kb.let("x", f32c(1.0f) + f32c(2.0f));
  kb.store(out, x);
  auto p = lower(kb.build());
  const std::string d = disassemble(p);
  EXPECT_NE(d.find("halt"), std::string::npos);
  EXPECT_NE(d.find("storeg"), std::string::npos);
  // One line per instruction plus the header.
  EXPECT_EQ(static_cast<std::size_t>(std::count(d.begin(), d.end(), '\n')), p.code.size() + 1);
}

TEST(ValidateProgram, AcceptsAllWorkloadBinaries) {
  for (const auto& w : workloads::hpc_suite()) {
    const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
    EXPECT_TRUE(swifi::validate_program(v.baseline)) << w->name();
    EXPECT_TRUE(swifi::validate_program(v.ft)) << w->name();
    EXPECT_TRUE(swifi::validate_program(v.fift)) << w->name();
  }
}

TEST(ValidateProgram, RejectsOutOfRangeOperands) {
  KernelBuilder kb("v");
  auto out = kb.param_ptr("out");
  kb.store(out, i32c(1));
  auto p = lower(kb.build());
  auto bad = p;
  bad.code[0].dst = static_cast<std::uint16_t>(p.num_slots + 5);
  EXPECT_FALSE(swifi::validate_program(bad));
  bad = p;
  bad.code.back().op = static_cast<OpCode>(250);
  EXPECT_FALSE(swifi::validate_program(bad));
}

TEST(ValidateProgram, FuzzedMutantsNeverCrashTheValidator) {
  // Property: for any single-bit mutation of any instruction, the validator
  // terminates with a verdict, and mutants it accepts execute without
  // touching out-of-range registers (the interpreter relies on this).
  auto w = workloads::make_pns();
  const auto prog = lower(w->build_kernel(workloads::Scale::Tiny));
  const auto ds = w->make_dataset(5, workloads::Scale::Tiny);
  auto job = w->make_job(ds);
  gpusim::Device dev;
  common::Rng rng(77);
  int accepted = 0, rejected = 0;
  for (int i = 0; i < 300; ++i) {
    auto mutant = prog;
    const std::size_t instr = rng.next_below(mutant.code.size());
    const int bit = static_cast<int>(rng.next_below(sizeof(Instr) * 8));
    auto* bytes = reinterpret_cast<unsigned char*>(&mutant.code[instr]);
    bytes[bit / 8] = static_cast<unsigned char>(bytes[bit / 8] ^ (1u << (bit % 8)));
    if (!swifi::validate_program(mutant)) {
      ++rejected;
      continue;
    }
    ++accepted;
    const auto args = job->setup(dev);
    gpusim::LaunchOptions opts;
    opts.watchdog_instructions = 500000;
    (void)dev.launch(mutant, job->config(), args, opts);  // must not UB/crash the host
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}
