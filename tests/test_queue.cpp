// Unit and stress tests for the bounded lock-free MPMC trial queue
// (swifi/queue.hpp).  The service's correctness argument needs exactly two
// properties from it: no pushed value is ever lost, and no value is ever
// delivered twice.  The stress tests check both under SPMC and MPMC
// schedules, with a seeded schedule shuffler (random yields) to perturb
// thread interleavings run-to-run while staying reproducible.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "swifi/queue.hpp"

using hauberk::common::Rng;
using hauberk::swifi::TrialQueue;

namespace {

/// Pop everything until the queue is closed AND drained, marking each value
/// seen exactly-once in a shared tally.  Returns how many values this
/// consumer got (for fairness sanity, not correctness).
std::size_t consume(TrialQueue& q, std::vector<std::atomic<std::uint32_t>>& seen,
                    std::uint64_t yield_seed) {
  Rng rng(yield_seed);
  std::size_t got = 0;
  std::uint64_t v;
  for (;;) {
    if (q.try_pop(v)) {
      seen[v].fetch_add(1, std::memory_order_relaxed);
      ++got;
      if ((rng.next_u64() & 7u) == 0) std::this_thread::yield();  // schedule shuffle
    } else if (q.closed()) {
      // closed() is sticky; one more pop settles races with late pushes.
      if (!q.try_pop(v)) return got;
      seen[v].fetch_add(1, std::memory_order_relaxed);
      ++got;
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace

TEST(TrialQueue, CapacityIsRoundedToPowerOfTwo) {
  EXPECT_EQ(TrialQueue(1).capacity(), 2u);
  EXPECT_EQ(TrialQueue(2).capacity(), 2u);
  EXPECT_EQ(TrialQueue(3).capacity(), 4u);
  EXPECT_EQ(TrialQueue(256).capacity(), 256u);
  EXPECT_EQ(TrialQueue(257).capacity(), 512u);
}

TEST(TrialQueue, SingleThreadedFifoAndFullEmpty) {
  TrialQueue q(4);
  std::uint64_t v = 99;
  EXPECT_FALSE(q.try_pop(v));  // empty
  EXPECT_EQ(v, 99u) << "failed pop must not clobber the out-param";

  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(4)) << "queue holds exactly its capacity";
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i) << "single-threaded order is FIFO";
  }
  EXPECT_FALSE(q.try_pop(v));

  // Wrap around several times: the sequence numbers must keep cycling.
  for (std::uint64_t round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.try_push(round));
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, round);
  }
}

TEST(TrialQueue, CloseIsSticky) {
  TrialQueue q(4);
  EXPECT_FALSE(q.closed());
  ASSERT_TRUE(q.try_push(7));
  q.close();
  EXPECT_TRUE(q.closed());
  // close() stops producers by convention, not by force: the value already
  // inside must still drain.
  std::uint64_t v = 0;
  ASSERT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 7u);
}

TEST(TrialQueue, SpmcStressLosesNothingDuplicatesNothing) {
  constexpr std::uint64_t kTrials = 10000;
  constexpr int kConsumers = 4;
  TrialQueue q(64);
  std::vector<std::atomic<std::uint32_t>> seen(kTrials);

  std::vector<std::thread> consumers;
  std::vector<std::size_t> got(kConsumers, 0);
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&, c] { got[c] = consume(q, seen, 1000 + c); });

  Rng rng(42);
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    while (!q.try_push(i)) std::this_thread::yield();
    if ((rng.next_u64() & 15u) == 0) std::this_thread::yield();
  }
  q.close();
  for (auto& t : consumers) t.join();

  std::size_t total = 0;
  for (std::uint64_t i = 0; i < kTrials; ++i) {
    EXPECT_EQ(seen[i].load(), 1u) << "trial " << i << " lost or duplicated";
    total += seen[i].load();
  }
  EXPECT_EQ(total, kTrials);
  std::size_t consumed = 0;
  for (const auto g : got) consumed += g;
  EXPECT_EQ(consumed, kTrials);
}

TEST(TrialQueue, MpmcStressLosesNothingDuplicatesNothing) {
  constexpr std::uint64_t kTrials = 10000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr std::uint64_t kPerProducer = kTrials / kProducers;
  TrialQueue q(32);
  std::vector<std::atomic<std::uint32_t>> seen(kTrials);
  std::atomic<int> producers_left{kProducers};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&, p] {
      Rng rng(500 + p);
      const std::uint64_t lo = static_cast<std::uint64_t>(p) * kPerProducer;
      for (std::uint64_t i = lo; i < lo + kPerProducer; ++i) {
        while (!q.try_push(i)) std::this_thread::yield();
        if ((rng.next_u64() & 7u) == 0) std::this_thread::yield();
      }
      if (producers_left.fetch_sub(1) == 1) q.close();
    });
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&, c] { (void)consume(q, seen, 2000 + c); });
  for (auto& t : threads) t.join();

  for (std::uint64_t i = 0; i < kTrials; ++i)
    ASSERT_EQ(seen[i].load(), 1u) << "trial " << i << " lost or duplicated";
}

TEST(TrialQueue, TinyCapacityMaximizesContention) {
  // A 2-slot queue under 2x2 threads forces constant full/empty boundary
  // crossings — the regime where a broken sequence protocol loses values.
  constexpr std::uint64_t kTrials = 4000;
  TrialQueue q(2);
  std::vector<std::atomic<std::uint32_t>> seen(kTrials);
  std::atomic<int> producers_left{2};

  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p)
    threads.emplace_back([&, p] {
      for (std::uint64_t i = static_cast<std::uint64_t>(p); i < kTrials; i += 2) {
        while (!q.try_push(i)) std::this_thread::yield();
      }
      if (producers_left.fetch_sub(1) == 1) q.close();
    });
  for (int c = 0; c < 2; ++c)
    threads.emplace_back([&, c] { (void)consume(q, seen, 3000 + c); });
  for (auto& t : threads) t.join();

  for (std::uint64_t i = 0; i < kTrials; ++i)
    ASSERT_EQ(seen[i].load(), 1u) << "trial " << i << " lost or duplicated";
}
