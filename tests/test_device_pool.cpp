// Tests for node-level device management: acquisition, migration across the
// pool, disabled-device quarantine, and daemon-driven re-enablement.
#include <gtest/gtest.h>

#include "hauberk/device_pool.hpp"
#include "hauberk/runtime.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::core;

namespace {

struct PoolFx {
  std::unique_ptr<workloads::Workload> w = workloads::make_cp();
  KernelVariants v{build_variants(w->build_kernel(workloads::Scale::Tiny))};
  workloads::Dataset ds = w->make_dataset(51, workloads::Scale::Tiny);
  std::unique_ptr<KernelJob> job = w->make_job(ds);
  DevicePool pool{3};
  std::unique_ptr<ControlBlock> cb;

  PoolFx() {
    // Profile on device 0 to configure detectors.
    auto pd = profile(pool.device(0), v, {job.get()});
    cb = make_configured_control_block(v.ft, pd);
  }
};

gpusim::DeviceFaultModel permanent_fpu_fault() {
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Permanent;
  fm.component = gpusim::DeviceFaultModel::Component::FPU;
  fm.mask = 0x7fc00000;
  fm.period = 97;
  return fm;
}

}  // namespace

TEST(DevicePool, RoundRobinAcquisitionSkipsDisabled) {
  DevicePool pool(3);
  EXPECT_EQ(pool.healthy_count(), 3u);
  gpusim::Device* a = pool.acquire();
  gpusim::Device* b = pool.acquire();
  EXPECT_NE(a, b);
  pool.device(2).set_disabled(true);
  EXPECT_EQ(pool.healthy_count(), 2u);
  for (int i = 0; i < 6; ++i) EXPECT_NE(pool.acquire(), &pool.device(2));
}

TEST(DevicePool, AcquireReturnsNullWhenAllDisabled) {
  DevicePool pool(2);
  pool.device(0).set_disabled(true);
  pool.device(1).set_disabled(true);
  EXPECT_EQ(pool.acquire(), nullptr);
}

TEST(DevicePool, SpareIsNeverThePrimary) {
  DevicePool pool(2);
  gpusim::Device* p = pool.acquire();
  gpusim::Device* s = pool.spare_for(p);
  ASSERT_NE(s, nullptr);
  EXPECT_NE(s, p);
  // With only one healthy device there is no spare.
  s->set_disabled(true);
  EXPECT_EQ(pool.spare_for(p), nullptr);
}

TEST(DevicePool, HealthyRunSucceeds) {
  PoolFx fx;
  Guardian g;
  const auto out = fx.pool.run_protected(g, fx.v.ft, *fx.job, *fx.cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::Success);
  EXPECT_EQ(fx.pool.healthy_count(), 3u);
}

TEST(DevicePool, FaultyPrimaryMigratesAndIsQuarantined) {
  PoolFx fx;
  fx.pool.device(0).install_fault(permanent_fpu_fault());
  Guardian g;
  const auto out = fx.pool.run_protected(g, fx.v.ft, *fx.job, *fx.cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::MigratedToSpare);
  EXPECT_TRUE(fx.pool.device(0).disabled());
  EXPECT_EQ(fx.pool.healthy_count(), 2u);

  // Subsequent jobs avoid the quarantined device entirely.
  const auto again = fx.pool.run_protected(g, fx.v.ft, *fx.job, *fx.cb);
  EXPECT_EQ(again.verdict, RecoveryVerdict::Success);
  EXPECT_EQ(fx.pool.healthy_count(), 2u);
}

TEST(DevicePool, WholeNodeUnhealthyIsUnrecoverable) {
  PoolFx fx;
  for (std::size_t i = 0; i < fx.pool.size(); ++i) fx.pool.device(i).set_disabled(true);
  Guardian g;
  const auto out = fx.pool.run_protected(g, fx.v.ft, *fx.job, *fx.cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::Unrecoverable);
}

TEST(DevicePool, TickReenablesRecoveredDevices) {
  PoolFx fx;
  fx.pool.device(0).install_fault(permanent_fpu_fault());
  Guardian g;
  (void)fx.pool.run_protected(g, fx.v.ft, *fx.job, *fx.cb);
  ASSERT_TRUE(fx.pool.device(0).disabled());

  // Fault persists: ticks keep it quarantined with doubling backoff.
  EXPECT_EQ(fx.pool.tick(0.0), 0);
  EXPECT_EQ(fx.pool.tick(2.5), 0);
  EXPECT_EQ(fx.pool.healthy_count(), 2u);

  // The (intermittent) fault clears; a later tick re-admits the device.
  fx.pool.device(0).clear_fault();
  EXPECT_EQ(fx.pool.tick(100.0), 1);
  EXPECT_EQ(fx.pool.healthy_count(), 3u);

  // The recovered device serves jobs again.
  const auto out = fx.pool.run_protected(g, fx.v.ft, *fx.job, *fx.cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::Success);
}
