// HardeningPlan and budgeted-optimizer tests.
//
// Three contracts from the selective-hardening stack:
//
//   1. serialize_plan/parse_plan is a canonical round trip — parse(text)
//      re-serializes to the identical string and the identical plan_digest,
//      over representative plans derived from every workload's real kernel
//      (its loop ids and variable names), and the strict parser rejects
//      every malformed form with an exception rather than a guess.
//   2. A trivial plan is indistinguishable from no plan: same program
//      digests, same pipeline names, same remark digests, digest 0.  This
//      is the invariant that keeps the 216 golden translator digests and
//      historic campaign digests stable.
//   3. greedy_cover never beats exact_cover, never exceeds the budget, and
//      stays within the classic (1 - 1/e)/2 budgeted-max-coverage bound —
//      checked on adversarial hand instances and a randomized sweep of
//      every instance size exact_cover is used for (<= 12 items).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hauberk/cost.hpp"
#include "hauberk/opt.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/runtime.hpp"
#include "hauberk/translator.hpp"
#include "kir/analysis_manager.hpp"
#include "kir/bytecode.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using core::HardeningPlan;
using core::KernelPlan;
using core::Tri;

namespace {

std::vector<std::unique_ptr<workloads::Workload>> all_workloads() {
  std::vector<std::unique_ptr<workloads::Workload>> out;
  for (auto& w : workloads::hpc_suite()) out.push_back(std::move(w));
  for (auto& w : workloads::graphics_suite()) out.push_back(std::move(w));
  for (auto& w : workloads::cpu_suite()) out.push_back(std::move(w));
  out.push_back(workloads::make_cpu_matmul());  // not in cpu_suite
  return out;
}

/// A plan that exercises every field against `kernel`'s real loop ids and
/// variable names: maxvar override, all three master switches, a loop
/// denylist entry per top-level loop, a var allowlist entry per named
/// variable (capped), plus a wildcard entry.
HardeningPlan representative_plan(const kir::Kernel& kernel) {
  KernelPlan kp;
  kp.kernel = kernel.name;
  kp.maxvar = 2;
  kp.loops = Tri::On;
  kp.nonloop = Tri::Default;
  kp.naive = Tri::Off;
  kir::AnalysisManager am(kernel);
  for (const auto& ln : am.analysis().loops())
    if (ln.parent == kir::kNoLoop) kp.loop_actions.emplace(ln.id, false);
  int named = 0;
  for (const auto& v : kernel.vars) {
    if (v.name.empty() || named >= 4) continue;
    kp.var_actions.emplace(v.name, (named++ % 2) == 0);
  }
  KernelPlan wild;  // wildcard: loops off everywhere else
  wild.loops = Tri::Off;
  return HardeningPlan{{kp, wild}};
}

void expect_roundtrip(const HardeningPlan& plan, const std::string& what) {
  const std::string text = core::serialize_plan(plan);
  HardeningPlan back;
  ASSERT_NO_THROW(back = core::parse_plan(text)) << what << "\n" << text;
  EXPECT_EQ(core::serialize_plan(back), text) << what;
  EXPECT_EQ(core::plan_digest(back), core::plan_digest(plan)) << what;
}

opt::Item item(std::uint64_t cost, std::vector<std::uint32_t> covered) {
  opt::Item it;
  it.var = "synthetic";
  it.cost = cost;
  it.covered = std::move(covered);
  return it;
}

std::vector<std::uint32_t> range(std::uint32_t lo, std::uint32_t hi) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = lo; i < hi; ++i) out.push_back(i);
  return out;
}

}  // namespace

// --- round trip ---

TEST(HardeningPlanRoundTrip, RepresentativePlansForEveryWorkload) {
  for (const auto& w : all_workloads()) {
    const auto kernel = w->build_kernel(workloads::Scale::Tiny);
    const auto plan = representative_plan(kernel);
    expect_roundtrip(plan, w->name());
    EXPECT_NE(core::plan_digest(plan), 0u) << w->name() << ": non-trivial plan digests nonzero";
  }
}

TEST(HardeningPlanRoundTrip, EmptyAndSingleFieldPlans) {
  expect_roundtrip(HardeningPlan{}, "empty");
  for (const Tri t : {Tri::Default, Tri::Off, Tri::On}) {
    KernelPlan kp;
    kp.kernel = "k";
    kp.loops = t;
    expect_roundtrip(HardeningPlan{{kp}}, std::string("loops=") + core::tri_name(t));
  }
  KernelPlan kp;
  kp.maxvar = 0;  // explicit 0 is a decision, distinct from -1 (inherit)
  kp.var_actions.emplace("x y", true);  // names with spaces must quote cleanly
  expect_roundtrip(HardeningPlan{{kp}}, "wildcard maxvar+spaced var");
}

TEST(HardeningPlanRoundTrip, DigestSeparatesDecisions) {
  KernelPlan a;
  a.kernel = "k";
  a.loops = Tri::On;
  KernelPlan b = a;
  b.loops = Tri::Off;
  EXPECT_NE(core::plan_digest(HardeningPlan{{a}}), core::plan_digest(HardeningPlan{{b}}));
  KernelPlan c = a;
  c.loop_actions.emplace(3, true);
  EXPECT_NE(core::plan_digest(HardeningPlan{{a}}), core::plan_digest(HardeningPlan{{c}}));
}

TEST(HardeningPlanParse, AcceptsLooseWhitespaceButSerializesCanonically) {
  const auto p = core::parse_plan(
      "  (hauberk-plan   1\n\t(kernel \"k\"\n     (loops on) (var \"acc\" off)))\n");
  ASSERT_EQ(p.kernels.size(), 1u);
  EXPECT_EQ(p.kernels[0].kernel, "k");
  EXPECT_EQ(p.kernels[0].loops, Tri::On);
  ASSERT_EQ(p.kernels[0].var_actions.count("acc"), 1u);
  EXPECT_FALSE(p.kernels[0].var_actions.at("acc"));
  KernelPlan same;
  same.kernel = "k";
  same.loops = Tri::On;
  same.var_actions.emplace("acc", false);
  EXPECT_EQ(core::serialize_plan(p), core::serialize_plan(HardeningPlan{{same}}));
}

TEST(HardeningPlanParse, RejectsEveryMalformedForm) {
  const char* bad[] = {
      "",
      "(nonsense 1)",
      "(hauberk-plan one)",
      "(hauberk-plan 2)",                                     // unsupported version
      "(hauberk-plan 1",                                      // unterminated
      "(hauberk-plan 1) junk",                                // trailing garbage
      "(hauberk-plan 1 (kernel k))",                          // unquoted name
      "(hauberk-plan 1 (kernel \"k\") (kernel \"k\"))",       // duplicate kernel
      "(hauberk-plan 1 (kernel \"k\" (frobnicate on)))",      // unknown field
      "(hauberk-plan 1 (kernel \"k\" (maxvar -2)))",          // out of range
      "(hauberk-plan 1 (kernel \"k\" (loops maybe)))",        // bad tri
      "(hauberk-plan 1 (kernel \"k\" (loop -1 on)))",         // bad loop id
      "(hauberk-plan 1 (kernel \"k\" (loop 3 default)))",     // loop needs on/off
      "(hauberk-plan 1 (kernel \"k\" (loop 3 on) (loop 3 off)))",
      "(hauberk-plan 1 (kernel \"k\" (var \"x\" on) (var \"x\" on)))",
      "(hauberk-plan 1 (kernel \"k\" (var \"x\" on",          // unterminated field
      "(hauberk-plan 1 (kernel \"k\" (var \"x)))",            // unterminated string
  };
  for (const char* text : bad)
    EXPECT_THROW((void)core::parse_plan(text), std::runtime_error)
        << "'" << text << "' must be rejected";
}

// --- trivial plan == no plan ---

TEST(HardeningPlanTrivial, IndistinguishableFromNoPlanOnEveryWorkload) {
  HardeningPlan trivial;
  trivial.kernels.push_back(KernelPlan{});  // wildcard entry with no decisions
  ASSERT_TRUE(trivial.trivial());
  EXPECT_EQ(core::plan_digest(trivial), 0u);
  EXPECT_EQ(core::plan_digest(HardeningPlan{}), 0u);

  for (const auto& w : all_workloads()) {
    const auto kernel = w->build_kernel(workloads::Scale::Tiny);
    const auto plain = core::build_variants(kernel);
    core::TranslateOptions topt;
    topt.plan = std::make_shared<HardeningPlan>(trivial);
    const auto planned = core::build_variants(kernel, topt);
    EXPECT_EQ(kir::program_digest(planned.ft), kir::program_digest(plain.ft)) << w->name();
    EXPECT_EQ(kir::program_digest(planned.fift), kir::program_digest(plain.fift))
        << w->name();
    EXPECT_EQ(planned.ft_report.pipeline, plain.ft_report.pipeline) << w->name();
    EXPECT_EQ(core::remark_digest(planned.ft_report), core::remark_digest(plain.ft_report))
        << w->name();
  }
}

// --- greedy vs exact ---

TEST(BudgetedCover, ExactBeatsGreedyOnComplementaryPair) {
  // Greedy's ratio rule grabs the small dense item first and can then no
  // longer afford the complementary pair that the exact solver finds.
  const std::vector<opt::Item> items = {
      item(2, range(0, 3)),    // ratio 1.5 — greedy's first pick
      item(5, range(3, 9)),    // the optimal pair...
      item(5, range(9, 15)),   // ...covers 12 for cost 10
  };
  const auto g = opt::greedy_cover(items, 10);
  const auto e = opt::exact_cover(items, 10);
  EXPECT_TRUE(e.exact);
  EXPECT_EQ(e.covered, 12u);
  EXPECT_EQ(e.cost, 10u);
  EXPECT_EQ(g.covered, 9u);
  EXPECT_LE(g.cost, 10u);
  EXPECT_GE(static_cast<double>(g.covered),
            (1.0 - 1.0 / std::exp(1.0)) / 2.0 * static_cast<double>(e.covered));
}

TEST(BudgetedCover, SingleItemFallbackRescuesGreedy) {
  // Classic ratio trap: a cheap 1-element item starves the budget for the
  // big item; the best-single-item fallback must win.
  const std::vector<opt::Item> items = {
      item(1, range(0, 1)),     // ratio 1.0
      item(10, range(1, 10)),   // ratio 0.9 but 9 elements
  };
  const auto g = opt::greedy_cover(items, 10);
  EXPECT_EQ(g.covered, 9u) << "fallback must pick the single big item";
  EXPECT_EQ(g.cost, 10u);
  const auto e = opt::exact_cover(items, 10);
  EXPECT_EQ(e.covered, 9u);
}

TEST(BudgetedCover, ZeroBudgetSelectsOnlyFreeItems) {
  const std::vector<opt::Item> items = {
      item(0, range(0, 2)),
      item(1, range(2, 9)),
  };
  for (const auto& s : {opt::greedy_cover(items, 0), opt::exact_cover(items, 0)}) {
    EXPECT_EQ(s.cost, 0u);
    EXPECT_EQ(s.covered, 2u);
    ASSERT_EQ(s.chosen.size(), 1u);
    EXPECT_EQ(s.chosen[0], 0u);
  }
}

TEST(BudgetedCover, EmptyAndUnaffordableInstances) {
  EXPECT_EQ(opt::greedy_cover({}, 100).covered, 0u);
  EXPECT_TRUE(opt::exact_cover({}, 100).exact);
  const std::vector<opt::Item> items = {item(50, range(0, 5))};
  EXPECT_TRUE(opt::greedy_cover(items, 49).chosen.empty());
  EXPECT_TRUE(opt::exact_cover(items, 49).chosen.empty());
}

TEST(BudgetedCover, RandomizedAgreementSweep) {
  // Every instance size exact_cover serves in kirtune's range: exact must
  // dominate greedy, neither may exceed the budget, selections must report
  // consistent cost/coverage, and greedy must stay within its bound.
  hauberk::common::Rng rng(2026);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.next_u64() % 12;
    std::vector<opt::Item> items;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::uint32_t> cov;
      const std::size_t m = rng.next_u64() % 8;
      for (std::size_t j = 0; j < m; ++j)
        cov.push_back(static_cast<std::uint32_t>(rng.next_u64() % 30));
      std::sort(cov.begin(), cov.end());
      cov.erase(std::unique(cov.begin(), cov.end()), cov.end());
      items.push_back(item(rng.next_u64() % 20, std::move(cov)));
    }
    const std::uint64_t budget = rng.next_u64() % 40;
    const auto g = opt::greedy_cover(items, budget);
    const auto e = opt::exact_cover(items, budget);
    EXPECT_LE(g.cost, budget) << "trial " << trial;
    EXPECT_LE(e.cost, budget) << "trial " << trial;
    EXPECT_TRUE(e.exact) << "trial " << trial;
    EXPECT_GE(e.covered, g.covered) << "trial " << trial;
    EXPECT_GE(static_cast<double>(g.covered) + 1e-9,
              (1.0 - 1.0 / std::exp(1.0)) / 2.0 * static_cast<double>(e.covered))
        << "trial " << trial;
    for (const auto& s : {g, e}) {
      std::uint64_t cost = 0;
      std::vector<std::uint32_t> uni;
      for (const std::size_t i : s.chosen) {
        ASSERT_LT(i, items.size());
        cost += items[i].cost;
        uni.insert(uni.end(), items[i].covered.begin(), items[i].covered.end());
      }
      std::sort(uni.begin(), uni.end());
      uni.erase(std::unique(uni.begin(), uni.end()), uni.end());
      EXPECT_EQ(cost, s.cost) << "trial " << trial;
      EXPECT_EQ(uni.size(), s.covered) << "trial " << trial;
    }
  }
}

// --- plan_for_budget on a real kernel ---

TEST(PlanForBudget, RespectsBudgetAndBracketsCoverage) {
  const auto suite = workloads::hpc_suite();
  const auto& w = *suite.front();
  const auto kernel = w.build_kernel(workloads::Scale::Tiny);
  const auto ds = w.make_dataset(1, workloads::Scale::Tiny);
  auto job = w.make_job(ds);
  gpusim::Device dev;
  const auto profile = cost::measure_profile(dev, kernel, *job);

  const std::uint64_t full_overhead =
      cost::estimate_kernel_cycles(kernel, {}, profile) - profile.measured_cycles;

  const auto zero = opt::plan_for_budget(kernel, profile, 0);
  EXPECT_LE(zero.predicted_cycles, zero.none_cycles)
      << "a zero budget admits only free protection";

  const std::uint64_t ten_pct = profile.measured_cycles / 10;
  const auto pr = opt::plan_for_budget(kernel, profile, ten_pct);
  EXPECT_LE(pr.predicted_cycles, pr.none_cycles + ten_pct) << "budget is a hard ceiling";
  EXPECT_GE(pr.predicted_cycles, pr.none_cycles);
  EXPECT_GT(pr.total_vars, 0u);
  EXPECT_LE(pr.covered_vars, pr.full_covered_vars);
  EXPECT_LE(pr.covered_edges, pr.full_covered_edges);
  EXPECT_GE(pr.covered_vars + pr.covered_edges, zero.covered_vars + zero.covered_edges)
      << "more budget can only help";
  expect_roundtrip(pr.plan, "plan_for_budget output");

  // A budget wide enough for everything recovers full-Hauberk coverage.
  const auto wide = opt::plan_for_budget(kernel, profile, full_overhead * 4 + 1);
  EXPECT_EQ(wide.covered_vars, wide.full_covered_vars);
  EXPECT_EQ(wide.covered_edges, wide.full_covered_edges);
}
