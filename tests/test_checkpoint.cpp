// On-disk checkpoint format tests (hauberk/checkpoint.hpp): field round-trip
// through CheckpointWriter/CheckpointReader, and — the part crash recovery
// lives or dies on — rejection of every corrupt-file shape a kill can leave:
// wrong magic, wrong version, truncation, flipped payload bits, and stale
// temp files from a save that never finished.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "hauberk/checkpoint.hpp"
#include "swifi/service.hpp"

using namespace hauberk;
using core::CheckpointError;
using core::CheckpointReader;
using core::CheckpointWriter;

namespace {

constexpr std::uint32_t kMagic = 0x54534554u;  // "TEST"
constexpr std::uint32_t kVersion = 3;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "hauberk_ckpt_" + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A fully loaded writer exercising every field type.
CheckpointWriter sample_writer() {
  CheckpointWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.f64(-1234.5e-6);
  w.str("watermark");
  w.str("");  // empty strings must round-trip too
  const std::array<std::uint8_t, 5> blob{1, 2, 3, 4, 5};
  w.bytes(blob);
  w.u64(0);
  return w;
}

}  // namespace

TEST(CheckpointFormat, RoundTripsEveryFieldType) {
  const auto path = tmp_path("roundtrip.ckpt");
  sample_writer().save_atomic(path, kMagic, kVersion);

  auto r = CheckpointReader::load(path, kMagic, kVersion);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -1234.5e-6);
  EXPECT_EQ(r.str(), "watermark");
  EXPECT_EQ(r.str(), "");
  std::array<std::uint8_t, 5> blob{};
  r.bytes(blob);
  EXPECT_EQ(blob, (std::array<std::uint8_t, 5>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CheckpointFormat, ExhaustedReaderThrowsInsteadOfFabricatingData) {
  const auto path = tmp_path("exhausted.ckpt");
  CheckpointWriter w;
  w.u32(7);
  w.save_atomic(path, kMagic, kVersion);

  auto r = CheckpointReader::load(path, kMagic, kVersion);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_THROW((void)r.u8(), CheckpointError);
  EXPECT_THROW((void)r.u64(), CheckpointError);
  EXPECT_THROW((void)r.str(), CheckpointError);
}

TEST(CheckpointFormat, RejectsWrongMagicAndVersion) {
  const auto path = tmp_path("magic.ckpt");
  sample_writer().save_atomic(path, kMagic, kVersion);

  EXPECT_NO_THROW((void)CheckpointReader::load(path, kMagic, kVersion));
  EXPECT_THROW((void)CheckpointReader::load(path, kMagic + 1, kVersion), CheckpointError);
  EXPECT_THROW((void)CheckpointReader::load(path, kMagic, kVersion + 1), CheckpointError);
  EXPECT_THROW((void)CheckpointReader::load(path, kMagic, kVersion - 1), CheckpointError);
}

TEST(CheckpointFormat, RejectsMissingFile) {
  EXPECT_THROW((void)CheckpointReader::load(tmp_path("nonexistent.ckpt"), kMagic, kVersion),
               CheckpointError);
}

TEST(CheckpointFormat, RejectsTruncationAtEveryBoundary) {
  const auto path = tmp_path("trunc.ckpt");
  sample_writer().save_atomic(path, kMagic, kVersion);
  const auto good = slurp(path);
  ASSERT_GT(good.size(), 20u);

  // Chop inside the header, at the header/payload seam, and inside the
  // payload: every prefix must be rejected, none may crash.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{8},
                                 std::size_t{16}, std::size_t{20}, good.size() - 1}) {
    const auto cut = tmp_path("trunc_cut.ckpt");
    spit(cut, std::vector<char>(good.begin(), good.begin() + static_cast<long>(keep)));
    EXPECT_THROW((void)CheckpointReader::load(cut, kMagic, kVersion), CheckpointError)
        << "prefix of " << keep << " bytes must not parse";
  }
}

TEST(CheckpointFormat, CrcCatchesEverySingleFlippedPayloadBit) {
  const auto path = tmp_path("flip.ckpt");
  CheckpointWriter w;
  w.u64(0xfeedfacecafebeefull);
  w.save_atomic(path, kMagic, kVersion);
  const auto good = slurp(path);
  constexpr std::size_t kHeader = 20;
  ASSERT_EQ(good.size(), kHeader + 8);

  const auto flipped = tmp_path("flip_bit.ckpt");
  for (std::size_t byte = kHeader; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = good;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      spit(flipped, bad);
      EXPECT_THROW((void)CheckpointReader::load(flipped, kMagic, kVersion), CheckpointError)
          << "flip at byte " << byte << " bit " << bit << " must fail the CRC";
    }
  }
}

TEST(CheckpointFormat, RejectsCrcFieldCorruption) {
  const auto path = tmp_path("crcfield.ckpt");
  sample_writer().save_atomic(path, kMagic, kVersion);
  auto bad = slurp(path);
  bad[17] = static_cast<char>(bad[17] ^ 0x40);  // inside the stored CRC itself
  spit(path, bad);
  EXPECT_THROW((void)CheckpointReader::load(path, kMagic, kVersion), CheckpointError);
}

TEST(CheckpointFormat, LyingPayloadSizeIsRejectedWithoutHugeAllocation) {
  const auto path = tmp_path("liar.ckpt");
  sample_writer().save_atomic(path, kMagic, kVersion);
  auto bad = slurp(path);
  // Claim a multi-exabyte payload; the loader must fail cleanly (bounded by
  // the actual file size) instead of trying to allocate it.
  for (int i = 0; i < 8; ++i) bad[8 + i] = static_cast<char>(0xee);
  spit(path, bad);
  EXPECT_THROW((void)CheckpointReader::load(path, kMagic, kVersion), CheckpointError);
}

TEST(CheckpointFormat, SaveIsAtomicUnderStaleTempFile) {
  const auto path = tmp_path("atomic.ckpt");
  // A previous killed save left garbage at path + ".tmp" — save_atomic must
  // clobber it and land a valid file.
  spit(path + ".tmp", {'g', 'a', 'r', 'b', 'a', 'g', 'e'});
  sample_writer().save_atomic(path, kMagic, kVersion);
  EXPECT_NO_THROW((void)CheckpointReader::load(path, kMagic, kVersion));

  // And a stale temp file NEXT TO a good checkpoint must never be consulted
  // by the loader.
  spit(path + ".tmp", {'m', 'o', 'r', 'e', ' ', 'j', 'u', 'n', 'k'});
  auto r = CheckpointReader::load(path, kMagic, kVersion);
  EXPECT_EQ(r.u8(), 0xab);
}

TEST(CheckpointFormat, OverwriteReplacesPreviousContents) {
  const auto path = tmp_path("overwrite.ckpt");
  CheckpointWriter first;
  first.str("first generation");
  first.u64(1);
  first.save_atomic(path, kMagic, kVersion);

  CheckpointWriter second;
  second.str("second generation");
  second.u64(2);
  second.save_atomic(path, kMagic, kVersion);

  auto r = CheckpointReader::load(path, kMagic, kVersion);
  EXPECT_EQ(r.str(), "second generation");
  EXPECT_EQ(r.u64(), 2u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CheckpointFormat, Crc32MatchesKnownVectorAndResumes) {
  // The classic check value: CRC-32("123456789") == 0xcbf43926.
  const char* s = "123456789";
  EXPECT_EQ(common::crc32(s, 9), 0xcbf43926u);
  // Resumable: feeding a prefix's CRC as the seed of the suffix must equal
  // the one-shot CRC (the service relies on this for the result-log stream).
  const auto head = common::crc32(s, 4);
  EXPECT_EQ(common::crc32(s + 4, 5, head), 0xcbf43926u);
  EXPECT_EQ(common::crc32(s, 0), 0u);
}

TEST(CampaignCheckpointFile, RoundTripsAllAggregateState) {
  swifi::CampaignCheckpoint ck;
  ck.config_digest = 0x1122334455667788ull;
  ck.shards = 4;
  ck.shard_index = 3;
  ck.trials_total = 1000;
  ck.watermark = 250;
  ck.counts.failure = 1;
  ck.counts.masked = 2;
  ck.counts.detected_masked = 3;
  ck.counts.detected = 4;
  ck.counts.undetected = 5;
  ck.counts.not_activated = 6;
  ck.counts.race_detected = 7;
  ck.counts.barrier_divergence = 8;
  ck.counts.ecc_corrected = 9;
  ck.counts.ecc_uncorrectable = 10;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 1023ull, 1024ull, ~0ull}) ck.site_hist.add(v);
  ck.sdc_site_hist.add(42);
  ck.remark_digest = 0x99aabbccddeeff00ull;
  ck.log_payload_bytes = 2000;
  ck.log_payload_crc = 0x12345678u;
  ck.checkpoints_written = 17;

  const auto path = tmp_path("campaign.ckpt");
  ck.save(path);
  const auto back = swifi::CampaignCheckpoint::load(path);
  EXPECT_EQ(back.config_digest, ck.config_digest);
  EXPECT_EQ(back.shards, ck.shards);
  EXPECT_EQ(back.shard_index, ck.shard_index);
  EXPECT_EQ(back.trials_total, ck.trials_total);
  EXPECT_EQ(back.watermark, ck.watermark);
  EXPECT_EQ(back.counts.failure, ck.counts.failure);
  EXPECT_EQ(back.counts.masked, ck.counts.masked);
  EXPECT_EQ(back.counts.detected_masked, ck.counts.detected_masked);
  EXPECT_EQ(back.counts.detected, ck.counts.detected);
  EXPECT_EQ(back.counts.undetected, ck.counts.undetected);
  EXPECT_EQ(back.counts.not_activated, ck.counts.not_activated);
  EXPECT_EQ(back.counts.race_detected, ck.counts.race_detected);
  EXPECT_EQ(back.counts.barrier_divergence, ck.counts.barrier_divergence);
  EXPECT_EQ(back.counts.ecc_corrected, ck.counts.ecc_corrected);
  EXPECT_EQ(back.counts.ecc_uncorrectable, ck.counts.ecc_uncorrectable);
  EXPECT_TRUE(back.site_hist == ck.site_hist);
  EXPECT_TRUE(back.sdc_site_hist == ck.sdc_site_hist);
  EXPECT_EQ(back.remark_digest, ck.remark_digest);
  EXPECT_EQ(back.log_payload_bytes, ck.log_payload_bytes);
  EXPECT_EQ(back.log_payload_crc, ck.log_payload_crc);
  EXPECT_EQ(back.checkpoints_written, ck.checkpoints_written);
}

TEST(CampaignCheckpointFile, RejectsTrailingPayloadBytes) {
  // A file whose payload is longer than the format (e.g. from a future
  // writer that forgot to bump the version) must not half-parse.
  swifi::CampaignCheckpoint ck;
  const auto path = tmp_path("campaign_trailing.ckpt");
  ck.save(path);
  // Rebuild with one extra payload byte and a fixed-up header via the
  // writer API (hand-editing size+CRC is the reader's own job to catch).
  core::CheckpointWriter w2;
  {
    auto r = core::CheckpointReader::load(path, swifi::kCampaignCheckpointMagic,
                                          swifi::kCampaignCheckpointVersion);
    std::vector<std::uint8_t> payload;
    while (r.remaining() > 0) payload.push_back(r.u8());
    payload.push_back(0x5a);
    w2.bytes(payload);
  }
  w2.save_atomic(path, swifi::kCampaignCheckpointMagic, swifi::kCampaignCheckpointVersion);
  EXPECT_THROW((void)swifi::CampaignCheckpoint::load(path), core::CheckpointError);
}

TEST(CampaignCheckpointFile, RejectsPreEccVersionOne) {
  // Version 1 predates the ECC outcome counters; its payload is two u64s
  // short, so silently accepting it would zero-fill (or worse, shift) the
  // aggregate state.  The reader must reject it outright on the version
  // field, before it ever looks at the payload.
  swifi::CampaignCheckpoint ck;
  ck.counts.masked = 7;
  const auto path = tmp_path("campaign_v1.ckpt");
  ck.save(path);
  core::CheckpointWriter w1;
  {
    auto r = core::CheckpointReader::load(path, swifi::kCampaignCheckpointMagic,
                                          swifi::kCampaignCheckpointVersion);
    // Drop the two trailing-format u64 ECC counters the v2 writer appended
    // after barrier_divergence to fake a faithful v1 payload, not just a
    // v2 payload with a v1 header.
    std::vector<std::uint8_t> payload;
    while (r.remaining() > 0) payload.push_back(r.u8());
    // Fixed-width prefix before the counters: digest(8) + shards(4) +
    // shard_index(4) + trials_total(8) + watermark(8) = 32 bytes, then
    // eight pre-ECC u64 counters; the ECC pair sits at bytes [96, 112).
    payload.erase(payload.begin() + 96, payload.begin() + 112);
    w1.bytes(payload);
  }
  w1.save_atomic(path, swifi::kCampaignCheckpointMagic, /*version=*/1);
  EXPECT_THROW((void)swifi::CampaignCheckpoint::load(path), core::CheckpointError);
}
