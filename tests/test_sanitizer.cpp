// ExecEngine::Sanitizer tests: one deterministic positive test per hazard
// class (write-write race, read-write race both orders, barrier divergence
// at distinct sites, exit-while-peers-wait deadlock, shared out-of-bounds,
// uninitialized shared read), clean-kernel negative pins (zero false
// positives, including the GT200 warp-synchronous idiom), engine equality
// on every observable, the CrashBarrierDeadlock site diagnostic, the
// decoded site table, and SWIFI outcome reclassification under
// CampaignConfig::sanitize.
//
// Hazard kernels run on a warp_size=4 device with 8-thread blocks so the
// two warps {0..3} and {4..7} exercise the cross-warp hazard rules; threads
// of a block execute serialized in thread order, so every report below is
// exactly predictable (thread 4 always detects against warp 0's last
// toucher, thread 3).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "hauberk/control_block.hpp"
#include "hauberk/runtime.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"
#include "swifi/campaign.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::gpusim;
using kir::i32c;
using kir::KernelBuilder;
using kir::lower;
using kir::Value;

namespace {

/// Two 4-thread warps per 8-thread block: cross-warp hazards are visible.
DeviceProps cross_warp_props() {
  DeviceProps p;
  p.warp_size = 4;
  p.global_mem_words = 1u << 16;
  return p;
}

struct EngineOut {
  LaunchResult res;
  std::vector<std::uint32_t> out;
};

/// Launch `prog` (single ptr param -> zeroed out buffer) on one engine.
EngineOut run_engine(const kir::BytecodeProgram& prog, const DeviceProps& props,
                     ExecEngine engine, std::uint32_t threads = 8) {
  Device dev(props);
  dev.set_engine(engine);
  constexpr std::uint32_t kOutWords = 64;
  const auto out = dev.mem().alloc(kOutWords, AllocClass::I32Data);
  std::vector<std::uint32_t> zero(kOutWords, 0);
  dev.mem().copy_in(out, zero);
  const Value args[] = {Value::ptr(out)};
  EngineOut r;
  r.res = dev.launch(prog, LaunchConfig{1, 1, threads, 1}, args);
  r.out.resize(kOutWords);
  dev.mem().copy_out(out, r.out);
  return r;
}

/// Run on all three engines; assert Fast/Reference/Sanitizer agree on every
/// observable and only the sanitizer carries reports.  Returns the
/// sanitizer run (after pinning a second sanitizer run to identical
/// reports).
EngineOut run_all_engines(const kir::BytecodeProgram& prog, const DeviceProps& props,
                          std::uint32_t threads = 8) {
  const EngineOut fast = run_engine(prog, props, ExecEngine::Fast, threads);
  const EngineOut ref = run_engine(prog, props, ExecEngine::Reference, threads);
  const EngineOut san = run_engine(prog, props, ExecEngine::Sanitizer, threads);
  for (const EngineOut* e : {&ref, &san}) {
    EXPECT_EQ(e->res.status, fast.res.status);
    EXPECT_EQ(e->res.cycles, fast.res.cycles);
    EXPECT_EQ(e->res.instructions, fast.res.instructions);
    EXPECT_EQ(e->res.sdc_alarm, fast.res.sdc_alarm);
    EXPECT_EQ(e->res.deadlock_pc, fast.res.deadlock_pc);
    EXPECT_EQ(e->res.deadlock_site, fast.res.deadlock_site);
    EXPECT_EQ(e->out, fast.out);
  }
  EXPECT_TRUE(fast.res.sanitizer_reports.empty());
  EXPECT_TRUE(ref.res.sanitizer_reports.empty());
  // Report determinism: a second sanitized launch is bitwise identical.
  const EngineOut again = run_engine(prog, props, ExecEngine::Sanitizer, threads);
  EXPECT_EQ(san.res.sanitizer_reports, again.res.sanitizer_reports);
  EXPECT_EQ(san.res.sanitizer_reports_dropped, again.res.sanitizer_reports_dropped);
  return san;
}

}  // namespace

// --- hazard positives ---

TEST(Sanitizer, WriteWriteRaceAcrossWarps) {
  KernelBuilder kb("ww", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.shstore(i32c(0), tid);
  kb.store(out + tid, kb.shload_i32(i32c(0)));
  const auto san = run_all_engines(lower(kb.build()), cross_warp_props());

  ASSERT_EQ(san.res.status, LaunchStatus::Ok);
  ASSERT_EQ(san.res.sanitizer_reports.size(), 1u);
  const auto& r = san.res.sanitizer_reports[0];
  EXPECT_EQ(r.kind, HazardKind::WriteWrite);
  EXPECT_EQ(r.block, 0u);
  EXPECT_EQ(r.thread, 4u);        // first thread of warp 1...
  EXPECT_EQ(r.other_thread, 3u);  // ...colliding with warp 0's last writer
  EXPECT_EQ(r.addr, 0u);
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_EQ(r.pc, r.other_pc);  // same store instruction, different threads
  EXPECT_NE(r.site, kir::kNoSite);
  EXPECT_FALSE(sanitizer_report_to_string(r).empty());
}

TEST(Sanitizer, ReadAfterWriteRaceAcrossWarps) {
  KernelBuilder kb("raw", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.if_then(tid == i32c(0), [&] { kb.shstore(i32c(0), i32c(42)); });
  kb.store(out + tid, kb.shload_i32(i32c(0)));
  const auto san = run_all_engines(lower(kb.build()), cross_warp_props());

  ASSERT_EQ(san.res.status, LaunchStatus::Ok);
  ASSERT_EQ(san.res.sanitizer_reports.size(), 1u);
  const auto& r = san.res.sanitizer_reports[0];
  EXPECT_EQ(r.kind, HazardKind::ReadWrite);
  EXPECT_EQ(r.thread, 4u);        // cross-warp reader
  EXPECT_EQ(r.other_thread, 0u);  // thread 0's unordered write
  EXPECT_EQ(r.addr, 0u);
  EXPECT_EQ(r.epoch, 0u);
  // Every thread saw 42: the race is real but silent — exactly what the
  // sanitizer exists to surface.
  for (std::uint32_t t = 0; t < 8; ++t) EXPECT_EQ(san.out[t], 42u);
}

TEST(Sanitizer, WriteAfterReadRaceAcrossWarps) {
  KernelBuilder kb("war", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.if_then(tid == i32c(0), [&] { kb.shstore(i32c(0), i32c(5)); });
  kb.barrier();
  kb.if_then_else(tid == i32c(4),
                  [&] { kb.shstore(i32c(0), i32c(9)); },
                  [&] { kb.store(out + tid, kb.shload_i32(i32c(0))); });
  const auto san = run_all_engines(lower(kb.build()), cross_warp_props());

  ASSERT_EQ(san.res.status, LaunchStatus::Ok);
  ASSERT_EQ(san.res.sanitizer_reports.size(), 1u);
  const auto& r = san.res.sanitizer_reports[0];
  EXPECT_EQ(r.kind, HazardKind::ReadWrite);
  EXPECT_EQ(r.thread, 4u);        // the unordered writer (epoch 1)...
  EXPECT_EQ(r.other_thread, 3u);  // ...against warp 0's last reader
  EXPECT_EQ(r.epoch, 1u);         // after the barrier release
  EXPECT_NE(r.pc, r.other_pc);    // store site vs load site
}

TEST(Sanitizer, BarrierDivergenceAtTwoSites) {
  KernelBuilder kb("div2", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.if_then_else(tid < i32c(4), [&] { kb.barrier(); }, [&] { kb.barrier(); });
  kb.store(out + tid, tid);
  const auto san = run_all_engines(lower(kb.build()), cross_warp_props());

  // The block-serialized model releases and completes, so the only trace of
  // the bug is the sanitizer's report — on hardware this is deadlock or
  // corruption territory.
  ASSERT_EQ(san.res.status, LaunchStatus::Ok);
  ASSERT_EQ(san.res.sanitizer_reports.size(), 1u);
  const auto& r = san.res.sanitizer_reports[0];
  EXPECT_EQ(r.kind, HazardKind::BarrierDivergence);
  EXPECT_EQ(r.thread, 4u);        // first thread at the second barrier site
  EXPECT_EQ(r.other_thread, 0u);
  EXPECT_NE(r.pc, r.other_pc);    // two distinct barrier instructions
  EXPECT_NE(r.other_pc, SanitizerReport::kNoPc);
  EXPECT_EQ(r.epoch, 0u);
}

TEST(Sanitizer, BarrierExitDivergenceIsDeadlockWithSiteOnAllEngines) {
  KernelBuilder kb("exitdiv", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.if_then(tid == i32c(0), [&] { kb.barrier(); });
  kb.store(out + tid, tid);
  const auto prog = lower(kb.build());
  const auto san = run_all_engines(prog, cross_warp_props());

  // All engines crash identically AND report *which* barrier deadlocked
  // (previously CrashBarrierDeadlock carried no site at all).
  ASSERT_EQ(san.res.status, LaunchStatus::CrashBarrierDeadlock);
  ASSERT_GE(san.res.deadlock_pc, 0);
  ASSERT_GE(san.res.deadlock_site, 0);
  EXPECT_EQ(prog.code[static_cast<std::size_t>(san.res.deadlock_pc)].op,
            kir::OpCode::Barrier);

  ASSERT_EQ(san.res.sanitizer_reports.size(), 1u);
  const auto& r = san.res.sanitizer_reports[0];
  EXPECT_EQ(r.kind, HazardKind::BarrierDivergence);
  EXPECT_EQ(r.thread, 0u);                          // the stuck waiter
  EXPECT_EQ(r.other_thread, 1u);                    // a peer that exited
  EXPECT_EQ(r.other_pc, SanitizerReport::kNoPc);    // peer left the kernel
  EXPECT_EQ(static_cast<std::int64_t>(r.pc), san.res.deadlock_pc);
  EXPECT_EQ(static_cast<std::int64_t>(r.site), san.res.deadlock_site);
}

TEST(Sanitizer, SharedOutOfBoundsReportsFaultingAddress) {
  KernelBuilder kb("oob", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.shstore(i32c(100), tid);
  kb.store(out + tid, tid);
  const auto san = run_all_engines(lower(kb.build()), cross_warp_props());

  ASSERT_EQ(san.res.status, LaunchStatus::CrashSharedOutOfBounds);
  ASSERT_EQ(san.res.sanitizer_reports.size(), 1u);
  const auto& r = san.res.sanitizer_reports[0];
  EXPECT_EQ(r.kind, HazardKind::SharedOutOfBounds);
  EXPECT_EQ(r.thread, 0u);   // first thread crashes, aborting the block
  EXPECT_EQ(r.addr, 100u);   // 16-word allocation
}

TEST(Sanitizer, UninitializedSharedReadReportedOnce) {
  KernelBuilder kb("uninit", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.store(out + tid, kb.shload_i32(tid));
  const auto san = run_all_engines(lower(kb.build()), cross_warp_props());

  ASSERT_EQ(san.res.status, LaunchStatus::Ok);
  // All 8 threads read uninitialized words at the same load instruction;
  // per-(kind, pc) dedupe keeps exactly one report.
  ASSERT_EQ(san.res.sanitizer_reports.size(), 1u);
  const auto& r = san.res.sanitizer_reports[0];
  EXPECT_EQ(r.kind, HazardKind::UninitSharedRead);
  EXPECT_EQ(r.thread, 0u);
  EXPECT_EQ(r.other_thread, SanitizerReport::kNoThread);
  EXPECT_EQ(san.res.sanitizer_reports_dropped, 0u);
}

// --- clean-kernel negatives (zero false positives) ---

TEST(Sanitizer, CleanStagedPipelineHasNoReports) {
  // Classic stage: each thread writes its own word, syncs, then reads a
  // *different* thread's word.  Cross-warp, but barrier-ordered: clean.
  KernelBuilder kb("staged", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.shstore(tid, tid * i32c(2));
  kb.barrier();
  kb.store(out + tid, kb.shload_i32((tid + i32c(1)) % i32c(8)));
  const auto san = run_all_engines(lower(kb.build()), cross_warp_props());

  ASSERT_EQ(san.res.status, LaunchStatus::Ok);
  EXPECT_TRUE(san.res.sanitizer_reports.empty());
  for (std::uint32_t t = 0; t < 8; ++t) EXPECT_EQ(san.out[t], ((t + 1) % 8) * 2);
}

TEST(Sanitizer, WarpSynchronousIdiomIsNotReported) {
  // TPACF-style: one 32-thread warp hammering one shared word.  On the
  // modeled GT200 part the warp runs in lockstep, so this intra-warp
  // conflict is the era's intended idiom, not a bug — racecheck filtered it
  // and so do we.  Default props: warp_size == block size == 32.
  KernelBuilder kb("warpsync", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.shstore(i32c(0), tid);
  kb.store(out + tid, kb.shload_i32(i32c(0)));
  const auto san = run_all_engines(lower(kb.build()), DeviceProps{}, /*threads=*/32);

  ASSERT_EQ(san.res.status, LaunchStatus::Ok);
  EXPECT_TRUE(san.res.sanitizer_reports.empty());
}

TEST(Sanitizer, AllWorkloadsCleanUnderSanitizerWithIdenticalObservables) {
  // Every shipped workload (the paper's 9 GPU programs + the CPU rows) runs
  // report-free under the sanitizer, with output and cycle totals bitwise
  // equal to the fast engine — the zero-overhead/zero-noise pin that makes
  // `--sanitize` safe to leave on in campaigns.
  constexpr std::uint64_t kDatasetSeed = 20260806;  // test_golden_outputs.cpp
  std::vector<std::unique_ptr<workloads::Workload>> all;
  for (auto& w : workloads::hpc_suite()) all.push_back(std::move(w));
  for (auto& w : workloads::graphics_suite()) all.push_back(std::move(w));
  for (auto& w : workloads::cpu_suite()) all.push_back(std::move(w));
  all.push_back(workloads::make_cpu_matmul());
  ASSERT_EQ(all.size(), 12u);

  for (auto& w : all) {
    const workloads::Dataset ds = w->make_dataset(kDatasetSeed, workloads::Scale::Tiny);
    const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
    LaunchResult fast_res, san_res;
    core::ProgramOutput fast_out, san_out;
    for (const auto engine : {ExecEngine::Fast, ExecEngine::Sanitizer}) {
      Device dev;
      dev.set_engine(engine);
      auto job = w->make_job(ds);
      const auto args = job->setup(dev);
      const auto res = dev.launch(v.baseline, job->config(), args);
      ASSERT_EQ(res.status, LaunchStatus::Ok) << w->name();
      if (engine == ExecEngine::Fast) {
        fast_res = res;
        fast_out = job->read_output(dev);
      } else {
        san_res = res;
        san_out = job->read_output(dev);
      }
    }
    EXPECT_TRUE(san_res.sanitizer_reports.empty())
        << w->name() << ": " << san_res.sanitizer_reports.size() << " reports, first: "
        << (san_res.sanitizer_reports.empty()
                ? std::string()
                : sanitizer_report_to_string(san_res.sanitizer_reports[0]));
    EXPECT_EQ(san_res.sanitizer_reports_dropped, 0u) << w->name();
    EXPECT_EQ(san_out.words, fast_out.words) << w->name();
    EXPECT_EQ(san_res.cycles, fast_res.cycles) << w->name();
    EXPECT_EQ(san_res.instructions, fast_res.instructions) << w->name();
  }
}

// --- decoded site table ---

TEST(Sanitizer, DecodedProgramAssignsDenseSiteIds) {
  KernelBuilder kb("sites", 8);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.shstore(tid, tid);
  kb.barrier();
  kb.store(out + tid, kb.shload_i32(tid));
  const auto prog = lower(kb.build());
  const auto dec = kir::decode_program(prog, {});

  ASSERT_EQ(dec.sanitizer_sites.size(), prog.code.size());
  std::uint32_t expect_next = 0, barriers = 0;
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    const auto op = prog.code[pc].op;
    const bool is_site = op == kir::OpCode::LoadS || op == kir::OpCode::StoreS ||
                         op == kir::OpCode::Barrier;
    if (is_site) {
      EXPECT_EQ(dec.sanitizer_sites[pc], expect_next) << "pc " << pc;
      EXPECT_EQ(dec.site_of(static_cast<std::uint32_t>(pc)), expect_next);
      ++expect_next;
      if (op == kir::OpCode::Barrier) ++barriers;
    } else {
      EXPECT_EQ(dec.sanitizer_sites[pc], kir::kNoSite) << "pc " << pc;
    }
  }
  EXPECT_EQ(dec.num_sites, expect_next);
  EXPECT_GE(dec.num_sites, 3u);  // at least the shstore + barrier + shload
  EXPECT_EQ(dec.num_barrier_sites, barriers);
  EXPECT_EQ(barriers, 1u);
  // Out-of-range pcs are never sites.
  EXPECT_EQ(dec.site_of(static_cast<std::uint32_t>(prog.code.size())), kir::kNoSite);
}

// --- SWIFI reclassification ---

namespace {

/// Minimal job for the gate kernel: word 0 of `gate` selects the clean or
/// racy path; faults flipping it turn the kernel racy without changing its
/// output (the race is *silent* — only the sanitizer can tell).
class GateJob final : public core::KernelJob {
 public:
  std::vector<Value> setup(Device& dev) override {
    dev.mem().reset();
    gate_ = dev.mem().alloc(4, AllocClass::I32Data);
    out_ = dev.mem().alloc(8, AllocClass::I32Data);
    const std::vector<std::uint32_t> zero_gate(4, 0), zero_out(8, 0);
    dev.mem().copy_in(gate_, zero_gate);
    dev.mem().copy_in(out_, zero_out);
    return {Value::ptr(gate_), Value::ptr(out_)};
  }
  [[nodiscard]] LaunchConfig config() const override { return {1, 1, 8, 1}; }
  [[nodiscard]] core::ProgramOutput read_output(const Device& dev) const override {
    core::ProgramOutput o;
    o.type = kir::DType::I32;
    o.words.resize(8);
    dev.mem().copy_out(out_, o.words);
    return o;
  }

 private:
  std::uint32_t gate_ = 0, out_ = 0;
};

kir::BytecodeProgram gate_program() {
  KernelBuilder kb("gate", 16);
  auto gatep = kb.param_ptr("gate");
  auto outp = kb.param_ptr("out");
  auto tid = kb.tid_x();
  auto g = kb.let("g", kb.load_i32(gatep));
  kb.if_then_else(g != i32c(0),
                  [&] {
                    // Racy path: every thread fights over word 0, yet each
                    // reads back its own store — the output is unchanged.
                    kb.shstore(i32c(0), tid);
                    kb.store(outp + tid, kb.shload_i32(i32c(0)));
                  },
                  [&] {
                    kb.shstore(tid, tid);
                    kb.store(outp + tid, kb.shload_i32(tid));
                  });
  return lower(kb.build());
}

}  // namespace

TEST(Sanitizer, SanitizedMemoryFaultCampaignReclassifiesSilentRaces) {
  const auto prog = gate_program();
  const workloads::Requirement req{};  // exact output match

  auto run_trials = [&](bool sanitize) {
    Device dev(cross_warp_props());
    dev.set_engine(sanitize ? ExecEngine::Sanitizer : ExecEngine::Fast);
    GateJob job;
    const auto gold = swifi::golden_run(dev, prog, job);
    const std::uint64_t watchdog = swifi::campaign_watchdog(gold, {});
    std::vector<swifi::Outcome> outcomes;
    for (std::size_t i = 0; i < 64; ++i) {
      common::Rng rng = common::Rng::fork(0x5a11, i);
      const std::uint32_t mask = common::random_mask(rng, 3);
      outcomes.push_back(swifi::run_one_memory_fault(dev, prog, job, rng, mask,
                                                     gold.output, req, watchdog, 1));
    }
    return outcomes;
  };

  const auto off = run_trials(false);
  const auto on = run_trials(true);
  ASSERT_EQ(off.size(), on.size());
  std::size_t reclassified = 0;
  for (std::size_t i = 0; i < off.size(); ++i) {
    if (on[i] == swifi::Outcome::RaceDetected ||
        on[i] == swifi::Outcome::BarrierDivergence) {
      // Reclassified trials must have been silent (or failing) before —
      // here the gate kernel's race is output-preserving, so they were
      // Masked: exactly the class the sanitizer exists to un-silence.
      EXPECT_EQ(off[i], swifi::Outcome::Masked) << "trial " << i;
      ++reclassified;
    } else {
      EXPECT_EQ(on[i], off[i]) << "trial " << i;  // sanitize=off unchanged
    }
  }
  EXPECT_GT(reclassified, 0u);
  // Determinism: the sanitized campaign replays bit-identically.
  EXPECT_EQ(on, run_trials(true));
}

TEST(Sanitizer, ReportCapIsConfigurablePerLaunch) {
  // Two racy stores at distinct pcs yield two distinct (kind, pc, other_pc)
  // reports under the default cap; LaunchOptions::sanitize_report_cap = 1
  // keeps the first and counts the rest in sanitizer_reports_dropped.
  KernelBuilder kb("cap", 16);
  auto out = kb.param_ptr("out");
  auto tid = kb.tid_x();
  kb.shstore(i32c(0), tid);
  kb.shstore(i32c(1), tid);
  kb.store(out + tid, i32c(0));
  const auto prog = lower(kb.build());

  Device dev(cross_warp_props());
  dev.set_engine(ExecEngine::Sanitizer);
  const auto out_buf = dev.mem().alloc(64, AllocClass::I32Data);
  const Value args[] = {Value::ptr(out_buf)};
  const LaunchConfig cfg{1, 1, 8, 1};

  const auto full = dev.launch(prog, cfg, args);
  ASSERT_EQ(full.status, LaunchStatus::Ok);
  ASSERT_EQ(full.sanitizer_reports.size(), 2u);
  EXPECT_EQ(full.sanitizer_reports_dropped, 0u);

  LaunchOptions capped;
  capped.sanitize_report_cap = 1;
  const auto one = dev.launch(prog, cfg, args, capped);
  ASSERT_EQ(one.status, LaunchStatus::Ok);
  ASSERT_EQ(one.sanitizer_reports.size(), 1u);
  EXPECT_EQ(one.sanitizer_reports[0], full.sanitizer_reports[0])
      << "the cap truncates, it never reorders";
  EXPECT_EQ(one.sanitizer_reports_dropped, 1u);

  // 0 clamps to 1: the first hazard per block always survives.
  LaunchOptions zero;
  zero.sanitize_report_cap = 0;
  const auto clamped = dev.launch(prog, cfg, args, zero);
  EXPECT_EQ(clamped.sanitizer_reports.size(), 1u);
  EXPECT_EQ(clamped.sanitizer_reports_dropped, 1u);
}
