// Tests for the Hauberk translator (Table I): semantic transparency of the
// instrumentation, detector placement, Profiler/FT/FI variants, and the
// end-to-end profile -> configure -> detect pipeline.
#include <gtest/gtest.h>

#include <functional>
#include <span>

#include "gpusim/device.hpp"
#include "hauberk/runtime.hpp"
#include "hauberk/translator.hpp"
#include "kir/builder.hpp"
#include "kir/printer.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::core;
using namespace hauberk::workloads;

namespace {

std::vector<std::string> hpc_names() {
  std::vector<std::string> n;
  for (const auto& w : hpc_suite()) n.push_back(w->name());
  return n;
}

std::unique_ptr<Workload> by_name(const std::string& name) {
  for (auto& w : hpc_suite())
    if (w->name() == name) return std::move(w);
  for (auto& w : graphics_suite())
    if (w->name() == name) return std::move(w);
  return nullptr;
}

struct RunOut {
  gpusim::LaunchResult res;
  ProgramOutput out;
};

RunOut run(gpusim::Device& dev, const kir::BytecodeProgram& prog, KernelJob& job,
           gpusim::LaunchHooks* hooks = nullptr) {
  const auto args = job.setup(dev);
  gpusim::LaunchOptions opts;
  opts.hooks = hooks;
  RunOut r;
  r.res = dev.launch(prog, job.config(), args, opts);
  if (r.res.status == gpusim::LaunchStatus::Ok) r.out = job.read_output(dev);
  return r;
}

class TranslatorSuite : public ::testing::TestWithParam<std::string> {};

}  // namespace

TEST_P(TranslatorSuite, FtInstrumentationIsSemanticallyTransparent) {
  auto w = by_name(GetParam());
  const auto ds = w->make_dataset(11, Scale::Tiny);
  auto v = build_variants(w->build_kernel(Scale::Tiny));
  gpusim::Device dev;
  auto job = w->make_job(ds);
  const auto base = run(dev, v.baseline, *job);
  ASSERT_EQ(base.res.status, gpusim::LaunchStatus::Ok);
  ControlBlock cb(v.ft);
  const auto ft = run(dev, v.ft, *job, &cb);
  ASSERT_EQ(ft.res.status, gpusim::LaunchStatus::Ok) << w->name();
  EXPECT_EQ(ft.out.words, base.out.words) << "FT instrumentation changed program semantics";
}

TEST_P(TranslatorSuite, FaultFreeFtRunRaisesNoAlarm) {
  auto w = by_name(GetParam());
  const auto ds = w->make_dataset(12, Scale::Tiny);
  auto v = build_variants(w->build_kernel(Scale::Tiny));
  gpusim::Device dev;
  auto job = w->make_job(ds);
  ControlBlock cb(v.ft);
  const auto ft = run(dev, v.ft, *job, &cb);
  ASSERT_EQ(ft.res.status, gpusim::LaunchStatus::Ok);
  EXPECT_FALSE(ft.res.sdc_alarm) << w->name();
  EXPECT_FALSE(cb.sdc_detected());
}

TEST_P(TranslatorSuite, ProfileThenDetectRaisesNoAlarmOnTrainingData) {
  // Fig. 7 pipeline with train == test: the Fig. 14 configuration.
  auto w = by_name(GetParam());
  const auto ds = w->make_dataset(13, Scale::Tiny);
  auto v = build_variants(w->build_kernel(Scale::Tiny));
  gpusim::Device dev;
  auto job = w->make_job(ds);
  const auto pd = profile(dev, v, {job.get()});
  auto cb = make_configured_control_block(v.ft, pd);
  const auto ft = run(dev, v.ft, *job, cb.get());
  ASSERT_EQ(ft.res.status, gpusim::LaunchStatus::Ok);
  EXPECT_FALSE(ft.res.sdc_alarm) << w->name();
  EXPECT_GT(cb->total_checks(), 0u) << "detectors must actually fire checks";
}

TEST_P(TranslatorSuite, ConfiguredDetectorCatchesGrossCorruption) {
  // If a protected accumulator is wildly off, the range check must fire.
  auto w = by_name(GetParam());
  const auto ds = w->make_dataset(14, Scale::Tiny);
  auto v = build_variants(w->build_kernel(Scale::Tiny));
  if (v.ft_report.loop_detectors.empty()) GTEST_SKIP() << "no loop detectors";
  gpusim::Device dev;
  auto job = w->make_job(ds);
  const auto pd = profile(dev, v, {job.get()});
  auto cb = make_configured_control_block(v.ft, pd);
  // Sanity-check the detector machinery directly: a value far outside the
  // profiled range must be flagged.
  bool fired = false;
  for (const auto& d : cb->detectors()) {
    if (d.meta.is_iteration_check || !d.configured) continue;
    fired |= cb->check_range(d.meta.id, kir::Value::f32(3.4e37f));
  }
  EXPECT_TRUE(fired) << w->name();
}

TEST_P(TranslatorSuite, VariantsHaveExpectedInstrumentation) {
  auto w = by_name(GetParam());
  auto v = build_variants(w->build_kernel(Scale::Tiny));
  // FI build exposes injection sites; profiler counts match.
  EXPECT_GT(v.fi.fi_sites.size(), 0u);
  EXPECT_EQ(v.fi.fi_sites.size(), v.profiler.fi_sites.size());
  for (std::size_t i = 0; i < v.fi.fi_sites.size(); ++i) {
    EXPECT_EQ(v.fi.fi_sites[i].site_id, v.profiler.fi_sites[i].site_id);
    EXPECT_EQ(v.fi.fi_sites[i].var, v.profiler.fi_sites[i].var);
  }
  // Baseline carries no instrumentation.
  EXPECT_TRUE(v.baseline.fi_sites.empty());
  EXPECT_TRUE(v.baseline.detectors.empty());
  // FT and profiler agree on detector ids for value checks.
  EXPECT_EQ(v.ft_report.loop_detectors.size(), v.profiler_report.loop_detectors.size());
  for (std::size_t i = 0; i < v.ft_report.loop_detectors.size(); ++i) {
    EXPECT_EQ(v.ft_report.loop_detectors[i].value_detector,
              v.profiler_report.loop_detectors[i].value_detector);
    EXPECT_EQ(v.ft_report.loop_detectors[i].var, v.profiler_report.loop_detectors[i].var);
  }
}

TEST_P(TranslatorSuite, FiftOutputMatchesBaselineWithoutActiveFaults) {
  auto w = by_name(GetParam());
  const auto ds = w->make_dataset(15, Scale::Tiny);
  auto v = build_variants(w->build_kernel(Scale::Tiny));
  gpusim::Device dev;
  auto job = w->make_job(ds);
  const auto base = run(dev, v.baseline, *job);
  ControlBlock cb(v.fift);
  const auto fift = run(dev, v.fift, *job, &cb);
  ASSERT_EQ(fift.res.status, gpusim::LaunchStatus::Ok);
  EXPECT_EQ(fift.out.words, base.out.words);
  EXPECT_FALSE(fift.res.sdc_alarm);
}

INSTANTIATE_TEST_SUITE_P(HpcPrograms, TranslatorSuite, ::testing::ValuesIn(hpc_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// --- finer-grained translator facts ---

TEST(Translator, CpSelectsSelfAccumulatingEnergyWithNoInLoopAccumulator) {
  auto w = by_name("CP");
  TranslateReport rep;
  TranslateOptions opt;
  opt.mode = LibMode::FT;
  auto k = translate(w->build_kernel(Scale::Tiny), opt, &rep);
  ASSERT_EQ(rep.loop_detectors.size(), 1u);
  EXPECT_TRUE(rep.loop_detectors[0].self_accumulating)
      << "CP's loop has self-accumulating energies; Section V.B step (ii) "
         "must skip the extra accumulator";
  EXPECT_GE(rep.loop_detectors[0].iter_detector, 0) << "trip count is derivable for CP";
}

TEST(Translator, MaxvarControlsDetectorCount) {
  auto w = by_name("CP");
  for (int maxvar : {1, 2}) {
    TranslateReport rep;
    TranslateOptions opt;
    opt.mode = LibMode::FT;
    opt.maxvar = maxvar;
    (void)translate(w->build_kernel(Scale::Tiny), opt, &rep);
    EXPECT_EQ(static_cast<int>(rep.loop_detectors.size()), maxvar);
  }
}

TEST(Translator, NonLoopOnlyAndLoopOnlyModes) {
  auto w = by_name("MRI-Q");
  TranslateOptions nl;
  nl.mode = LibMode::FT;
  nl.protect_loop = false;
  TranslateReport nl_rep;
  (void)translate(w->build_kernel(Scale::Tiny), nl, &nl_rep);
  EXPECT_GT(nl_rep.nonloop_protected, 0);
  EXPECT_TRUE(nl_rep.loop_detectors.empty());

  TranslateOptions lo;
  lo.mode = LibMode::FT;
  lo.protect_nonloop = false;
  TranslateReport lo_rep;
  (void)translate(w->build_kernel(Scale::Tiny), lo, &lo_rep);
  EXPECT_EQ(lo_rep.nonloop_protected, 0);
  EXPECT_FALSE(lo_rep.loop_detectors.empty());
}

TEST(Translator, InstrumentedSourceShowsHauberkCalls) {
  auto w = by_name("CP");
  TranslateOptions opt;
  opt.mode = LibMode::FT;
  auto k = translate(w->build_kernel(Scale::Tiny), opt);
  const std::string src = kir::print_kernel(k);
  EXPECT_NE(src.find("HauberkCheckRange"), std::string::npos);
  EXPECT_NE(src.find("HauberkCheckEqual"), std::string::npos);
  EXPECT_NE(src.find("chksum"), std::string::npos);
  EXPECT_NE(src.find("dup-check"), std::string::npos);
}

TEST(Translator, FiSourceShowsHooks) {
  auto w = by_name("CP");
  TranslateOptions opt;
  opt.mode = LibMode::FI;
  auto k = translate(w->build_kernel(Scale::Tiny), opt);
  EXPECT_NE(kir::print_kernel(k).find("HauberkFIHook"), std::string::npos);
}

TEST(Translator, SiteMetadataCarriesHwComponents) {
  auto w = by_name("MRI-Q");
  auto v = build_variants(w->build_kernel(Scale::Tiny));
  bool saw_fpu = false, saw_alu_or_mem = false, saw_sched = false;
  for (const auto& s : v.fi.fi_sites) {
    saw_fpu |= s.hw == kir::HwComponent::FPU;
    saw_alu_or_mem |= s.hw == kir::HwComponent::ALU || s.hw == kir::HwComponent::Memory;
    saw_sched |= s.hw == kir::HwComponent::Scheduler;
  }
  EXPECT_TRUE(saw_fpu);
  EXPECT_TRUE(saw_alu_or_mem);
  EXPECT_TRUE(saw_sched) << "loop iterators must be injectable (Section IX.B hang case)";
}

TEST(Translator, TransformTimeIsRecorded) {
  auto w = by_name("RPES");
  TranslateReport rep;
  TranslateOptions opt;
  opt.mode = LibMode::FT;
  (void)translate(w->build_kernel(Scale::Small), opt, &rep);
  EXPECT_GT(rep.transform_seconds, 0.0);
  EXPECT_LT(rep.transform_seconds, 5.0);  // paper: <0.7s per kernel on 2009 hw
}

TEST(Translator, InputKernelIsNotMutated) {
  auto w = by_name("CP");
  const auto k = w->build_kernel(Scale::Tiny);
  const std::size_t body = k.body.size();
  const std::size_t vars = k.vars.size();
  TranslateOptions opt;
  opt.mode = LibMode::FIFT;
  (void)translate(k, opt);
  EXPECT_EQ(k.body.size(), body);
  EXPECT_EQ(k.vars.size(), vars);
}

// --- degenerate-kernel edge cases (each run on both interpreter engines) ---

namespace {

/// Kernels with no protectable structure must still translate, lower, and
/// execute cleanly in every library mode.
void expect_transparent_on_both_engines(const kir::Kernel& k, const gpusim::LaunchConfig& cfg) {
  auto v = build_variants(k);
  for (const auto engine : {gpusim::ExecEngine::Fast, gpusim::ExecEngine::Reference}) {
    const char* en = gpusim::exec_engine_name(engine);
    gpusim::Device dev;
    dev.set_engine(engine);
    const auto base = dev.launch(v.baseline, cfg, {});
    ASSERT_EQ(base.status, gpusim::LaunchStatus::Ok) << k.name << " baseline (" << en << ")";
    ControlBlock cb(v.ft);
    gpusim::LaunchOptions opts;
    opts.hooks = &cb;
    const auto ft = dev.launch(v.ft, cfg, {}, opts);
    ASSERT_EQ(ft.status, gpusim::LaunchStatus::Ok) << k.name << " FT (" << en << ")";
    EXPECT_FALSE(ft.sdc_alarm) << k.name << " (" << en << ")";
    EXPECT_FALSE(cb.sdc_detected()) << k.name << " (" << en << ")";
  }
}

}  // namespace

TEST(TranslatorEdge, EmptyKernelTranslatesAndRuns) {
  kir::KernelBuilder kb("empty");
  const auto k = kb.build();
  TranslateReport rep;
  TranslateOptions opt;
  opt.mode = LibMode::FT;
  const auto ft = translate(k, opt, &rep);
  EXPECT_TRUE(rep.loop_detectors.empty());
  EXPECT_EQ(rep.params_protected, 0);
  EXPECT_GE(ft.body.size(), k.body.size());  // checksum scaffolding may still appear
  expect_transparent_on_both_engines(k, gpusim::LaunchConfig{});
}

TEST(TranslatorEdge, SingleInstructionKernelKeepsItsOneEffect) {
  kir::KernelBuilder kb("one");
  auto out = kb.param_ptr("out");
  kb.store(out, kir::f32c(3.5f));
  const auto k = kb.build();
  auto v = build_variants(k);
  EXPECT_EQ(v.ft_report.params_protected, 1);
  for (const auto engine : {gpusim::ExecEngine::Fast, gpusim::ExecEngine::Reference}) {
    gpusim::Device dev;
    dev.set_engine(engine);
    const auto oa = dev.mem().alloc(1, gpusim::AllocClass::F32Data);
    const kir::Value args[] = {kir::Value::ptr(oa)};
    ControlBlock cb(v.ft);
    gpusim::LaunchOptions opts;
    opts.hooks = &cb;
    ASSERT_EQ(dev.launch(v.ft, gpusim::LaunchConfig{}, args, opts).status,
              gpusim::LaunchStatus::Ok);
    std::uint32_t word = 0;
    dev.mem().copy_out(oa, std::span<std::uint32_t>(&word, 1));
    EXPECT_EQ(word, kir::Value::f32(3.5f).bits) << gpusim::exec_engine_name(engine);
    EXPECT_FALSE(cb.sdc_detected());
  }
}

TEST(TranslatorEdge, BarrierOnlyKernelSurvivesEveryMode) {
  kir::KernelBuilder kb("barriers");
  kb.barrier();
  kb.barrier();
  const auto k = kb.build();
  auto v = build_variants(k);
  // No data flow: nothing to duplicate or range-check, but the barriers must
  // survive translation in every variant so warp synchronization is intact.
  for (const kir::BytecodeProgram* p : {&v.baseline, &v.ft, &v.profiler, &v.fi, &v.fift}) {
    int barriers = 0;
    for (const auto& in : p->code)
      if (in.op == kir::OpCode::Barrier) ++barriers;
    EXPECT_EQ(barriers, 2) << p->name;
  }
  for (const auto engine : {gpusim::ExecEngine::Fast, gpusim::ExecEngine::Reference}) {
    gpusim::Device dev;
    dev.set_engine(engine);
    const auto res = dev.launch(v.ft, gpusim::LaunchConfig{2, 1, 32, 1}, {});
    ASSERT_EQ(res.status, gpusim::LaunchStatus::Ok) << gpusim::exec_engine_name(engine);
    EXPECT_EQ(res.threads, 64u);
    EXPECT_FALSE(res.sdc_alarm);
  }
}

TEST(TranslatorEdge, MaxDepthNestedLoopsAreInstrumentedTransparently) {
  // Six levels of nesting: the translator protects the outermost loop only
  // (inner loops belong to its dataflow graph), and the duplicated +
  // checksummed FT build must still compute the exact same result.
  constexpr int kDepth = 6;
  kir::KernelBuilder kb("deep");
  auto out = kb.param_ptr("out");
  auto acc = kb.let("acc", kir::f32c(0.0f));
  std::function<void(int)> nest = [&](int d) {
    if (d == 0) {
      kb.assign(acc, acc + kir::f32c(1.0f));
      return;
    }
    kb.for_loop("i" + std::to_string(d), kir::i32c(0), kir::i32c(2),
                [&](kir::ExprH) { nest(d - 1); });
  };
  nest(kDepth);
  kb.store(out, acc);

  auto v = build_variants(kb.build());
  ASSERT_FALSE(v.ft_report.loop_detectors.empty());
  for (const auto engine : {gpusim::ExecEngine::Fast, gpusim::ExecEngine::Reference}) {
    const char* en = gpusim::exec_engine_name(engine);
    gpusim::Device dev;
    dev.set_engine(engine);
    const auto oa = dev.mem().alloc(1, gpusim::AllocClass::F32Data);
    const kir::Value args[] = {kir::Value::ptr(oa)};
    ASSERT_EQ(dev.launch(v.baseline, gpusim::LaunchConfig{}, args).status,
              gpusim::LaunchStatus::Ok);
    std::uint32_t base_word = 0;
    dev.mem().copy_out(oa, std::span<std::uint32_t>(&base_word, 1));
    EXPECT_EQ(base_word, kir::Value::f32(64.0f).bits) << en;  // 2^6 inner trips

    ControlBlock cb(v.ft);
    gpusim::LaunchOptions opts;
    opts.hooks = &cb;
    const auto ft = dev.launch(v.ft, gpusim::LaunchConfig{}, args, opts);
    ASSERT_EQ(ft.status, gpusim::LaunchStatus::Ok) << en;
    std::uint32_t ft_word = 0;
    dev.mem().copy_out(oa, std::span<std::uint32_t>(&ft_word, 1));
    EXPECT_EQ(ft_word, base_word) << "nested-loop FT instrumentation changed semantics (" << en
                                  << ")";
    EXPECT_FALSE(ft.sdc_alarm) << en;
    EXPECT_GT(cb.total_checks(), 0u) << en;
  }
}

TEST(Translator, ParamsProtectedByChecksumOnly) {
  auto w = by_name("CP");
  TranslateOptions opt;
  opt.mode = LibMode::FT;
  TranslateReport rep;
  auto k = translate(w->build_kernel(Scale::Tiny), opt, &rep);
  EXPECT_EQ(rep.params_protected, static_cast<int>(k.params.size()));
}
