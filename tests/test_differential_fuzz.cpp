// Differential fuzzer for the interpreter engines (gpusim::ExecEngine).
//
// A seeded generator builds random kernels over the builder DSL — arithmetic
// of all three types, loads/stores (mostly in-bounds, occasionally wild),
// shared memory, atomics, nested loops, divergent branches, barriers (some
// deliberately deadlocking), division by zero and intentional hangs — lowers
// them, and runs each program through the fast predecoded engine and the
// reference switch interpreter.  Every observable must match bitwise:
// status, SDC alarm, cycle/loop-cycle/instruction/SIMT totals, the entire
// device memory image (which covers partial state of crashed runs), and the
// per-instruction execution profile.  Each program additionally runs plain
// (uninstrumented) on the threaded-code engine against a plain fast run —
// the only configuration in which the superinstruction stream executes —
// so all four engines are pinned to each other.  A subset is additionally
// run through the Hauberk FT translator (detector semantics) and through
// memory-fault campaigns with 1 vs N workers across engines.
//
// A second generator mode (racy) skews the distribution toward shared-memory
// conflicts and divergent barriers on a small-warp device; those programs
// additionally run on ExecEngine::Sanitizer, which must agree with the other
// two engines on every observable while being the only one that emits
// deterministic hazard reports.
//
// Reproducing a failure: every divergence report starts with the program
// index and the kernel pretty-printed by kir::print_kernel.  Environment
// knobs: HAUBERK_FUZZ_PROGRAMS overrides the program count (CI smoke uses
// ~200, local soaks 1000+); HAUBERK_FUZZ_SEED overrides the campaign seed;
// HAUBERK_FUZZ_DUMP_DIR additionally writes each failing program to
// <dir>/fuzz_<index>.kir so CI can upload them as artifacts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "hauberk/control_block.hpp"
#include "hauberk/translator.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"
#include "kir/printer.hpp"
#include "swifi/executor.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::kir;
using hauberk::common::Rng;

namespace {

constexpr std::uint32_t kBufWords = 64;  // in/out buffers; power of two for masking

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v && *v ? std::strtoull(v, nullptr, 0) : fallback;  // base 0: 0x… works
}

// ---------------------------------------------------------------------------
// Random program generation
// ---------------------------------------------------------------------------

struct FuzzProgram {
  Kernel kernel;
  gpusim::LaunchConfig cfg;
  gpusim::MemoryModel mem_model = gpusim::MemoryModel::FlatGpu;
  std::uint32_t warp_size = 32;
};

/// Grows one random kernel with the fixed signature (out: ptr, in: ptr,
/// n: i32).  All choices are drawn from the supplied Rng, so a (seed, index)
/// pair fully reproduces a program.  In `racy` mode every program has shared
/// memory, blocks span several 4-thread warps, and the statement mix is
/// skewed toward conflicting shared accesses and divergent barriers — food
/// for the sanitizer engine.
class ProgramGen {
 public:
  explicit ProgramGen(Rng& rng, bool racy = false) : rng_(rng), racy_(racy) {}

  FuzzProgram gen() {
    FuzzProgram fp;
    shared_words_ = racy_ ? pick_of<std::uint32_t>({16, 32})
                          : pick_of<std::uint32_t>({0, 0, 16, 32});
    KernelBuilder kb("fuzz", shared_words_);
    ExprH out = kb.param_ptr("out");
    ExprH in = kb.param_ptr("in");
    ExprH n = kb.param_i32("n");
    ptrs_ = {out, in};
    i32s_ = {n, kb.thread_linear(), kb.tid_x(), kb.bid_x(), kb.bdim_x(),
             i32c(0), i32c(1), i32c(7), i32c(-3), i32c(1000000007)};
    f32s_ = {f32c(0.0f), f32c(1.5f), f32c(-3.25f), f32c(1e30f),
             f32c(std::numeric_limits<float>::infinity()), f32c(0.125f)};
    mutable_f32_.clear();
    mutable_i32_.clear();

    const int stmts = 4 + static_cast<int>(rng_.next_below(18));
    for (int s = 0; s < stmts; ++s) statement(kb, 0);
    // Always end with at least one observable store so "everything masked"
    // programs still differentiate engine output state.
    kb.store(safe_addr(), f32_expr());

    fp.kernel = kb.build();
    fp.cfg.grid_x = 1 + static_cast<std::uint32_t>(rng_.next_below(2));
    fp.cfg.block_x = racy_ ? pick_of<std::uint32_t>({8, 16, 32})
                           : pick_of<std::uint32_t>({1, 4, 8, 32});
    fp.cfg.block_y = (!racy_ && chance(10)) ? 2 : 1;
    fp.mem_model = (!racy_ && chance(10)) ? gpusim::MemoryModel::PagedCpu
                                          : gpusim::MemoryModel::FlatGpu;
    if (racy_) fp.warp_size = 4;  // cross-warp hazards inside one block
    return fp;
  }

 private:
  bool chance(unsigned percent) { return rng_.next_below(100) < percent; }

  template <typename T>
  T pick_of(std::initializer_list<T> opts) {
    return *(opts.begin() + rng_.next_below(opts.size()));
  }
  ExprH pick(const std::vector<ExprH>& pool) {
    return pool[rng_.next_below(pool.size())];
  }

  ExprH i32_expr() {
    ExprH a = pick(i32s_);
    switch (rng_.next_below(12)) {
      case 0: return a + pick(i32s_);
      case 1: return a - pick(i32s_);
      case 2: return a * pick(i32s_);
      case 3: return a / pick(i32s_);  // may divide by zero: both engines crash
      case 4: return a % pick(i32s_);
      case 5: return a & pick(i32s_);
      case 6: return a | pick(i32s_);
      case 7: return a ^ pick(i32s_);
      case 8: return a << pick(i32s_);
      case 9: return a >> pick(i32s_);
      case 10: return -a;
      default: return a;
    }
  }

  ExprH f32_expr() {
    ExprH a = pick(f32s_);
    switch (rng_.next_below(14)) {
      case 0: return a + pick(f32s_);
      case 1: return a - pick(f32s_);
      case 2: return a * pick(f32s_);
      case 3: return a / pick(f32s_);        // /0 -> inf, no trap
      case 4: return a % pick(f32s_);        // fmod: BinGeneric path
      case 5: return sqrt_(a);               // negative -> NaN
      case 6: return min_(a, pick(f32s_));
      case 7: return max_(a, pick(f32s_));
      case 8: return abs_(a);
      case 9: return sin_(a);
      case 10: return to_f32(pick(i32s_));
      case 11: return select_(cond_expr(), a, pick(f32s_));
      case 12: return -a;
      default: return a;
    }
  }

  ExprH cond_expr() {
    if (chance(50)) {
      ExprH a = pick(i32s_), b = pick(i32s_);
      switch (rng_.next_below(6)) {
        case 0: return a < b;
        case 1: return a <= b;
        case 2: return a > b;
        case 3: return a == b;
        case 4: return a != b;
        default: return (a < b) && (b != i32c(0));
      }
    }
    ExprH a = pick(f32s_), b = pick(f32s_);  // NaN/-0.0 compare semantics
    return chance(50) ? (a < b) : (a == b);
  }

  /// In-bounds address: base + (i32 & (kBufWords-1)).  A masked non-negative
  /// word offset always lands inside the 64-word buffer.
  ExprH safe_addr() {
    return pick(ptrs_) + (i32_expr() & i32c(kBufWords - 1));
  }
  /// Occasionally wild: raw offsets may go far out of bounds (or negative,
  /// wrapping to huge) — the engines must agree on the crash.
  ExprH addr() { return chance(8) ? pick(ptrs_) + i32_expr() : safe_addr(); }

  /// Hazard-biased statement for racy mode: shared accesses through
  /// colliding indices (tiny constants or low tid bits, so threads of
  /// *different* warps touch the same word inside one epoch) and barriers
  /// that only part of the block executes.
  void racy_statement(KernelBuilder& kb, int depth) {
    ExprH idx = chance(60)
                    ? i32c(static_cast<std::int32_t>(rng_.next_below(4)))
                    : (kb.tid_x() & i32c(3));
    const std::uint64_t roll = rng_.next_below(10);
    if (roll < 4) {
      kb.shstore(idx, f32_expr());
    } else if (roll < 7) {  // may read uninitialized or racing words
      ExprH v = kb.let("r" + std::to_string(serial_++), kb.shload_f32(idx));
      f32s_.push_back(v);
    } else if (roll < 8 || depth >= 2) {
      kb.barrier();
    } else if (roll < 9) {  // exit divergence: non-takers leave waiters stuck
      kb.if_then(cond_expr(), [&] { kb.barrier(); });
    } else {  // two distinct barrier sites in one release
      kb.if_then_else(cond_expr(), [&] { kb.barrier(); }, [&] { kb.barrier(); });
    }
  }

  void statement(KernelBuilder& kb, int depth) {
    if (racy_ && chance(30)) {
      racy_statement(kb, depth);
      return;
    }
    const std::uint64_t roll = rng_.next_below(100);
    if (roll < 22) {  // new f32 variable
      ExprH v = kb.let("f" + std::to_string(serial_++), f32_expr());
      f32s_.push_back(v);
      mutable_f32_.push_back(v);
    } else if (roll < 38) {  // new i32 variable
      ExprH v = kb.let("i" + std::to_string(serial_++), i32_expr());
      i32s_.push_back(v);
      mutable_i32_.push_back(v);
    } else if (roll < 50) {  // reassignment
      if (!mutable_f32_.empty() && chance(50))
        kb.assign(pick(mutable_f32_), f32_expr());
      else if (!mutable_i32_.empty())
        kb.assign(pick(mutable_i32_), i32_expr());
    } else if (roll < 62) {  // global store
      kb.store(addr(), chance(60) ? f32_expr() : i32_expr());
    } else if (roll < 68) {  // shared memory
      if (shared_words_ > 0) {
        ExprH idx = i32_expr() & i32c(static_cast<std::int32_t>(shared_words_ - 1));
        if (chance(50)) {
          kb.shstore(idx, f32_expr());
        } else {
          ExprH v = kb.let("s" + std::to_string(serial_++), kb.shload_f32(idx));
          f32s_.push_back(v);
        }
      }
    } else if (roll < 74) {  // atomic accumulation
      kb.atomic_add(safe_addr(), f32_expr());
    } else if (roll < 84 && depth < 2) {  // branch
      if (chance(60)) {
        kb.if_then_else(
            cond_expr(), [&] { statement(kb, depth + 1); },
            [&] { statement(kb, depth + 1); });
      } else {
        kb.if_then(cond_expr(), [&] {
          statement(kb, depth + 1);
          // Rare divergent barrier: threads skipping the branch leave the
          // others waiting -> CrashBarrierDeadlock on both engines.
          if (chance(6)) kb.barrier();
        });
      }
    } else if (roll < 92 && depth < 2) {  // counted loop
      const auto trip = static_cast<std::int32_t>(1 + rng_.next_below(5));
      kb.for_loop("k" + std::to_string(serial_++), i32c(0), i32c(trip),
                  [&](ExprH it) {
                    i32s_.push_back(it);
                    statement(kb, depth + 1);
                    if (chance(30)) statement(kb, depth + 1);
                  });
    } else if (roll < 95 && depth < 2) {  // while loop, occasionally infinite
      ExprH c = kb.let("w" + std::to_string(serial_++), i32c(0));
      const bool hang = chance(4);  // watchdog Hang must match too
      const auto lim = static_cast<std::int32_t>(1 + rng_.next_below(4));
      kb.while_loop([&, c] { return hang ? (c >= i32c(0)) : (c < i32c(lim)); },
                    [&, c] {
                      statement(kb, depth + 1);
                      kb.assign(c, c + i32c(1));
                    });
    } else if (roll < 97) {
      kb.barrier();  // uniform barrier at this nesting level
    } else {  // integer division hazard in a fresh variable
      ExprH v = kb.let("d" + std::to_string(serial_++), pick(i32s_) / i32_expr());
      i32s_.push_back(v);
    }
  }

  Rng& rng_;
  bool racy_ = false;
  std::uint32_t shared_words_ = 0;
  int serial_ = 0;
  std::vector<ExprH> ptrs_, i32s_, f32s_;
  std::vector<ExprH> mutable_f32_, mutable_i32_;
};

// ---------------------------------------------------------------------------
// Differential harness
// ---------------------------------------------------------------------------

/// Everything one engine run exposes; compared field-for-field.
struct EngineRun {
  gpusim::LaunchResult res;
  std::vector<std::uint32_t> mem;           ///< full live arena, incl. crashes
  std::vector<std::uint8_t> check_mem;      ///< shadow check arena (protected mode)
  std::vector<std::uint64_t> exec_counts;   ///< per-pc execution profile
  bool cb_sdc = false;
  std::uint64_t cb_checks = 0, cb_violations = 0;
  std::uint64_t ecc_corrected = 0, ecc_uncorrectable = 0;  ///< device counters
};

/// Deterministic input staging shared by both engines.
void stage_input(std::vector<std::uint32_t>& words, std::uint64_t salt) {
  Rng r = Rng::fork(salt, 0xdeadbeef);
  for (std::size_t i = 0; i < words.size(); ++i) {
    // Alternate float-looking and integer-looking patterns.
    words[i] = (i % 3 == 0) ? Value::f32(r.next_float() * 8.0f - 4.0f).bits
                            : r.next_u32();
  }
}

EngineRun run_engine(const BytecodeProgram& prog, const FuzzProgram& fp,
                     gpusim::ExecEngine engine, std::uint64_t salt,
                     bool with_cb, bool instrumented = true,
                     gpusim::ecc::Scheme protection = gpusim::ecc::Scheme::None) {
  gpusim::DeviceProps props;
  props.global_mem_words = 1u << 16;
  props.memory_model = fp.mem_model;
  props.warp_size = fp.warp_size;
  props.protection = protection;
  gpusim::Device dev(props);
  dev.set_engine(engine);

  const std::uint32_t out_a = dev.mem().alloc(kBufWords, gpusim::AllocClass::F32Data);
  const std::uint32_t in_a = dev.mem().alloc(kBufWords, gpusim::AllocClass::F32Data);
  std::vector<std::uint32_t> input(kBufWords);
  stage_input(input, salt);
  dev.mem().copy_in(in_a, input);
  if (protection != gpusim::ecc::Scheme::None) {
    // Plant a deterministic raw memory-cell upset in the input buffer: a
    // single-bit data flip (corrected on first read), a check-bit flip, or a
    // double-bit flip in one codeword (uncorrectable if the pair is read).
    Rng cr = Rng::fork(salt, 0x0ecc);
    const auto widx = in_a + static_cast<std::uint32_t>(cr.next_below(kBufWords));
    const auto bit = 1u << cr.next_below(32);
    switch (cr.next_below(5)) {
      case 0:
        dev.mem().corrupt_word(widx, bit);
        dev.mem().corrupt_word(widx ^ 1u, bit);  // sibling word, same pair
        break;
      case 1:
        dev.mem().corrupt_check(widx, static_cast<std::uint8_t>(1u << cr.next_below(8)));
        break;
      default:
        dev.mem().corrupt_word(widx, bit);
        break;
    }
  }

  const Value args[] = {Value::ptr(out_a), Value::ptr(in_a),
                        Value::i32(kBufWords)};
  core::ControlBlock cb(prog);
  gpusim::LaunchOptions opts;
  opts.watchdog_instructions = 10'000;
  opts.max_workers = 1;
  // SIMT costing and the execution profile force the fast engine's
  // instrumented specializations; a plain run is the configuration the
  // threaded-code engine actually executes (campaigns run plain).
  opts.simt_cost = instrumented;
  opts.hooks = with_cb ? &cb : nullptr;
  EngineRun r;
  std::vector<std::uint64_t> counts;
  if (instrumented) opts.instr_exec_counts = &counts;
  r.res = dev.launch(prog, fp.cfg, args, opts);
  r.mem = dev.mem().image();
  r.check_mem = dev.mem().check_image();
  r.exec_counts = std::move(counts);
  r.ecc_corrected = dev.mem().ecc_corrected();
  r.ecc_uncorrectable = dev.mem().ecc_uncorrectable();
  if (with_cb) {
    r.cb_sdc = cb.sdc_detected();
    r.cb_checks = cb.total_checks();
    r.cb_violations = cb.total_violations();
  }
  return r;
}

/// Compares one program's runs; on divergence reports the pretty-printed
/// kernel and (when HAUBERK_FUZZ_DUMP_DIR is set) writes it to disk.
void expect_identical(const EngineRun& fast, const EngineRun& ref,
                      const FuzzProgram& fp, std::size_t index,
                      const char* phase) {
  const bool same = fast.res.status == ref.res.status &&
                    fast.res.sdc_alarm == ref.res.sdc_alarm &&
                    fast.res.cycles == ref.res.cycles &&
                    fast.res.loop_cycles == ref.res.loop_cycles &&
                    fast.res.instructions == ref.res.instructions &&
                    fast.res.simt_cycles == ref.res.simt_cycles &&
                    fast.res.deadlock_pc == ref.res.deadlock_pc &&
                    fast.res.deadlock_site == ref.res.deadlock_site &&
                    fast.mem == ref.mem && fast.exec_counts == ref.exec_counts &&
                    fast.cb_sdc == ref.cb_sdc && fast.cb_checks == ref.cb_checks &&
                    fast.cb_violations == ref.cb_violations &&
                    fast.res.ecc_corrected == ref.res.ecc_corrected &&
                    fast.check_mem == ref.check_mem &&
                    fast.ecc_corrected == ref.ecc_corrected &&
                    fast.ecc_uncorrectable == ref.ecc_uncorrectable;
  if (same) return;

  std::string mem_diff;
  for (std::size_t w = 0; w < fast.mem.size() && w < ref.mem.size(); ++w) {
    if (fast.mem[w] != ref.mem[w]) {
      mem_diff += "\n  word " + std::to_string(w) + ": fast=0x" +
                  std::to_string(fast.mem[w]) + " ref=0x" + std::to_string(ref.mem[w]);
      if (mem_diff.size() > 400) break;
    }
  }
  const std::string dump = print_kernel(fp.kernel);
  ADD_FAILURE() << "engine divergence at program " << index << " (" << phase
                << ")\n"
                << "  fast: status=" << gpusim::launch_status_name(fast.res.status)
                << " cycles=" << fast.res.cycles
                << " instr=" << fast.res.instructions
                << " simt=" << fast.res.simt_cycles << " sdc=" << fast.res.sdc_alarm
                << " ecc=" << fast.ecc_corrected << "/" << fast.ecc_uncorrectable
                << "\n  ref:  status=" << gpusim::launch_status_name(ref.res.status)
                << " cycles=" << ref.res.cycles << " instr=" << ref.res.instructions
                << " simt=" << ref.res.simt_cycles << " sdc=" << ref.res.sdc_alarm
                << " ecc=" << ref.ecc_corrected << "/" << ref.ecc_uncorrectable
                << "\n  mem equal=" << (fast.mem == ref.mem)
                << " check equal=" << (fast.check_mem == ref.check_mem)
                << " profile equal=" << (fast.exec_counts == ref.exec_counts)
                << mem_diff
                << "\n--- program ---\n"
                << dump;
  if (const char* dir = std::getenv("HAUBERK_FUZZ_DUMP_DIR"); dir && *dir) {
    std::ofstream f(std::string(dir) + "/fuzz_" + std::to_string(index) + ".kir");
    f << "# phase: " << phase << "\n" << dump;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

TEST(DifferentialFuzz, FastEngineMatchesReferenceEverywhere) {
  const std::uint64_t seed = env_u64("HAUBERK_FUZZ_SEED", 0xfa57'0001);
  const auto programs =
      static_cast<std::size_t>(env_u64("HAUBERK_FUZZ_PROGRAMS", 400));

  std::size_t ok = 0, crash = 0, hang = 0, ft_checked = 0;
  for (std::size_t i = 0; i < programs; ++i) {
    Rng rng = Rng::fork(seed, i);
    ProgramGen gen(rng);
    const FuzzProgram fp = gen.gen();
    const BytecodeProgram prog = lower(fp.kernel);

    const EngineRun fast = run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false);
    const EngineRun ref =
        run_engine(prog, fp, gpusim::ExecEngine::Reference, i, false);
    expect_identical(fast, ref, fp, i, "baseline");

    // Plain (uninstrumented) runs: the only mode in which the threaded
    // engine's superinstruction stream executes, and the mode campaigns use.
    const EngineRun pfast =
        run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false, false);
    const EngineRun pthr =
        run_engine(prog, fp, gpusim::ExecEngine::Threaded, i, false, false);
    expect_identical(pfast, pthr, fp, i, "threaded plain");

    switch (fast.res.status) {
      case gpusim::LaunchStatus::Ok: ++ok; break;
      case gpusim::LaunchStatus::Hang: ++hang; break;
      default: ++crash; break;
    }

    // FT differential on a slice of the clean programs: detectors, checksum
    // code, and the hook-driven control block must agree too.
    if (fast.res.status == gpusim::LaunchStatus::Ok && i % 7 == 0) {
      try {
        core::TranslateOptions topt;
        topt.mode = core::LibMode::FT;
        const BytecodeProgram ft = lower(core::translate(fp.kernel, topt));
        const EngineRun ffast = run_engine(ft, fp, gpusim::ExecEngine::Fast, i, true);
        const EngineRun fref =
            run_engine(ft, fp, gpusim::ExecEngine::Reference, i, true);
        expect_identical(ffast, fref, fp, i, "ft");
        // FT detectors through the fused ChkXor2/BinChkXor/RangeCheck2/
        // BinDupCmp handlers, control-block hooks included.
        const EngineRun fpfast =
            run_engine(ft, fp, gpusim::ExecEngine::Fast, i, true, false);
        const EngineRun fpthr =
            run_engine(ft, fp, gpusim::ExecEngine::Threaded, i, true, false);
        expect_identical(fpfast, fpthr, fp, i, "ft threaded plain");
        ++ft_checked;
      } catch (const std::exception&) {
        // The translator may reject exotic generated kernels; that is not an
        // engine-equivalence concern.
      }
    }
    if (::testing::Test::HasFailure()) break;  // first divergence is enough
  }

  // The generator must actually exercise the interesting regions; a fuzzer
  // that only produces clean runs proves much less.
  EXPECT_GT(ok, programs / 4) << "generator produces too few clean programs";
  EXPECT_GT(crash, 0u) << "generator never crashed a kernel";
  EXPECT_GT(ft_checked, 0u) << "no FT-instrumented program was compared";
  (void)hang;  // hangs are seed-dependent; equality is asserted per program
}

TEST(DifferentialFuzz, SanitizerAgreesOnRacyPrograms) {
  // Racy-mode corpus: the sanitizer engine must be a perfect bystander —
  // bitwise identical to Fast and Reference on every observable — while its
  // hazard reports are (a) absent on the other engines and (b) bitwise
  // reproducible across runs.  The corpus as a whole must actually tickle
  // both hazard families, or the generator has gone stale.
  const std::uint64_t seed = env_u64("HAUBERK_FUZZ_SEED", 0xfa57'0003);
  const auto programs =
      static_cast<std::size_t>(env_u64("HAUBERK_FUZZ_PROGRAMS", 400)) / 2;

  std::size_t with_race = 0, with_divergence = 0;
  for (std::size_t i = 0; i < programs; ++i) {
    Rng rng = Rng::fork(seed, i);
    ProgramGen gen(rng, /*racy=*/true);
    const FuzzProgram fp = gen.gen();
    const BytecodeProgram prog = lower(fp.kernel);

    const EngineRun fast = run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false);
    const EngineRun ref =
        run_engine(prog, fp, gpusim::ExecEngine::Reference, i, false);
    const EngineRun san =
        run_engine(prog, fp, gpusim::ExecEngine::Sanitizer, i, false);
    expect_identical(fast, ref, fp, i, "racy baseline");
    expect_identical(fast, san, fp, i, "racy sanitizer");

    // Threaded on the hazard-skewed corpus: barriers and atomics inside the
    // superinstruction stream, small-warp device.
    const EngineRun pfast =
        run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false, false);
    const EngineRun pthr =
        run_engine(prog, fp, gpusim::ExecEngine::Threaded, i, false, false);
    expect_identical(pfast, pthr, fp, i, "racy threaded plain");

    ASSERT_TRUE(fast.res.sanitizer_reports.empty());
    ASSERT_TRUE(ref.res.sanitizer_reports.empty());
    const EngineRun again =
        run_engine(prog, fp, gpusim::ExecEngine::Sanitizer, i, false);
    ASSERT_EQ(san.res.sanitizer_reports, again.res.sanitizer_reports)
        << "sanitizer reports not reproducible on fuzz program " << i;
    ASSERT_EQ(san.res.sanitizer_reports_dropped,
              again.res.sanitizer_reports_dropped);

    bool race = false, divergence = false;
    for (const auto& r : san.res.sanitizer_reports) {
      if (r.kind == gpusim::HazardKind::WriteWrite ||
          r.kind == gpusim::HazardKind::ReadWrite)
        race = true;
      if (r.kind == gpusim::HazardKind::BarrierDivergence) divergence = true;
    }
    with_race += race;
    with_divergence += divergence;
    if (::testing::Test::HasFailure()) break;
  }
  EXPECT_GT(with_race, 0u) << "racy generator never produced a shared race";
  EXPECT_GT(with_divergence, 0u) << "racy generator never diverged a barrier";
}

TEST(DifferentialFuzz, CampaignsAgreeAcrossEnginesAndWorkerCounts) {
  // Memory-fault campaigns over generated programs: the (engine x workers)
  // matrix must yield bitwise-identical per-trial outcomes.
  const std::uint64_t seed = env_u64("HAUBERK_FUZZ_SEED", 0xfa57'0002);
  using workloads::BufferJob;

  std::size_t campaigns = 0;
  for (std::size_t i = 0; campaigns < 3 && i < 64; ++i) {
    Rng rng = Rng::fork(seed, 1'000'000 + i);
    ProgramGen gen(rng);
    FuzzProgram fp = gen.gen();
    fp.mem_model = gpusim::MemoryModel::FlatGpu;
    const BytecodeProgram prog = lower(fp.kernel);

    // Only campaign on programs whose golden run completes.
    if (run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false).res.status !=
        gpusim::LaunchStatus::Ok)
      continue;
    ++campaigns;

    std::vector<std::uint32_t> input(kBufWords);
    stage_input(input, i);
    auto factory = [&fp, input] {
      swifi::WorkerContext ctx;
      gpusim::DeviceProps props;
      props.global_mem_words = 1u << 16;
      props.memory_model = fp.mem_model;
      ctx.device = std::make_unique<gpusim::Device>(props);
      std::vector<BufferJob::Buffer> bufs(2);
      bufs[0].data.assign(kBufWords, 0u);  // out
      bufs[1].data = input;                // in
      ctx.job = std::make_unique<BufferJob>(
          std::move(bufs),
          std::vector<BufferJob::Arg>{BufferJob::Arg::buf(0), BufferJob::Arg::buf(1),
                                      BufferJob::Arg::val(Value::i32(kBufWords))},
          fp.cfg, /*output_buffer=*/0, DType::F32);
      return ctx;
    };

    const workloads::Requirement req{};  // Exact
    swifi::CampaignConfig ccfg;
    ccfg.hang_floor = 20'000;

    swifi::CampaignExecutor one(1);
    const auto base = one.run_memory_faults(prog, factory, seed + i, 40, 2, req, ccfg);
    ASSERT_EQ(base.per_fault.size(), 40u);

    for (const int workers : {2, 8}) {
      swifi::CampaignExecutor ex(workers);
      const auto res = ex.run_memory_faults(prog, factory, seed + i, 40, 2, req, ccfg);
      ASSERT_EQ(res.per_fault, base.per_fault)
          << "worker count " << workers << " diverged on fuzz program " << i;
    }
    swifi::CampaignConfig rcfg = ccfg;
    rcfg.engine = gpusim::ExecEngine::Reference;
    swifi::CampaignExecutor ref_ex(4);
    const auto ref = ref_ex.run_memory_faults(prog, factory, seed + i, 40, 2, req, rcfg);
    ASSERT_EQ(ref.per_fault, base.per_fault)
        << "reference-engine campaign diverged on fuzz program " << i;

    swifi::CampaignConfig tcfg = ccfg;
    tcfg.engine = gpusim::ExecEngine::Threaded;
    swifi::CampaignExecutor thr_ex(4);
    const auto thr = thr_ex.run_memory_faults(prog, factory, seed + i, 40, 2, req, tcfg);
    ASSERT_EQ(thr.per_fault, base.per_fault)
        << "threaded-engine campaign diverged on fuzz program " << i;
  }
  EXPECT_EQ(campaigns, 3u) << "not enough clean fuzz programs for campaigns";
}

TEST(DifferentialFuzz, SanitizedCampaignsDeterministicAcrossWorkers) {
  // CampaignConfig::sanitize over racy fuzz programs: per-trial outcomes are
  // worker-count invariant, and against the unsanitized campaign each trial
  // either keeps its outcome or is reclassified into a sanitizer class.
  const std::uint64_t seed = env_u64("HAUBERK_FUZZ_SEED", 0xfa57'0004);
  using workloads::BufferJob;

  std::size_t campaigns = 0, reclassified = 0;
  for (std::size_t i = 0; campaigns < 3 && i < 64; ++i) {
    Rng rng = Rng::fork(seed, 2'000'000 + i);
    ProgramGen gen(rng, /*racy=*/true);
    const FuzzProgram fp = gen.gen();
    const BytecodeProgram prog = lower(fp.kernel);

    // Only campaign on programs whose golden run completes (divergent
    // barriers in the corpus make many of them deadlock outright).
    if (run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false).res.status !=
        gpusim::LaunchStatus::Ok)
      continue;
    ++campaigns;

    std::vector<std::uint32_t> input(kBufWords);
    stage_input(input, i);
    auto factory = [&fp, input] {
      swifi::WorkerContext ctx;
      gpusim::DeviceProps props;
      props.global_mem_words = 1u << 16;
      props.memory_model = fp.mem_model;
      props.warp_size = fp.warp_size;
      ctx.device = std::make_unique<gpusim::Device>(props);
      std::vector<BufferJob::Buffer> bufs(2);
      bufs[0].data.assign(kBufWords, 0u);  // out
      bufs[1].data = input;                // in
      ctx.job = std::make_unique<BufferJob>(
          std::move(bufs),
          std::vector<BufferJob::Arg>{BufferJob::Arg::buf(0), BufferJob::Arg::buf(1),
                                      BufferJob::Arg::val(Value::i32(kBufWords))},
          fp.cfg, /*output_buffer=*/0, DType::F32);
      return ctx;
    };

    const workloads::Requirement req{};  // Exact
    swifi::CampaignConfig plain;
    plain.hang_floor = 20'000;
    swifi::CampaignConfig sanitized = plain;
    sanitized.sanitize = true;

    swifi::CampaignExecutor one(1);
    const auto off = one.run_memory_faults(prog, factory, seed + i, 40, 2, req, plain);
    const auto on = one.run_memory_faults(prog, factory, seed + i, 40, 2, req, sanitized);
    ASSERT_EQ(off.per_fault.size(), on.per_fault.size());
    for (std::size_t t = 0; t < on.per_fault.size(); ++t) {
      if (on.per_fault[t] == swifi::Outcome::RaceDetected ||
          on.per_fault[t] == swifi::Outcome::BarrierDivergence)
        ++reclassified;
      else
        ASSERT_EQ(on.per_fault[t], off.per_fault[t])
            << "sanitize flag changed a non-hazard outcome, program " << i
            << " trial " << t;
    }

    for (const int workers : {2, 8}) {
      swifi::CampaignExecutor ex(workers);
      const auto res =
          ex.run_memory_faults(prog, factory, seed + i, 40, 2, req, sanitized);
      ASSERT_EQ(res.per_fault, on.per_fault)
          << "sanitized campaign with " << workers
          << " workers diverged on fuzz program " << i;
    }
  }
  EXPECT_EQ(campaigns, 3u) << "not enough clean racy programs for campaigns";
  EXPECT_GT(reclassified, 0u)
      << "no trial was ever reclassified as race/divergence";
}

TEST(DifferentialFuzz, EnginesAgreeUnderEccProtection) {
  // Protected-mode corpus: every program runs with a raw memory-cell upset
  // planted after staging (single data bit, check bit, or a double-bit
  // codeword) on a Hsiao SEC-DED device.  All four engines route global
  // memory through the EDC-checked load/store path (flat_arena() is empty),
  // and must stay bitwise identical on every observable — including the
  // correction counters, the EccUncorrectable status, the scrubbed data
  // arena, and the shadow check arena.
  const std::uint64_t seed = env_u64("HAUBERK_FUZZ_SEED", 0xfa57'0005);
  const auto programs =
      static_cast<std::size_t>(env_u64("HAUBERK_FUZZ_PROGRAMS", 400)) / 2;

  std::uint64_t corrected = 0;
  std::size_t uncorrectable_runs = 0;
  for (std::size_t i = 0; i < programs; ++i) {
    Rng rng = Rng::fork(seed, i);
    ProgramGen gen(rng);
    const FuzzProgram fp = gen.gen();
    const BytecodeProgram prog = lower(fp.kernel);
    constexpr auto kProt = gpusim::ecc::Scheme::Hsiao;

    const EngineRun fast =
        run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false, true, kProt);
    const EngineRun ref =
        run_engine(prog, fp, gpusim::ExecEngine::Reference, i, false, true, kProt);
    expect_identical(fast, ref, fp, i, "ecc baseline");
    const EngineRun san =
        run_engine(prog, fp, gpusim::ExecEngine::Sanitizer, i, false, true, kProt);
    expect_identical(fast, san, fp, i, "ecc sanitizer");

    const EngineRun pfast =
        run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false, false, kProt);
    const EngineRun pthr =
        run_engine(prog, fp, gpusim::ExecEngine::Threaded, i, false, false, kProt);
    expect_identical(pfast, pthr, fp, i, "ecc threaded plain");

    // Hamming spot check on a slice: same contract, different H matrix.
    if (i % 11 == 0) {
      const EngineRun hf = run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false,
                                      true, gpusim::ecc::Scheme::Hamming);
      const EngineRun hr = run_engine(prog, fp, gpusim::ExecEngine::Reference, i,
                                      false, true, gpusim::ecc::Scheme::Hamming);
      expect_identical(hf, hr, fp, i, "ecc hamming");
    }

    corrected += fast.ecc_corrected;
    uncorrectable_runs += fast.res.status == gpusim::LaunchStatus::EccUncorrectable;
    if (::testing::Test::HasFailure()) break;
  }
  // The corpus must actually exercise both halves of the SEC-DED contract.
  EXPECT_GT(corrected, 0u) << "no planted fault was ever corrected";
  EXPECT_GT(uncorrectable_runs, 0u) << "no double-bit fault was ever detected";
}

TEST(DifferentialFuzz, ProtectionNoneCampaignMatchesPinnedGoldens) {
  // Golden regression for the unprotected path: the exact per-trial outcome
  // sequence of a fixed memory-fault campaign, pinned byte for byte.  The
  // protected mode consumes extra RNG draws and reclassifies outcomes; none
  // of that may leak into protection=none campaigns, whose result logs and
  // checkpoints must stay bitwise valid across the ECC change.
  const std::uint64_t seed = 0xfa57'0002;  // deliberately not env-overridable
  using workloads::BufferJob;

  for (std::size_t i = 0; i < 64; ++i) {
    Rng rng = Rng::fork(seed, 1'000'000 + i);
    ProgramGen gen(rng);
    FuzzProgram fp = gen.gen();
    fp.mem_model = gpusim::MemoryModel::FlatGpu;
    const BytecodeProgram prog = lower(fp.kernel);
    if (run_engine(prog, fp, gpusim::ExecEngine::Fast, i, false).res.status !=
        gpusim::LaunchStatus::Ok)
      continue;

    std::vector<std::uint32_t> input(kBufWords);
    stage_input(input, i);
    auto factory = [&fp, input](gpusim::ecc::Scheme prot) {
      return [&fp, input, prot] {
        swifi::WorkerContext ctx;
        gpusim::DeviceProps props;
        props.global_mem_words = 1u << 16;
        props.memory_model = fp.mem_model;
        props.protection = prot;
        ctx.device = std::make_unique<gpusim::Device>(props);
        std::vector<BufferJob::Buffer> bufs(2);
        bufs[0].data.assign(kBufWords, 0u);  // out
        bufs[1].data = input;                // in
        ctx.job = std::make_unique<BufferJob>(
            std::move(bufs),
            std::vector<BufferJob::Arg>{BufferJob::Arg::buf(0), BufferJob::Arg::buf(1),
                                        BufferJob::Arg::val(Value::i32(kBufWords))},
            fp.cfg, /*output_buffer=*/0, DType::F32);
        return ctx;
      };
    };

    const workloads::Requirement req{};  // Exact
    swifi::CampaignConfig ccfg;
    ccfg.hang_floor = 20'000;
    swifi::CampaignExecutor one(1);
    const auto res = one.run_memory_faults(prog, factory(gpusim::ecc::Scheme::None),
                                           seed + i, 40, 2, req, ccfg);

    // Pinned from the pre-ECC harness: Masked=1, Undetected=4 (swifi::Outcome
    // values are part of the result-log format and never renumber).
    const std::uint8_t golden[40] = {
        4, 1, 4, 1, 1, 1, 4, 1, 4, 4, 1, 4, 4, 1, 1, 4, 1, 4, 4, 4,
        4, 4, 1, 1, 1, 4, 1, 1, 4, 4, 4, 4, 4, 4, 1, 4, 1, 4, 1, 4,
    };
    ASSERT_EQ(res.per_fault.size(), std::size(golden));
    for (std::size_t t = 0; t < std::size(golden); ++t)
      EXPECT_EQ(static_cast<std::uint8_t>(res.per_fault[t]), golden[t])
          << "trial " << t << " diverged from the pre-ECC golden sequence";

    // The same campaign on a Hsiao device: two-bit data faults become
    // detected-uncorrectable, check-bit singles are corrected — silent data
    // corruption and crashes must both be gone.
    swifi::CampaignConfig pcfg = ccfg;
    pcfg.protection = gpusim::ecc::Scheme::Hsiao;
    const auto prot = one.run_memory_faults(prog, factory(gpusim::ecc::Scheme::Hsiao),
                                            seed + i, 40, 2, req, pcfg);
    EXPECT_EQ(prot.counts.undetected, 0u);
    EXPECT_EQ(prot.counts.failure, 0u);
    EXPECT_GT(prot.counts.ecc_uncorrectable, 0u);
    return;  // first clean program is the pinned one
  }
  FAIL() << "no clean fuzz program found for the golden campaign";
}
