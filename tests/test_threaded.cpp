// Threaded-code engine tests: decode/emitter completeness (every kir opcode
// has a single-op translation in every engine), compiler fusion behavior on
// the real workload kernels, bitwise engine equality against the fast
// engine (complementing test_differential_fuzz's random programs and
// test_golden_outputs' pinned digests), watchdog-boundary delegation, and
// the launch-plan cache's engine-in-key behavior.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "hauberk/control_block.hpp"
#include "hauberk/runtime.hpp"
#include "kir/bytecode.hpp"
#include "kir/threaded.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::workloads;

namespace {

constexpr std::uint64_t kDatasetSeed = 20260806;

struct RunObs {
  gpusim::LaunchStatus status{};
  bool sdc = false;
  std::uint64_t cycles = 0, loop_cycles = 0, instructions = 0;
  std::vector<std::uint32_t> output;

  bool operator==(const RunObs&) const = default;
};

RunObs run_workload(Workload& w, const Dataset& ds, const kir::BytecodeProgram& prog,
                    gpusim::ExecEngine engine, gpusim::LaunchHooks* hooks,
                    std::uint64_t watchdog = 50'000'000) {
  gpusim::Device dev;
  dev.set_engine(engine);
  auto job = w.make_job(ds);
  const auto args = job->setup(dev);
  gpusim::LaunchOptions opts;
  opts.hooks = hooks;
  opts.watchdog_instructions = watchdog;
  const auto res = dev.launch(prog, job->config(), args, opts);
  RunObs o;
  o.status = res.status;
  o.sdc = res.sdc_alarm;
  o.cycles = res.cycles;
  o.loop_cycles = res.loop_cycles;
  o.instructions = res.instructions;
  if (res.status == gpusim::LaunchStatus::Ok) o.output = job->read_output(dev).words;
  return o;
}

std::vector<std::unique_ptr<Workload>> all_workloads() {
  std::vector<std::unique_ptr<Workload>> all;
  for (auto& w : hpc_suite()) all.push_back(std::move(w));
  for (auto& w : graphics_suite()) all.push_back(std::move(w));
  for (auto& w : cpu_suite()) all.push_back(std::move(w));
  all.push_back(make_cpu_matmul());
  return all;
}

}  // namespace

// Every DecodedOp has a threaded single-op mirror at the same numeric value
// with a real name, and compile_threaded translates every one of them —
// adding an opcode without wiring the threaded engine fails here, not at
// fuzz time.
TEST(Threaded, EveryDecodedOpHasAThreadedEmitter) {
  using kir::DecodedOp;
  using kir::TOp;
  const auto n_single = static_cast<std::uint8_t>(DecodedOp::Invalid) + 1;
  ASSERT_EQ(n_single, kir::kTOpFusedBegin);
  kir::DecodedProgram d;
  for (std::uint8_t v = 0; v < n_single; ++v) {
    const auto op = static_cast<DecodedOp>(v);
    const TOp top = kir::threaded_single_op(op);
    EXPECT_EQ(static_cast<std::uint8_t>(top), v);
    EXPECT_FALSE(kir::top_is_fused(top));
    EXPECT_STRNE(kir::top_name(top), "?") << "unnamed TOp " << int(v);
    // Nop separators prevent any fusion pattern from matching, so with run
    // formation off the compiled stream must be the identity translation,
    // slot for slot.
    kir::DecodedInstr in;
    in.op = op;
    d.code.push_back(in);
    d.code.push_back(kir::DecodedInstr{});  // Nop
    d.code.push_back(kir::DecodedInstr{});  // Nop
  }
  const kir::ThreadedProgram tp = kir::compile_threaded(d, 8, true, /*form_runs=*/false);
  ASSERT_EQ(tp.code.size(), d.code.size());
  EXPECT_EQ(tp.fused_heads, 0u);
  for (std::size_t pc = 0; pc < d.code.size(); ++pc) {
    EXPECT_EQ(tp.code[pc].op, static_cast<std::uint8_t>(d.code[pc].op)) << "pc " << pc;
    EXPECT_EQ(tp.code[pc].len, 1) << "pc " << pc;
  }
  // Every fused opcode has a name too (the dispatch table is fully wired).
  for (unsigned v = kir::kTOpFusedBegin; v < kir::kNumTOps; ++v) {
    EXPECT_TRUE(kir::top_is_fused(static_cast<TOp>(v)));
    EXPECT_STRNE(kir::top_name(static_cast<TOp>(v)), "?") << "unnamed fused TOp " << v;
  }
}

// The threaded engine must be bitwise identical to the fast engine on every
// workload, base and FT variants, including cycle/instruction totals.
TEST(Threaded, MatchesFastEngineOnAllWorkloads) {
  for (auto& w : all_workloads()) {
    const Dataset ds = w->make_dataset(kDatasetSeed, Scale::Tiny);
    auto v = core::build_variants(w->build_kernel(Scale::Tiny));

    const RunObs base_fast = run_workload(*w, ds, v.baseline, gpusim::ExecEngine::Fast, nullptr);
    const RunObs base_thr =
        run_workload(*w, ds, v.baseline, gpusim::ExecEngine::Threaded, nullptr);
    EXPECT_EQ(base_fast, base_thr) << w->name() << " baseline";

    core::ControlBlock cb_fast(v.ft);
    const RunObs ft_fast = run_workload(*w, ds, v.ft, gpusim::ExecEngine::Fast, &cb_fast);
    core::ControlBlock cb_thr(v.ft);
    const RunObs ft_thr = run_workload(*w, ds, v.ft, gpusim::ExecEngine::Threaded, &cb_thr);
    EXPECT_EQ(ft_fast, ft_thr) << w->name() << " FT";
  }
}

// Watchdog boundaries must land on the same instruction with the same
// partial cycle charge in both engines — including budgets that expire in
// the *middle* of a fused region, where the threaded engine delegates to
// the single-op stream.  Sweep a window of budgets around full completion
// and a window of tiny budgets (mid-loop-head boundaries).
TEST(Threaded, WatchdogBoundariesMatchFastEngine) {
  auto workloads = all_workloads();
  ASSERT_FALSE(workloads.empty());
  Workload& w = *workloads.front();  // CP: flat memory, dense loop fusion
  const Dataset ds = w.make_dataset(kDatasetSeed, Scale::Tiny);
  auto v = core::build_variants(w.build_kernel(Scale::Tiny));

  const RunObs full = run_workload(w, ds, v.baseline, gpusim::ExecEngine::Fast, nullptr);
  ASSERT_EQ(full.status, gpusim::LaunchStatus::Ok);

  std::vector<std::uint64_t> budgets;
  for (std::uint64_t b = 1; b <= 40; ++b) budgets.push_back(b);
  for (std::uint64_t b = 90; b <= 130; ++b) budgets.push_back(b);
  for (auto b : budgets) {
    const RunObs f = run_workload(w, ds, v.baseline, gpusim::ExecEngine::Fast, nullptr, b);
    const RunObs t = run_workload(w, ds, v.baseline, gpusim::ExecEngine::Threaded, nullptr, b);
    EXPECT_EQ(f, t) << "watchdog " << b;
  }
}

// The workload kernels' hot idioms must actually fuse — this pins the
// compiler's coverage so a lowering change that silently defeats fusion
// (and the engine's speed) is caught by a test, not a benchmark regression.
TEST(Threaded, WorkloadKernelsFuseTheirLoops) {
  for (auto& w : all_workloads()) {
    auto v = core::build_variants(w->build_kernel(Scale::Tiny));
    gpusim::Device dev;
    const auto plan_costs = std::vector<std::uint32_t>(v.baseline.code.size(), 1);
    const kir::DecodedProgram d = kir::decode_program(v.baseline, plan_costs);
    const kir::ThreadedProgram tp = kir::compile_threaded(d, v.baseline.num_slots, true);
    EXPECT_GT(tp.fused_heads, 0u) << w->name();
    // Every kernel in the suites is loop-based: the canonical Const/Cmp/Jz
    // head and the back-edge must both fuse.  (cpu-linkedlist is the one
    // exception for the head: its exit test is `cur != 0 && steps < n`, so
    // the Jz consumes a LAndW, not a compare.)
    const auto fam = [&](kir::FuseFamily f) {
      return tp.fuse_counts[static_cast<std::size_t>(f)];
    };
    if (w->name() != "cpu-linkedlist") {
      EXPECT_GT(fam(kir::FuseFamily::ConstCmpJz) + fam(kir::FuseFamily::CmpJz), 0u)
          << w->name();
    }
    EXPECT_GT(fam(kir::FuseFamily::ConstAddJmp) + fam(kir::FuseFamily::AddJmp), 0u)
        << w->name();
    // Every kernel body has at least one straight-line region long enough
    // to compile as a zero-accounting run.
    EXPECT_GT(tp.run_heads, 0u) << w->name();
  }
}

// Run formation on a synthetic straight line: one RunHead charging the
// whole region, naked interiors, and suffix-refund fields on crashable ops.
TEST(Threaded, StraightLineCompilesToRun) {
  using kir::DecodedOp;
  using kir::TOp;
  kir::DecodedProgram d;
  auto push = [&](DecodedOp op, std::uint32_t cost) {
    kir::DecodedInstr in;
    in.op = op;
    in.cost = cost;
    d.code.push_back(in);
  };
  push(DecodedOp::Mov, 1);     // head (non-crashing single)
  push(DecodedOp::AddW, 2);    // naked
  push(DecodedOp::LoadG, 3);   // naked crashable -> refund fields
  push(DecodedOp::MulF, 4);    // naked
  push(DecodedOp::Halt, 1);    // terminator, outside the run
  const kir::ThreadedProgram tp = kir::compile_threaded(d, 8, true);
  ASSERT_EQ(tp.run_heads, 1u);
  EXPECT_EQ(tp.run_covered, 4u);
  EXPECT_EQ(tp.code[0].op, static_cast<std::uint16_t>(TOp::RunHead));
  EXPECT_EQ(tp.code[0].d, static_cast<std::uint16_t>(TOp::Nk_Mov));
  EXPECT_EQ(tp.code[0].len, 4);
  EXPECT_EQ(tp.code[0].cost, 1u + 2u + 3u + 4u);
  // [AddW][LoadG] tiles into a single naked pair; the LoadG is the crashable
  // sub-op, so the tile's refund fields cover the suffix after it (MulF).
  EXPECT_EQ(tp.code[1].op, static_cast<std::uint16_t>(TOp::NkBinLoad_AddW));
  EXPECT_EQ(tp.code[1].len, 1);    // one op (MulF) after the load in the run
  EXPECT_EQ(tp.code[1].cost, 4u);  // its cost, refunded if the load crashes
  EXPECT_EQ(tp.code[3].op, static_cast<std::uint16_t>(TOp::Nk_MulF));
  EXPECT_EQ(tp.code[4].op, static_cast<std::uint16_t>(TOp::Halt));
}

// Flipping engines on a live device mid-campaign must never serve a plan
// compiled for the previous engine: the engine kind is part of the plan
// cache key, so each engine's first launch misses and later launches hit.
TEST(Threaded, EngineFlipMidCampaignNeverServesStalePlan) {
  auto workloads = all_workloads();
  Workload& w = *workloads.front();
  const Dataset ds = w.make_dataset(kDatasetSeed, Scale::Tiny);
  auto v = core::build_variants(w.build_kernel(Scale::Tiny));

  gpusim::Device dev;
  auto job = w.make_job(ds);
  const auto args = job->setup(dev);

  RunObs per_engine[2];
  const gpusim::ExecEngine seq[] = {gpusim::ExecEngine::Fast, gpusim::ExecEngine::Threaded,
                                    gpusim::ExecEngine::Fast, gpusim::ExecEngine::Threaded,
                                    gpusim::ExecEngine::Threaded, gpusim::ExecEngine::Fast};
  for (const auto engine : seq) {
    dev.set_engine(engine);
    dev.reset_memory();
    job->setup(dev);
    const auto res = dev.launch(v.baseline, job->config(), args, {});
    ASSERT_EQ(res.status, gpusim::LaunchStatus::Ok);
    RunObs o;
    o.status = res.status;
    o.sdc = res.sdc_alarm;
    o.cycles = res.cycles;
    o.loop_cycles = res.loop_cycles;
    o.instructions = res.instructions;
    o.output = job->read_output(dev).words;
    RunObs& pinned = per_engine[engine == gpusim::ExecEngine::Threaded];
    if (pinned.output.empty())
      pinned = o;
    else
      EXPECT_EQ(pinned, o) << gpusim::exec_engine_name(engine);
  }
  // Both engines observed identical results...
  EXPECT_EQ(per_engine[0], per_engine[1]);
  // ...and the cache missed exactly once per engine kind (4 of the 6
  // launches hit).
  EXPECT_EQ(dev.plan_cache_misses(), 2u);
  EXPECT_EQ(dev.plan_cache_hits(), 4u);
}
