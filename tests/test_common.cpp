// Unit tests for src/common: RNG determinism, bit utilities, statistics.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>

#include "common/bitops.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace hc = hauberk::common;

TEST(Rng, DeterministicFromSeed) {
  hc::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  hc::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  hc::Rng a = hc::Rng::fork(7, 0);
  hc::Rng b = hc::Rng::fork(7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  hc::Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_below(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  hc::Rng r(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  hc::Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  hc::Rng r(12);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  hc::Rng r(13);
  hc::RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

// --- bitops ---

class RandomMaskPopcount : public ::testing::TestWithParam<int> {};

TEST_P(RandomMaskPopcount, HasExactPopcount) {
  const int bits = GetParam();
  hc::Rng r(100 + static_cast<std::uint64_t>(bits));
  for (int i = 0; i < 500; ++i) {
    const auto m = hc::random_mask(r, bits);
    EXPECT_EQ(std::popcount(m), bits) << "mask=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperErrorBitCounts, RandomMaskPopcount,
                         ::testing::Values(1, 3, 6, 10, 15, 32));

TEST(Bitops, MaskZeroBitsIsZero) {
  hc::Rng r(5);
  EXPECT_EQ(hc::random_mask(r, 0), 0u);
}

TEST(Bitops, MasksVary) {
  hc::Rng r(6);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(hc::random_mask(r, 3));
  EXPECT_GT(seen.size(), 50u);
}

TEST(Bitops, ApplyMaskTwiceIsIdentity) {
  hc::Rng r(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t w = r.next_u32();
    const std::uint32_t m = hc::random_mask(r, 6);
    EXPECT_EQ(hc::apply_mask(hc::apply_mask(w, m), m), w);
  }
}

TEST(Bitops, FloatBitsRoundTrip) {
  EXPECT_EQ(hc::bits_f32(hc::f32_bits(3.25f)), 3.25f);
  EXPECT_EQ(hc::bits_f32(hc::f32_bits(-0.0f)), -0.0f);
}

TEST(Bitops, MagnitudeDecadeBasics) {
  EXPECT_EQ(hc::magnitude_decade(1000.0, -15, 15), 3);
  EXPECT_EQ(hc::magnitude_decade(-999.0, -15, 15), 2);
  EXPECT_EQ(hc::magnitude_decade(0.0, -15, 15), -15);
  EXPECT_EQ(hc::magnitude_decade(1e30, -15, 15), 15);
  EXPECT_EQ(hc::magnitude_decade(std::numeric_limits<double>::infinity(), -15, 15), 15);
}

// --- stats ---

TEST(RunningStats, MeanAndVariance) {
  hc::RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(DecadeHistogram, BucketsSignedDecades) {
  hc::DecadeHistogram h(-3, 3, 1e-5);
  h.add(150.0);    // decade 2, positive
  h.add(-0.02);    // decade -2, negative
  h.add(1e-9);     // zero band
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(h.bucket_index(100.0)), 1u);
  EXPECT_EQ(h.count(h.bucket_index(-0.05)), 1u);
  EXPECT_EQ(h.count(h.bucket_index(0.0)), 1u);
}

TEST(DecadeHistogram, LabelsAreReadable) {
  hc::DecadeHistogram h(-2, 2);
  EXPECT_EQ(h.bucket_label(h.bucket_index(0.0)), "0");
  EXPECT_EQ(h.bucket_label(h.bucket_index(150.0)), "1.0E+02");
  EXPECT_EQ(h.bucket_label(h.bucket_index(-150.0)), "-1.0E+02");
}

TEST(DecadeHistogram, PeakProbability) {
  hc::DecadeHistogram h(-3, 3);
  for (int i = 0; i < 8; ++i) h.add(10.0);
  h.add(1e3);
  h.add(-1.0);
  EXPECT_DOUBLE_EQ(h.peak_probability(), 0.8);
}

TEST(Pct, SafeOnZeroDenominator) {
  EXPECT_EQ(hc::pct(1, 0), 0.0);
  EXPECT_EQ(hc::pct(1, 4), 25.0);
}

// --- cli ---

TEST(CliArgs, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=2.5", "--n", "17", "--flag", "--seed=0x10"};
  hc::CliArgs args(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0), 2.5);
  EXPECT_EQ(args.get_int("n", 0), 17);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get_u64("seed", 0), 16u);
  EXPECT_EQ(args.get_int("missing", -1), -1);
  EXPECT_TRUE(args.ok());
}

TEST(CliArgs, BadIntegerFallsBackToDefaultAndRecordsError) {
  const char* argv[] = {"prog", "--workers=abc", "--n=12x", "--seed=0xzz", "--alpha=nan?"};
  hc::CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("workers", 4), 4);
  EXPECT_EQ(args.get_int("n", -1), -1);
  EXPECT_EQ(args.get_u64("seed", 9), 9u);
  EXPECT_EQ(args.get_double("alpha", 1.5), 1.5);
  EXPECT_FALSE(args.ok());
  ASSERT_EQ(args.errors().size(), 4u);
  EXPECT_NE(args.errors()[0].find("--workers"), std::string::npos);
  EXPECT_NE(args.errors()[0].find("abc"), std::string::npos);
}

TEST(CliArgs, PartiallyNumericValuesAreRejectedNotTruncated) {
  // strtoll would silently stop at the first bad character; the strict
  // parser must reject the whole value instead.
  const char* argv[] = {"prog", "--n=17crash"};
  hc::CliArgs args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("n", 3), 3);
  EXPECT_FALSE(args.ok());
}

TEST(CliArgs, UnknownFlagsAreDetected) {
  const char* argv[] = {"prog", "--workers=2", "--sanitize", "--wrokers=4"};
  hc::CliArgs args(4, const_cast<char**>(argv));
  const auto unknown = args.unknown_flags({"workers", "sanitize", "datasets"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "wrokers");
  EXPECT_TRUE(args.unknown_flags({"workers", "sanitize", "wrokers"}).empty());
}

TEST(CampaignFlags, ParsesSharedFlagsWithDefaults) {
  const char* argv[] = {"prog", "--workers=3", "--sanitize"};
  hc::CliArgs args(3, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args, /*default_datasets=*/52);
  EXPECT_EQ(f.workers, 3);
  EXPECT_TRUE(f.sanitize);
  EXPECT_EQ(f.datasets, 52);
  EXPECT_EQ(f.sanitize_cap, 64) << "default: SharedShadow::kMaxReportsPerBlock";
  EXPECT_TRUE(args.ok());
}

TEST(CampaignFlags, ParsesSanitizeCap) {
  const char* argv[] = {"prog", "--sanitize-cap=8"};
  hc::CliArgs args(2, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_EQ(f.sanitize_cap, 8);
  EXPECT_TRUE(args.ok());
}

TEST(CampaignFlags, RejectsNonPositiveSanitizeCap) {
  const char* argv[] = {"prog", "--sanitize-cap=0"};
  hc::CliArgs args(2, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_EQ(f.sanitize_cap, 64) << "out-of-range cap falls back to the default";
  ASSERT_EQ(args.errors().size(), 1u);
  EXPECT_NE(args.errors()[0].find("--sanitize-cap"), std::string::npos);
}

TEST(CampaignFlags, ParsesEveryEngineName) {
  const struct {
    const char* text;
    hc::EngineKind kind;
  } cases[] = {{"reference", hc::EngineKind::Reference},
               {"fast", hc::EngineKind::Fast},
               {"sanitizer", hc::EngineKind::Sanitizer},
               {"threaded", hc::EngineKind::Threaded}};
  for (const auto& c : cases) {
    const std::string flag = std::string("--engine=") + c.text;
    const char* argv[] = {"prog", flag.c_str()};
    hc::CliArgs args(2, const_cast<char**>(argv));
    const auto f = hc::parse_campaign_flags(args);
    EXPECT_EQ(f.engine, c.kind) << c.text;
    EXPECT_TRUE(args.ok()) << c.text;
    EXPECT_STREQ(hc::engine_kind_name(f.engine), c.text);
  }
}

TEST(CampaignFlags, DefaultsToFastEngine) {
  const char* argv[] = {"prog"};
  hc::CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(hc::parse_campaign_flags(args).engine, hc::EngineKind::Fast);
}

TEST(CampaignFlags, RejectsUnknownEngine) {
  const char* argv[] = {"prog", "--engine=warpspeed"};
  hc::CliArgs args(2, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_EQ(f.engine, hc::EngineKind::Fast) << "bad value falls back to the default";
  ASSERT_EQ(args.errors().size(), 1u);
  EXPECT_NE(args.errors()[0].find("--engine"), std::string::npos);
  EXPECT_NE(args.errors()[0].find("warpspeed"), std::string::npos);
}

TEST(CampaignFlags, RejectsOutOfRangeValues) {
  const char* argv[] = {"prog", "--workers=-2", "--datasets=0"};
  hc::CliArgs args(3, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args, /*default_datasets=*/10);
  EXPECT_EQ(f.workers, 0) << "negative workers fall back to hardware concurrency";
  EXPECT_EQ(f.datasets, 10) << "datasets < 1 falls back to the tool default";
  EXPECT_FALSE(f.sanitize);
  ASSERT_EQ(args.errors().size(), 2u);
  EXPECT_NE(args.errors()[0].find("--workers"), std::string::npos);
  EXPECT_NE(args.errors()[1].find("--datasets"), std::string::npos);
}

TEST(CampaignFlags, MalformedWorkerCountSurfacesTheParseError) {
  const char* argv[] = {"prog", "--workers=two"};
  hc::CliArgs args(2, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_EQ(f.workers, 0);
  EXPECT_FALSE(args.ok());
}

// --- table (smoke) ---

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(hc::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(hc::Table::pct_cell(12.345, 1), "12.3%");
}

TEST(ParseShards, AcceptsCountAndCountSlashIndex) {
  int k = -1, i = -1;
  EXPECT_TRUE(hc::parse_shards("4", k, i));
  EXPECT_EQ(k, 4);
  EXPECT_EQ(i, 0);
  EXPECT_TRUE(hc::parse_shards("4/3", k, i));
  EXPECT_EQ(k, 4);
  EXPECT_EQ(i, 3);
  EXPECT_TRUE(hc::parse_shards("1/0", k, i));
  EXPECT_EQ(k, 1);
  EXPECT_EQ(i, 0);
}

TEST(ParseShards, RejectsMalformedAndOutOfRange) {
  int k = 7, i = 5;
  for (const char* bad : {"", "/", "0", "0/0", "4/4", "4/5", "4/-1", "-2/0", "a/b", "4/",
                          "/2", "4/2/1", "4x", " 4/1", "4/ 1"}) {
    EXPECT_FALSE(hc::parse_shards(bad, k, i)) << "'" << bad << "' must be rejected";
    EXPECT_EQ(k, 7) << "'" << bad << "' must leave outputs untouched";
    EXPECT_EQ(i, 5) << "'" << bad << "' must leave outputs untouched";
  }
}

TEST(CampaignFlags, ParsesShardingAndCheckpointKnobs) {
  const char* argv[] = {"prog",          "--shards=4/2",         "--checkpoint=c.ckpt",
                        "--checkpoint-every=500", "--resultlog=r.log"};
  hc::CliArgs args(5, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_TRUE(args.ok());
  EXPECT_EQ(f.shards, 4);
  EXPECT_EQ(f.shard_index, 2);
  EXPECT_EQ(f.checkpoint, "c.ckpt");
  EXPECT_EQ(f.checkpoint_every, 500u);
  EXPECT_EQ(f.resultlog, "r.log");
  EXPECT_TRUE(f.resume.empty());
}

TEST(CampaignFlags, ResumeImpliesCheckpointPath) {
  const char* argv[] = {"prog", "--resume=old.ckpt", "--checkpoint-every=100"};
  hc::CliArgs args(3, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_TRUE(args.ok());
  EXPECT_EQ(f.resume, "old.ckpt");
  EXPECT_EQ(f.checkpoint, "old.ckpt") << "--resume doubles as the checkpoint path";

  const char* argv2[] = {"prog", "--resume=old.ckpt", "--checkpoint=new.ckpt"};
  hc::CliArgs args2(3, const_cast<char**>(argv2));
  const auto f2 = hc::parse_campaign_flags(args2);
  EXPECT_EQ(f2.checkpoint, "new.ckpt") << "--checkpoint overrides the resume path";
}

TEST(CampaignFlags, CheckpointEveryWithoutPathIsAnError) {
  const char* argv[] = {"prog", "--checkpoint-every=100"};
  hc::CliArgs args(2, const_cast<char**>(argv));
  (void)hc::parse_campaign_flags(args);
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.errors()[0].find("--checkpoint-every"), std::string::npos);
}

TEST(CampaignFlags, MalformedShardsRecordsError) {
  const char* argv[] = {"prog", "--shards=3/9"};
  hc::CliArgs args(2, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_EQ(f.shards, 1) << "malformed --shards falls back to the default";
  EXPECT_EQ(f.shard_index, 0);
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.errors()[0].find("--shards"), std::string::npos);
}

TEST(ParseBudget, AcceptsPercentAndAbsoluteCycles) {
  double pct = -7.0;
  std::uint64_t cycles = 99;
  EXPECT_TRUE(hc::parse_budget("10%", pct, cycles));
  EXPECT_DOUBLE_EQ(pct, 10.0);
  EXPECT_EQ(cycles, 0u);
  EXPECT_TRUE(hc::parse_budget("0%", pct, cycles));
  EXPECT_DOUBLE_EQ(pct, 0.0);
  EXPECT_TRUE(hc::parse_budget("100%", pct, cycles));
  EXPECT_DOUBLE_EQ(pct, 100.0);
  EXPECT_TRUE(hc::parse_budget("2.5%", pct, cycles));
  EXPECT_DOUBLE_EQ(pct, 2.5);
  EXPECT_TRUE(hc::parse_budget("250000", pct, cycles));
  EXPECT_EQ(cycles, 250000u);
  EXPECT_DOUBLE_EQ(pct, -1.0) << "absolute budgets clear the percent form";
  EXPECT_TRUE(hc::parse_budget("0", pct, cycles));
  EXPECT_EQ(cycles, 0u);
}

TEST(ParseBudget, RejectsMalformedNegativeAndOverOneHundredPercent) {
  for (const char* bad : {"", "%", "-5%", "+10%", "100.1%", "101%", "abc", "5%%", "5 %",
                          "ten%", "-3", "+7", "4.5", "0x10", "12px"}) {
    double pct = 42.0;
    std::uint64_t cycles = 77;
    EXPECT_FALSE(hc::parse_budget(bad, pct, cycles)) << "'" << bad << "' must be rejected";
    EXPECT_DOUBLE_EQ(pct, 42.0) << "'" << bad << "' must leave outputs untouched";
    EXPECT_EQ(cycles, 77u) << "'" << bad << "' must leave outputs untouched";
  }
}

TEST(CampaignFlags, ParsesBudgetAndPlan) {
  const char* argv[] = {"prog", "--budget=20%", "--plan=tuned.plan"};
  hc::CliArgs args(3, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_TRUE(args.ok());
  EXPECT_DOUBLE_EQ(f.budget_pct, 20.0);
  EXPECT_EQ(f.budget_cycles, 0u);
  EXPECT_EQ(f.plan, "tuned.plan");

  const char* argv2[] = {"prog", "--budget=5000"};
  hc::CliArgs args2(2, const_cast<char**>(argv2));
  const auto f2 = hc::parse_campaign_flags(args2);
  EXPECT_TRUE(args2.ok());
  EXPECT_DOUBLE_EQ(f2.budget_pct, -1.0);
  EXPECT_EQ(f2.budget_cycles, 5000u);
}

TEST(CampaignFlags, BudgetDefaultsOffAndMalformedBudgetRecordsError) {
  const char* argv[] = {"prog"};
  hc::CliArgs args(1, const_cast<char**>(argv));
  const auto f = hc::parse_campaign_flags(args);
  EXPECT_DOUBLE_EQ(f.budget_pct, -1.0) << "no --budget means no budget";
  EXPECT_EQ(f.budget_cycles, 0u);
  EXPECT_TRUE(f.plan.empty());

  const char* argv2[] = {"prog", "--budget=110%"};
  hc::CliArgs args2(2, const_cast<char**>(argv2));
  (void)hc::parse_campaign_flags(args2);
  ASSERT_FALSE(args2.ok());
  EXPECT_NE(args2.errors()[0].find("--budget"), std::string::npos);
  EXPECT_NE(args2.errors()[0].find("110%"), std::string::npos);
}

TEST(Log2Histogram, BucketsByBitWidth) {
  hc::Log2Histogram h;
  h.add(0);     // bucket 0
  h.add(1);     // bucket 1: [1, 2)
  h.add(2);     // bucket 2: [2, 4)
  h.add(3);     // bucket 2
  h.add(1024);  // bucket 11
  h.add(~0ull); // bucket 64
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(11), 1u);
  EXPECT_EQ(h.count(64), 1u);
  EXPECT_EQ(h.used_buckets(), hc::Log2Histogram::kBuckets);
}

TEST(Log2Histogram, MergeIsCommutative) {
  hc::Log2Histogram a, b;
  for (std::uint64_t v : {0ull, 5ull, 100ull, 1ull << 40}) a.add(v);
  for (std::uint64_t v : {7ull, 7ull, 255ull}) b.add(v);
  hc::Log2Histogram ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.total(), 7u);
}

TEST(Log2Histogram, RawCountsRestoreRoundTrip) {
  hc::Log2Histogram h;
  for (std::uint64_t v = 0; v < 1000; ++v) h.add(v * v);
  hc::Log2Histogram back;
  back.restore(h.raw_counts());
  EXPECT_TRUE(back == h);
  EXPECT_EQ(back.total(), h.total());
}
