// Workload validation: every benchmark kernel, run fault-free on the
// simulated GPU, must reproduce its native golden implementation; datasets
// must be deterministic per seed and distinct across seeds; correctness
// requirements must accept the golden run.
#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/device.hpp"
#include "kir/analysis.hpp"
#include "kir/bytecode.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::workloads;

namespace {

std::vector<std::unique_ptr<Workload>> all_workloads() {
  auto v = hpc_suite();
  for (auto& g : graphics_suite()) v.push_back(std::move(g));
  return v;
}

std::vector<std::string> all_names() {
  std::vector<std::string> n;
  for (const auto& w : all_workloads()) n.push_back(w->name());
  return n;
}

std::unique_ptr<Workload> by_name(const std::string& name) {
  for (auto& w : all_workloads())
    if (w->name() == name) return std::move(w);
  return nullptr;
}

core::ProgramOutput run_baseline(Workload& w, const Dataset& ds, gpusim::Device& dev) {
  const auto prog = kir::lower(w.build_kernel(Scale::Tiny));
  auto job = w.make_job(ds);
  const auto args = job->setup(dev);
  const auto res = dev.launch(prog, job->config(), args);
  EXPECT_EQ(res.status, gpusim::LaunchStatus::Ok) << w.name();
  return job->read_output(dev);
}

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

}  // namespace

TEST_P(WorkloadSuite, SimulatorMatchesNativeGolden) {
  auto w = by_name(GetParam());
  ASSERT_NE(w, nullptr);
  const Dataset ds = w->make_dataset(1, Scale::Tiny);
  gpusim::Device dev;
  const auto out = run_baseline(*w, ds, dev);
  const auto gold = w->golden_native(ds);
  ASSERT_EQ(out.size(), gold.size()) << w->name();
  for (std::size_t i = 0; i < gold.size(); ++i) {
    const double g = gold[i];
    const double tol = w->is_integer_program() ? 0.0 : 1e-4 * std::max(1.0, std::fabs(g));
    EXPECT_NEAR(out.element(i), g, tol) << w->name() << " element " << i;
  }
}

TEST_P(WorkloadSuite, GoldenRunSatisfiesRequirement) {
  auto w = by_name(GetParam());
  const Dataset ds = w->make_dataset(2, Scale::Tiny);
  gpusim::Device dev;
  const auto out = run_baseline(*w, ds, dev);
  EXPECT_TRUE(w->requirement().satisfied(out, out));
}

TEST_P(WorkloadSuite, DatasetsDeterministicPerSeed) {
  auto w = by_name(GetParam());
  const Dataset a = w->make_dataset(7, Scale::Tiny);
  const Dataset b = w->make_dataset(7, Scale::Tiny);
  EXPECT_EQ(a.fa, b.fa);
  EXPECT_EQ(a.ia, b.ia);
  EXPECT_EQ(a.n, b.n);
}

TEST_P(WorkloadSuite, DatasetsDistinctAcrossSeeds) {
  auto w = by_name(GetParam());
  const Dataset a = w->make_dataset(7, Scale::Tiny);
  const Dataset b = w->make_dataset(8, Scale::Tiny);
  EXPECT_TRUE(a.fa != b.fa || a.ia != b.ia);
}

TEST_P(WorkloadSuite, KernelHasAtLeastOneLoop) {
  auto w = by_name(GetParam());
  const auto k = w->build_kernel(Scale::Tiny);
  EXPECT_GT(k.num_loops, 0u) << w->name();
}

TEST_P(WorkloadSuite, ScalesIncreaseWork) {
  auto w = by_name(GetParam());
  const Dataset tiny = w->make_dataset(1, Scale::Tiny);
  const Dataset small = w->make_dataset(1, Scale::Small);
  EXPECT_LE(tiny.threads, small.threads);
  EXPECT_LE(tiny.n, small.n);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, WorkloadSuite, ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// --- program-specific structural facts the paper relies on ---

TEST(Tpacf, UsesMoreThanHalfOfSharedMemory) {
  auto w = make_tpacf();
  const auto k = w->build_kernel(Scale::Small);
  gpusim::DeviceProps props;
  EXPECT_GT(k.shared_mem_words * 2, props.shared_mem_words)
      << "TPACF must exceed shared memory when duplicated (R-Scatter failure)";
  EXPECT_LE(k.shared_mem_words, props.shared_mem_words);
}

TEST(Cp, EnergyVariablesAreSelfAccumulating) {
  auto w = make_cp();
  const auto k = w->build_kernel(Scale::Tiny);
  kir::Analysis an(k);
  ASSERT_EQ(an.loops().size(), 1u);
  const auto sa = an.self_accumulators(0);
  EXPECT_EQ(sa.size(), 2u);  // energyx1, energyx2
}

TEST(Pns, IsIntegerProgram) {
  EXPECT_TRUE(make_pns()->is_integer_program());
  EXPECT_TRUE(make_sad()->is_integer_program());
  EXPECT_FALSE(make_cp()->is_integer_program());
}

TEST(Graphics, FlaggedAsGraphics) {
  EXPECT_TRUE(make_ocean()->is_graphics());
  EXPECT_TRUE(make_raytrace()->is_graphics());
  EXPECT_FALSE(make_mri_q()->is_graphics());
}

TEST(Requirement, GraphicsToleratesOneCorruptPixel) {
  // Observation: a transient fault corrupting one pixel of one frame is not
  // user-noticeable (Fig. 3(a)).
  auto w = make_ocean();
  const Dataset ds = w->make_dataset(3, Scale::Small);
  gpusim::Device dev;
  auto out = run_baseline(*w, ds, dev);
  auto corrupted = out;
  corrupted.words[5] ^= 0x00400000u;  // flip an exponent bit of one pixel
  EXPECT_TRUE(w->requirement().satisfied(corrupted, out));
}

TEST(Requirement, GraphicsRejectsStripeCorruption) {
  // An intermittent fault corrupting thousands of values is noticeable
  // (Fig. 3(b)).
  auto w = make_ocean();
  const Dataset ds = w->make_dataset(3, Scale::Small);
  gpusim::Device dev;
  auto out = run_baseline(*w, ds, dev);
  auto corrupted = out;
  for (std::size_t i = 0; i < corrupted.words.size() / 4; ++i)
    corrupted.words[i * 2] ^= 0x00400000u;
  EXPECT_FALSE(w->requirement().satisfied(corrupted, out));
}

TEST(Requirement, ExactRejectsAnyChange) {
  Requirement r;
  r.kind = Requirement::Kind::Exact;
  core::ProgramOutput a{kir::DType::I32, {1, 2, 3}};
  auto b = a;
  EXPECT_TRUE(r.satisfied(a, b));
  b.words[1] ^= 1;
  EXPECT_FALSE(r.satisfied(a, b));
}

TEST(Requirement, AbsRelFloor) {
  Requirement r;  // PNS: Max{0.01, 1%|GRi|}
  r.kind = Requirement::Kind::AbsRel;
  r.abs_floor = 0.01;
  r.rel = 0.01;
  core::ProgramOutput gold{kir::DType::F32, {kir::Value::f32(100.0f).bits}};
  core::ProgramOutput ok{kir::DType::F32, {kir::Value::f32(100.9f).bits}};
  core::ProgramOutput bad{kir::DType::F32, {kir::Value::f32(102.0f).bits}};
  EXPECT_TRUE(r.satisfied(ok, gold));
  EXPECT_FALSE(r.satisfied(bad, gold));
}

TEST(Requirement, NaNOutputViolates) {
  Requirement r;
  r.kind = Requirement::Kind::RelPlusEps;
  r.rel = 0.02;
  r.eps = 1e-9;
  core::ProgramOutput gold{kir::DType::F32, {kir::Value::f32(1.0f).bits}};
  core::ProgramOutput bad{kir::DType::F32, {kir::Value::f32(std::nanf("")).bits}};
  EXPECT_FALSE(r.satisfied(bad, gold));
}

TEST(MriFhd, DatasetScaleVariesAcrossSeeds) {
  // The property behind its Fig. 16 false-positive persistence.
  auto w = make_mri_fhd();
  double min_s = 1e30, max_s = -1e30;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto ds = w->make_dataset(seed, Scale::Tiny);
    min_s = std::min(min_s, static_cast<double>(ds.scale));
    max_s = std::max(max_s, static_cast<double>(ds.scale));
  }
  EXPECT_GT(max_s / min_s, 100.0);  // spans > 2 decades
}

TEST(Tpacf, HistogramTotalEqualsPairCount) {
  auto w = make_tpacf();
  const Dataset ds = w->make_dataset(5, Scale::Tiny);
  gpusim::Device dev;
  const auto out = run_baseline(*w, ds, dev);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < out.size(); ++i)
    total += static_cast<std::int32_t>(out.words[i]);
  EXPECT_EQ(total, static_cast<std::int64_t>(ds.n) * ds.n);
}

TEST_P(WorkloadSuite, MediumScaleRunsClean) {
  // Larger problem sizes must not trip resource limits, watchdogs or
  // address-space assumptions (grids get wider, datasets larger).
  auto w = by_name(GetParam());
  const Dataset ds = w->make_dataset(3, Scale::Medium);
  gpusim::Device dev;
  const auto prog = kir::lower(w->build_kernel(Scale::Medium));
  auto job = w->make_job(ds);
  const auto args = job->setup(dev);
  const auto res = dev.launch(prog, job->config(), args);
  EXPECT_EQ(res.status, gpusim::LaunchStatus::Ok) << w->name();
  EXPECT_GT(res.threads, 0u);
}
