// hauberk::lint tests.
//
// Layout follows the analyzer list:
//  * interval-domain unit tests (join/meet/widen, loop refinement, widening
//    convergence);
//  * one positive (seeded-defect kernel) and one negative test per
//    diagnostic class — PossibleOob, NonUniformBarrier, SharedWriteOverlap,
//    StaticRangeUnsound, RangeTighterThanStatic, UncoveredVariable,
//    UncoveredEdge;
//  * dynamic cross-validation against the PR 3 Sanitizer engine: every
//    statically flagged concurrency/bounds defect is confirmed by a
//    sanitized run, and a lint-clean kernel is sanitizer-report-free;
//  * the stock-workload sweep (all 12 programs at Tiny): zero lint errors
//    and every profiled range contained in its sound static interval;
//  * determinism: byte-identical LintReport text/JSON across repeated runs
//    and across 1/2/8 worker threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/worker_pool.hpp"
#include "gpusim/device.hpp"
#include "hauberk/lint.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/runtime.hpp"
#include "hauberk/translator.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"
#include "kir/interval.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using kir::i32c;
using kir::KernelBuilder;
using kir::ValInterval;
using lint::DiagKind;
using lint::Severity;

namespace {

/// Lint a kernel under a block of `block_x` threads (everything else
/// conservative), optionally with pc/site provenance from its own lowering.
lint::LintReport lint_block(const kir::Kernel& k, std::uint32_t block_x,
                            const kir::BytecodeProgram* program = nullptr) {
  lint::LintOptions lo;
  lo.env.block_x = block_x;
  lo.program = program;
  return lint::run_lint(k, lo);
}

const lint::Diagnostic* find_diag(const lint::LintReport& rep, DiagKind kind) {
  for (const auto& d : rep.diagnostics)
    if (d.kind == kind) return &d;
  return nullptr;
}

/// Two 4-thread warps per 8-thread block, so cross-warp hazards are visible
/// to the sanitizer (same device shape as test_sanitizer.cpp).
gpusim::DeviceProps cross_warp_props() {
  gpusim::DeviceProps p;
  p.warp_size = 4;
  p.global_mem_words = 1u << 16;
  return p;
}

gpusim::LaunchResult run_sanitized(const kir::BytecodeProgram& prog, std::uint32_t threads = 8) {
  gpusim::Device dev(cross_warp_props());
  dev.set_engine(gpusim::ExecEngine::Sanitizer);
  const auto out = dev.mem().alloc(64, gpusim::AllocClass::I32Data);
  std::vector<std::uint32_t> zero(64, 0);
  dev.mem().copy_in(out, zero);
  const kir::Value args[] = {kir::Value::ptr(out)};
  return dev.launch(prog, gpusim::LaunchConfig{1, 1, threads, 1}, args);
}

}  // namespace

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

TEST(Interval, JoinMeetWiden) {
  const auto a = ValInterval::range(0, 4);
  const auto b = ValInterval::range(2, 9);
  EXPECT_EQ(kir::join(a, b), ValInterval::range(0, 9));
  EXPECT_EQ(kir::meet(a, b), ValInterval::range(2, 4));
  EXPECT_TRUE(kir::meet(ValInterval::range(0, 1), ValInterval::range(5, 6)).is_empty());
  EXPECT_EQ(kir::join(ValInterval::empty(), a), a);
  EXPECT_TRUE(a.contains(ValInterval::range(1, 3)));
  EXPECT_FALSE(a.contains(ValInterval::range(1, 5)));
  // A growing upper bound escapes to the i32 extreme; stable bounds stay.
  const auto w = kir::widen(ValInterval::range(0, 4), ValInterval::range(0, 5), kir::DType::I32);
  EXPECT_EQ(w.lo, 0.0);
  EXPECT_EQ(w.hi, 2147483647.0);
}

TEST(Interval, ForLoopIteratorRefinement) {
  // for (i = 0; i < 8; ++i) shared[i] = i  — the iterator refinement must
  // prove the shared index stays in [0, 7].
  KernelBuilder kb("refine", /*shared_mem_words=*/8);
  auto out = kb.param_ptr("out");
  kb.for_loop("i", i32c(0), i32c(8), [&](kir::ExprH i) { kb.shstore(i, i); });
  kb.store(out, kb.shload_i32(i32c(0)));
  const auto k = kb.build();

  kir::IntervalEnv env;
  kir::IntervalAnalysis ia(k, env);
  const auto* store = [&]() -> const kir::AccessFact* {
    for (const auto& a : ia.accesses())
      if (a.kind == kir::AccessKind::StoreShared) return &a;
    return nullptr;
  }();
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(store->reached);
  EXPECT_TRUE(ValInterval::range(0, 7).contains(store->addr));
}

TEST(Interval, WhileLoopWideningConverges) {
  // An unbounded accumulator must converge (via widening) to the type top
  // instead of iterating forever.
  KernelBuilder kb("widen");
  auto out = kb.param_ptr("out");
  auto x = kb.let("x", i32c(0));
  kb.while_loop([&] { return x < i32c(1000000); }, [&] { kb.assign(x, x + i32c(3)); });
  kb.store(out, x);
  const auto k = kb.build();

  kir::IntervalAnalysis ia(k, kir::IntervalEnv{});
  const auto v = ia.var_value(x.var_id());
  EXPECT_FALSE(v.is_empty());
  EXPECT_EQ(v.lo, 0.0);
  EXPECT_GE(v.hi, 1000000.0);
}

TEST(Interval, TripleNestedLoopWideningConverges) {
  // Widening at 3-deep nested loop heads: an accumulator fed from all three
  // levels must escape to the type top in finitely many rounds (the
  // constructor returning at all is the termination claim), while the
  // constant-bound iterator refinements survive the widening unharmed.
  KernelBuilder kb("deep");
  auto out = kb.param_ptr("out");
  auto n = kb.param_i32("n");  // unbounded: forces widening on the accumulator
  auto acc = kb.let("acc", i32c(0));
  kir::VarId i_id = kir::kInvalidVar, j_id = kir::kInvalidVar, k_id = kir::kInvalidVar;
  kb.for_loop("i", i32c(0), i32c(4), [&](kir::ExprH i) {
    i_id = i.var_id();
    kb.for_loop("j", i32c(0), i32c(4), [&](kir::ExprH j) {
      j_id = j.var_id();
      kb.for_loop("k", i32c(0), n, [&](kir::ExprH kv) {
        k_id = kv.var_id();
        kb.assign(acc, acc + i + j + kv);
      });
    });
  });
  kb.store(out, acc);
  const auto k = kb.build();

  kir::IntervalAnalysis ia(k, kir::IntervalEnv{});
  // The growing accumulator widens to the i32 top at the deepest head.
  const auto a = ia.var_value(acc.var_id());
  ASSERT_FALSE(a.is_empty());
  EXPECT_LE(a.lo, 0.0);
  EXPECT_EQ(a.hi, 2147483647.0);
  // Constant-bound iterators keep sound (and still useful) bounds: every
  // summary must contain the concrete iteration space [0, 3].
  for (const kir::VarId v : {i_id, j_id}) {
    ASSERT_NE(v, kir::kInvalidVar);
    const auto it = ia.var_value(v);
    ASSERT_FALSE(it.is_empty());
    EXPECT_TRUE(it.contains(ValInterval::range(0, 3))) << it.to_string();
    EXPECT_EQ(it.lo, 0.0) << "widening must not lose the loop-init bound";
  }
  // The unbounded innermost iterator still knows its lower bound.
  const auto kit = ia.var_value(k_id);
  ASSERT_FALSE(kit.is_empty());
  EXPECT_EQ(kit.lo, 0.0);

  // Determinism at depth 3: a second run reproduces every summary.
  kir::IntervalAnalysis again(k, kir::IntervalEnv{});
  EXPECT_EQ(ia.var_values().size(), again.var_values().size());
  for (std::size_t v = 0; v < ia.var_values().size(); ++v)
    EXPECT_EQ(ia.var_values()[v], again.var_values()[v]) << "var " << v;
}

TEST(StaticRanges, SubstitutionComposesWithPartialPlan) {
  // TranslateOptions::substitute_static_ranges composed with a partial
  // HardeningPlan: static ranges are substituted only into the detectors the
  // plan actually placed.  Turning loop detectors off for the kernel removes
  // its RangeCheck detectors, so apply_static_ranges configures fewer (none);
  // a plan naming some other kernel changes nothing.
  // TPACF: both its detector values have *finite* static intervals under a
  // concrete launch env, which is what makes the ranges usable at all
  // (accumulator-style detectors such as CP's widen to +-inf and are skipped).
  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == "TPACF") w = std::move(cand);
  ASSERT_NE(w, nullptr);
  const auto kernel = w->build_kernel(workloads::Scale::Tiny);

  // Static ranges are only finite (usable) under a concrete launch env, so
  // derive one from a real Tiny dataset exactly as kirlint does.
  gpusim::Device dev{gpusim::DeviceProps{}};
  const auto ds = w->make_dataset(1, workloads::Scale::Tiny);
  auto job = w->make_job(ds);
  const auto argv = job->setup(dev);

  core::TranslateOptions base;
  base.lint = true;  // lands the LintReport (detector_ranges) in ft_report
  base.lint_env = lint::env_for(job->config(), argv, dev.props());
  const auto vfull = core::build_variants(kernel, base);
  core::ControlBlock cb_full(vfull.ft);
  const int nfull = core::apply_static_ranges(cb_full, vfull.ft_report.lint);
  ASSERT_GT(nfull, 0) << "TPACF's detectors publish finite static ranges";

  core::TranslateOptions planned = base;
  {
    auto plan = std::make_shared<core::HardeningPlan>();
    core::KernelPlan kp;
    kp.kernel = kernel.name;
    kp.loops = core::Tri::Off;  // partial: keep nonloop checksums only
    plan->kernels.push_back(kp);
    planned.plan = plan;
  }
  const auto vplan = core::build_variants(kernel, planned);
  core::ControlBlock cb_plan(vplan.ft);
  const int nplan = core::apply_static_ranges(cb_plan, vplan.ft_report.lint);
  EXPECT_LT(nplan, nfull) << "plan-excluded loop detectors must not be configured";

  core::TranslateOptions other = base;
  {
    auto plan = std::make_shared<core::HardeningPlan>();
    core::KernelPlan kp;
    kp.kernel = "not-this-kernel";
    kp.loops = core::Tri::Off;
    plan->kernels.push_back(kp);
    other.plan = plan;
  }
  const auto vother = core::build_variants(kernel, other);
  core::ControlBlock cb_other(vother.ft);
  EXPECT_EQ(core::apply_static_ranges(cb_other, vother.ft_report.lint), nfull)
      << "a plan for another kernel must not change the substitution";
}

// ---------------------------------------------------------------------------
// Diagnostic classes: seeded defect (positive) + clean kernel (negative)
// ---------------------------------------------------------------------------

TEST(LintDiag, PossibleOobPositive) {
  // shared[8] with a 4-word allocation: the address interval is entirely
  // outside bounds, so the lint must escalate to an error.
  KernelBuilder kb("oob", /*shared_mem_words=*/4);
  auto out = kb.param_ptr("out");
  kb.shstore(i32c(8), i32c(1));
  kb.store(out, i32c(0));
  const auto k = kb.build();
  const auto prog = kir::lower(k);
  const auto rep = lint_block(k, 8, &prog);
  ASSERT_TRUE(rep.has(DiagKind::PossibleOob));
  const auto* d = find_diag(rep, DiagKind::PossibleOob);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_GE(rep.errors, 1);
  EXPECT_GE(d->pc, 0);   // provenance from the lowered program
  EXPECT_GE(d->site, 0);  // shared accesses carry a sanitizer site id
}

TEST(LintDiag, PossibleOobNegative) {
  // shared[tid] with tid < block_x = shared words: provably in bounds.
  KernelBuilder kb("inbounds", /*shared_mem_words=*/8);
  auto out = kb.param_ptr("out");
  kb.shstore(kb.tid_x(), kb.tid_x());
  kb.barrier();
  kb.store(out + kb.tid_x(), kb.shload_i32(kb.tid_x()));
  const auto k = kb.build();
  lint::LintOptions lo;
  lo.env.block_x = 8;
  lo.env.params = {ValInterval::point(0)};  // out buffer at address 0
  const auto rep = lint::run_lint(k, lo);
  EXPECT_EQ(rep.count(DiagKind::PossibleOob), 0) << rep.to_string();
}

TEST(LintDiag, NonUniformBarrierPositive) {
  KernelBuilder kb("divbar");
  auto out = kb.param_ptr("out");
  kb.if_then(kb.tid_x() < i32c(4), [&] { kb.barrier(); });
  kb.store(out + kb.tid_x(), i32c(1));
  const auto k = kb.build();
  const auto rep = lint_block(k, 8);
  ASSERT_TRUE(rep.has(DiagKind::NonUniformBarrier));
  EXPECT_EQ(find_diag(rep, DiagKind::NonUniformBarrier)->severity, Severity::Warning);
}

TEST(LintDiag, NonUniformBarrierNegative) {
  // Uniform control flow (a parameter-dependent branch is block-uniform).
  KernelBuilder kb("unibar");
  auto out = kb.param_ptr("out");
  auto n = kb.param_i32("n");
  kb.if_then(n > i32c(0), [&] { kb.barrier(); });
  kb.store(out + kb.tid_x(), i32c(1));
  const auto rep = lint_block(kb.build(), 8);
  EXPECT_EQ(rep.count(DiagKind::NonUniformBarrier), 0) << rep.to_string();
}

TEST(LintDiag, SharedWriteOverlapPositive) {
  // Every thread stores shared[0] in the same epoch: a proven collision.
  KernelBuilder kb("overlap", /*shared_mem_words=*/4);
  auto out = kb.param_ptr("out");
  kb.shstore(i32c(0), kb.tid_x());
  kb.barrier();
  kb.store(out + kb.tid_x(), kb.shload_i32(i32c(0)));
  const auto k = kb.build();
  const auto prog = kir::lower(k);
  const auto rep = lint_block(k, 8, &prog);
  ASSERT_TRUE(rep.has(DiagKind::SharedWriteOverlap));
  const auto* d = find_diag(rep, DiagKind::SharedWriteOverlap);
  EXPECT_EQ(d->severity, Severity::Error) << "point address, uniform control: proven";
  EXPECT_GE(d->pc, 0);
}

TEST(LintDiag, SharedWriteOverlapNegative) {
  // shared[tid]: distinct per thread, no pair can collide.
  KernelBuilder kb("disjoint", /*shared_mem_words=*/8);
  auto out = kb.param_ptr("out");
  kb.shstore(kb.tid_x(), kb.tid_x());
  kb.barrier();
  kb.store(out + kb.tid_x(), kb.shload_i32(kb.tid_x()));
  const auto rep = lint_block(kb.build(), 8);
  EXPECT_EQ(rep.count(DiagKind::SharedWriteOverlap), 0) << rep.to_string();
}

namespace {

/// x = tid.x; HauberkCheckRange(det 0, x) — static interval [0, block_x-1].
kir::Kernel range_check_kernel() {
  KernelBuilder kb("ranges");
  auto out = kb.param_ptr("out");
  auto x = kb.let("x", kb.tid_x());
  kb.store(out + x, x);
  auto k = kb.build();
  auto chk = std::make_shared<kir::Stmt>();
  chk->kind = kir::StmtKind::RangeCheck;
  chk->detector_id = 0;
  chk->label = "x";
  chk->value = kir::Expr::make_var(x.var_id(), kir::DType::I32);
  k.body.push_back(std::move(chk));
  return k;
}

lint::LintReport lint_with_observed(double lo, double hi) {
  lint::LintOptions opt;
  opt.env.block_x = 8;  // static interval of x: [0, 7]
  opt.observed.push_back({/*detector=*/0, lo, hi, /*samples=*/16});
  return lint::run_lint(range_check_kernel(), opt);
}

}  // namespace

TEST(LintDiag, StaticRangeUnsoundPositive) {
  const auto rep = lint_with_observed(-1, 5);  // escapes [0, 7] below
  ASSERT_TRUE(rep.has(DiagKind::StaticRangeUnsound)) << rep.to_string();
  EXPECT_EQ(find_diag(rep, DiagKind::StaticRangeUnsound)->severity, Severity::Error);
  EXPECT_EQ(find_diag(rep, DiagKind::StaticRangeUnsound)->detector, 0);
}

TEST(LintDiag, RangeTighterThanStaticPositive) {
  const auto rep = lint_with_observed(2, 5);  // strictly inside [0, 7]
  ASSERT_TRUE(rep.has(DiagKind::RangeTighterThanStatic)) << rep.to_string();
  const auto* d = find_diag(rep, DiagKind::RangeTighterThanStatic);
  EXPECT_EQ(d->severity, Severity::Remark);
  // Fig. 16 exposure: 7 units of static width minus 3 observed = 4 flagged.
  EXPECT_NE(d->message.find("4 units"), std::string::npos) << d->message;
}

TEST(LintDiag, RangeCrossCheckNegative) {
  // Profiled range equal to the static interval: neither unsound nor tight.
  const auto rep = lint_with_observed(0, 7);
  EXPECT_EQ(rep.count(DiagKind::StaticRangeUnsound), 0);
  EXPECT_EQ(rep.count(DiagKind::RangeTighterThanStatic), 0);
  // The static interval itself is published for range substitution.
  ASSERT_EQ(rep.detector_ranges.size(), 1u);
  EXPECT_TRUE(rep.detector_ranges[0].usable());
  EXPECT_EQ(rep.detector_ranges[0].value, ValInterval::range(0, 7));
}

namespace {

/// Loop kernel with an accumulator `acc` and a dead-end chain `t -> u`
/// (u reads t, so the Fig. 9 graph has a var-to-var edge inside the loop);
/// a DupCheck detector on `acc` (and optionally on `u` too).
kir::Kernel coverage_kernel(bool also_cover_u) {
  KernelBuilder kb("coverage");
  auto out = kb.param_ptr("out");
  auto n = kb.param_i32("n");
  auto acc = kb.let("acc", i32c(0));
  kir::VarId u_id = kir::kInvalidVar;
  kb.for_loop("i", i32c(0), n, [&](kir::ExprH i) {
    auto t = kb.let("t", i * i32c(2));
    auto u = kb.let("u", t + i32c(1));
    u_id = u.var_id();
    kb.store(out + u, u);
    kb.assign(acc, acc + i);
  });
  kb.store(out, acc);
  auto k = kb.build();
  auto dup = std::make_shared<kir::Stmt>();
  dup->kind = kir::StmtKind::DupCheck;
  dup->var = acc.var_id();
  dup->value = kir::Expr::make_const(kir::Value::i32(0));
  k.body.push_back(std::move(dup));
  if (also_cover_u) {
    auto dup2 = std::make_shared<kir::Stmt>();
    dup2->kind = kir::StmtKind::DupCheck;
    dup2->var = u_id;
    dup2->value = kir::Expr::make_const(kir::Value::i32(0));
    k.body.push_back(std::move(dup2));
  }
  return k;
}

}  // namespace

TEST(LintDiag, UncoveredVariableAndEdgePositive) {
  const auto rep = lint_block(coverage_kernel(/*also_cover_u=*/false), 8);
  // `acc` and the iterator are backward-reachable from the DupCheck; `t` and
  // `u` are not, so the variables and the loop dataflow edge u -> t surface.
  ASSERT_TRUE(rep.has(DiagKind::UncoveredVariable)) << rep.to_string();
  ASSERT_TRUE(rep.has(DiagKind::UncoveredEdge)) << rep.to_string();
  EXPECT_LT(rep.coverage.covered_vars, rep.coverage.total_vars);
  EXPECT_LT(rep.coverage.covered_edges, rep.coverage.total_edges);
  const auto* e = find_diag(rep, DiagKind::UncoveredEdge);
  EXPECT_NE(e->var, kir::kInvalidVar);
  EXPECT_NE(e->var2, kir::kInvalidVar);
}

TEST(LintDiag, CoverageNegativeFullyCovered) {
  const auto rep = lint_block(coverage_kernel(/*also_cover_u=*/true), 8);
  EXPECT_EQ(rep.count(DiagKind::UncoveredVariable), 0) << rep.to_string();
  EXPECT_EQ(rep.count(DiagKind::UncoveredEdge), 0) << rep.to_string();
  EXPECT_EQ(rep.coverage.covered_vars, rep.coverage.total_vars);
  EXPECT_DOUBLE_EQ(rep.coverage.var_pct(), 100.0);
  EXPECT_DOUBLE_EQ(rep.coverage.edge_pct(), 100.0);
}

TEST(LintDiag, PlanExclusionsDowngradeToRemarks) {
  // A plan that deliberately leaves `t`/`u` and the loop unprotected turns
  // every Uncovered* warning into an ExcludedByPlan remark: the corruption
  // surface is unchanged (coverage percentages identical), only the blame
  // moves from "instrumentation gap" to "budget decision".
  core::HardeningPlan plan;
  core::KernelPlan kp;
  kp.kernel = "coverage";
  kp.var_actions = {{"t", false}, {"u", false}};
  kp.loop_actions = {{0u, false}};
  plan.kernels.push_back(kp);

  const auto k = coverage_kernel(/*also_cover_u=*/false);
  lint::LintOptions lo;
  lo.env.block_x = 8;
  lo.plan = &plan;
  const auto rep = lint::run_lint(k, lo);

  EXPECT_EQ(rep.count(DiagKind::UncoveredVariable), 0) << rep.to_string();
  EXPECT_EQ(rep.count(DiagKind::UncoveredEdge), 0) << rep.to_string();
  ASSERT_TRUE(rep.has(DiagKind::ExcludedByPlan)) << rep.to_string();
  EXPECT_EQ(find_diag(rep, DiagKind::ExcludedByPlan)->severity, lint::Severity::Remark);
  EXPECT_GT(rep.coverage.excluded_vars, 0);
  EXPECT_GT(rep.coverage.excluded_edges, 0);
  // Excluded still counts as uncovered: the percentages match the plan-free
  // report exactly.
  const auto bare = lint_block(k, 8);
  EXPECT_EQ(rep.coverage.covered_vars, bare.coverage.covered_vars);
  EXPECT_EQ(rep.coverage.covered_edges, bare.coverage.covered_edges);
  EXPECT_EQ(rep.coverage.total_vars, bare.coverage.total_vars);
  EXPECT_EQ(rep.coverage.total_edges, bare.coverage.total_edges);
}

TEST(LintDiag, PlanForOtherKernelOrTrivialPlanKeepsWarnings) {
  const auto k = coverage_kernel(/*also_cover_u=*/false);

  // A plan that matches a different kernel leaves the grading untouched.
  core::HardeningPlan other;
  core::KernelPlan okp;
  okp.kernel = "somebody-else";
  okp.var_actions = {{"t", false}};
  other.kernels.push_back(okp);
  lint::LintOptions lo;
  lo.env.block_x = 8;
  lo.plan = &other;
  auto rep = lint::run_lint(k, lo);
  EXPECT_TRUE(rep.has(DiagKind::UncoveredVariable)) << rep.to_string();
  EXPECT_TRUE(rep.has(DiagKind::UncoveredEdge)) << rep.to_string();
  EXPECT_EQ(rep.count(DiagKind::ExcludedByPlan), 0) << rep.to_string();

  // A trivial matching entry (no decisions) excludes nothing either: every
  // variable/loop is allowed by an empty denylist.
  core::HardeningPlan trivial;
  core::KernelPlan tkp;
  tkp.kernel = "coverage";
  trivial.kernels.push_back(tkp);
  lo.plan = &trivial;
  rep = lint::run_lint(k, lo);
  EXPECT_TRUE(rep.has(DiagKind::UncoveredVariable)) << rep.to_string();
  EXPECT_TRUE(rep.has(DiagKind::UncoveredEdge)) << rep.to_string();
  EXPECT_EQ(rep.count(DiagKind::ExcludedByPlan), 0) << rep.to_string();
}

TEST(LintDiag, CoverageSkippedWithoutDetectors) {
  // An uninstrumented kernel is not "0% covered" — the analyzer only judges
  // kernels that carry detectors.
  KernelBuilder kb("plain");
  auto out = kb.param_ptr("out");
  auto v = kb.let("v", kb.tid_x());
  kb.store(out + v, v);
  const auto rep = lint_block(kb.build(), 8);
  EXPECT_EQ(rep.count(DiagKind::UncoveredVariable), 0);
  EXPECT_EQ(rep.coverage.total_vars, 0);
  EXPECT_DOUBLE_EQ(rep.coverage.var_pct(), 100.0);
}

// ---------------------------------------------------------------------------
// Dynamic cross-validation against the Sanitizer engine
// ---------------------------------------------------------------------------

TEST(LintSanitizer, SharedWriteOverlapConfirmedDynamically) {
  KernelBuilder kb("overlap_dyn", /*shared_mem_words=*/4);
  auto out = kb.param_ptr("out");
  kb.shstore(i32c(0), kb.tid_x());
  kb.barrier();
  kb.store(out + kb.tid_x(), kb.shload_i32(i32c(0)));
  const auto k = kb.build();
  const auto prog = kir::lower(k);

  const auto rep = lint_block(k, 8, &prog);
  ASSERT_TRUE(rep.has(DiagKind::SharedWriteOverlap));

  const auto res = run_sanitized(prog);
  bool ww = false;
  for (const auto& r : res.sanitizer_reports) ww |= r.kind == gpusim::HazardKind::WriteWrite;
  EXPECT_TRUE(ww) << "sanitizer must confirm the statically flagged overlap";
  // The static pc provenance names the same store the dynamic report blames.
  const auto* d = find_diag(rep, DiagKind::SharedWriteOverlap);
  bool pc_matches = false;
  for (const auto& r : res.sanitizer_reports)
    pc_matches |= static_cast<std::int64_t>(r.pc) == d->pc ||
                  static_cast<std::int64_t>(r.other_pc) == d->pc;
  EXPECT_TRUE(pc_matches);
}

TEST(LintSanitizer, NonUniformBarrierConfirmedDynamically) {
  KernelBuilder kb("divbar_dyn");
  auto out = kb.param_ptr("out");
  kb.if_then(kb.tid_x() < i32c(4), [&] { kb.barrier(); });
  kb.store(out + kb.tid_x(), i32c(1));
  const auto k = kb.build();
  const auto prog = kir::lower(k);

  ASSERT_TRUE(lint_block(k, 8, &prog).has(DiagKind::NonUniformBarrier));

  const auto res = run_sanitized(prog);
  bool diverged = res.status == gpusim::LaunchStatus::CrashBarrierDeadlock;
  for (const auto& r : res.sanitizer_reports)
    diverged |= r.kind == gpusim::HazardKind::BarrierDivergence;
  EXPECT_TRUE(diverged) << "sanitizer must confirm the non-uniform barrier";
}

TEST(LintSanitizer, SharedOobConfirmedDynamically) {
  KernelBuilder kb("oob_dyn", /*shared_mem_words=*/4);
  auto out = kb.param_ptr("out");
  kb.shstore(i32c(8), i32c(1));
  kb.store(out, i32c(0));
  const auto k = kb.build();
  const auto prog = kir::lower(k);

  ASSERT_TRUE(lint_block(k, 8, &prog).has(DiagKind::PossibleOob));

  const auto res = run_sanitized(prog);
  bool oob = res.status != gpusim::LaunchStatus::Ok;
  for (const auto& r : res.sanitizer_reports)
    oob |= r.kind == gpusim::HazardKind::SharedOutOfBounds;
  EXPECT_TRUE(oob) << "sanitizer must confirm the out-of-bounds shared store";
}

TEST(LintSanitizer, CleanKernelIsReportFree) {
  // Disjoint shared stores, uniform barrier, in-bounds global stores: the
  // lint finds nothing beyond remarks, and neither does the sanitizer.
  KernelBuilder kb("clean", /*shared_mem_words=*/8);
  auto out = kb.param_ptr("out");
  kb.shstore(kb.tid_x(), kb.tid_x() * i32c(3));
  kb.barrier();
  kb.store(out + kb.tid_x(), kb.shload_i32(kb.tid_x()));
  const auto k = kb.build();
  const auto prog = kir::lower(k);

  lint::LintOptions lo;
  lo.env.block_x = 8;
  lo.env.params = {ValInterval::point(0)};
  lo.program = &prog;
  const auto rep = lint::run_lint(k, lo);
  EXPECT_EQ(rep.errors, 0) << rep.to_string();
  EXPECT_EQ(rep.warnings, 0) << rep.to_string();

  const auto res = run_sanitized(prog);
  EXPECT_EQ(res.status, gpusim::LaunchStatus::Ok);
  EXPECT_TRUE(res.sanitizer_reports.empty());
  EXPECT_EQ(res.sanitizer_reports_dropped, 0u);
}

// ---------------------------------------------------------------------------
// Stock workloads: zero errors, static contains profiled
// ---------------------------------------------------------------------------

namespace {

struct WorkloadEntry {
  std::unique_ptr<workloads::Workload> w;
  bool cpu = false;
};

std::vector<WorkloadEntry> all_workloads() {
  std::vector<WorkloadEntry> out;
  for (auto& w : workloads::hpc_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::graphics_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::cpu_suite()) out.push_back({std::move(w), true});
  out.push_back({workloads::make_cpu_matmul(), true});  // not in cpu_suite
  return out;
}

/// The kirlint flow: instrument at FT, derive the env from one Tiny dataset,
/// profile for observed ranges, lint with provenance.
lint::LintReport lint_workload(const workloads::Workload& w, bool cpu) {
  core::TranslateOptions opt;
  opt.mode = core::LibMode::FT;
  const auto kernel = w.build_kernel(workloads::Scale::Tiny);
  const auto instrumented = core::translate(kernel, opt);
  const auto program = kir::lower(instrumented);

  gpusim::DeviceProps props;
  if (cpu) props.memory_model = gpusim::MemoryModel::PagedCpu;
  gpusim::Device dev(props);
  const auto ds = w.make_dataset(1, workloads::Scale::Tiny);
  auto job = w.make_job(ds);
  const auto argv = job->setup(dev);

  lint::LintOptions lo;
  lo.env = lint::env_for(job->config(), argv, dev.props());
  lo.program = &program;

  const auto variants = core::build_variants(kernel, opt);
  const auto pd = core::profile(dev, variants, {job.get()});
  for (std::size_t det = 0; det < pd.samples.size(); ++det) {
    const auto& s = pd.samples[det];
    if (s.empty()) continue;
    lint::ObservedRange o;
    o.detector = static_cast<int>(det);
    o.lo = *std::min_element(s.begin(), s.end());
    o.hi = *std::max_element(s.begin(), s.end());
    o.samples = s.size();
    lo.observed.push_back(o);
  }
  return lint::run_lint(instrumented, lo);
}

}  // namespace

TEST(LintWorkloads, AllTinyZeroErrorsAndSoundRanges) {
  for (const auto& e : all_workloads()) {
    const auto rep = lint_workload(*e.w, e.cpu);
    EXPECT_EQ(rep.errors, 0) << e.w->name() << "\n" << rep.to_string();
    EXPECT_EQ(rep.count(DiagKind::StaticRangeUnsound), 0) << e.w->name();
    EXPECT_FALSE(rep.kernel.empty());
  }
}

// ---------------------------------------------------------------------------
// Determinism: repeated runs and worker counts
// ---------------------------------------------------------------------------

TEST(LintDeterminism, ByteIdenticalAcrossRunsAndWorkers) {
  const char* names[] = {"CP", "SAD", "TPACF"};

  // Sequential baseline, computed twice: repeated runs must match bytes.
  std::vector<std::string> base_json(3), base_text(3);
  for (int i = 0; i < 3; ++i) {
    for (auto& e : all_workloads()) {
      if (e.w->name() != names[i]) continue;
      const auto rep = lint_workload(*e.w, e.cpu);
      base_json[i] = rep.to_json();
      base_text[i] = rep.to_string();
      const auto again = lint_workload(*e.w, e.cpu);
      EXPECT_EQ(again.to_json(), base_json[i]) << names[i];
      EXPECT_EQ(again.to_string(), base_text[i]) << names[i];
    }
  }

  // The same three reports computed concurrently on 2- and 8-thread pools
  // (every slot owns its device/jobs): still byte-identical.
  for (const unsigned workers : {2u, 8u}) {
    std::vector<std::string> json(3);
    common::WorkerPool pool(workers);
    std::atomic<int> next{0};
    pool.run(workers, [&](unsigned) {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= 3) return;
        for (auto& e : all_workloads()) {
          if (e.w->name() != names[i]) continue;
          json[i] = lint_workload(*e.w, e.cpu).to_json();
        }
      }
    });
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(json[i], base_json[i]) << names[i] << " with " << workers << " workers";
  }
}
