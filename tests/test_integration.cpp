// Cross-module integration and property tests:
//  * randomly generated kernels: lowering, execution and Hauberk FT
//    instrumentation must preserve semantics (translator fuzzing),
//  * campaign invariants over all workloads,
//  * determinism of launches regardless of worker parallelism,
//  * R-Naive behavior under injected faults.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hauberk/runtime.hpp"
#include "kir/builder.hpp"
#include "swifi/baselines.hpp"
#include "swifi/campaign.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::kir;

namespace {

// ---------------------------------------------------------------------------
// Random kernel generator: small but structurally varied kernels with safe
// arithmetic (no integer division, bounded addresses) so every generated
// kernel runs to completion and the only question is semantic equality.
// ---------------------------------------------------------------------------

class RandomKernelGen {
 public:
  explicit RandomKernelGen(std::uint64_t seed) : rng_(seed) {}

  Kernel generate() {
    KernelBuilder kb("fuzz");
    auto in = kb.param_ptr("in");
    auto out = kb.param_ptr("out");
    auto n = kb.param_i32("n");

    std::vector<ExprH> fvals{kb.let("f0", kb.load_f32(in + kb.thread_linear()))};
    std::vector<ExprH> ivals{kb.let("i0", kb.thread_linear() + i32c(1))};

    // A few non-loop definitions.
    const int pre = 1 + static_cast<int>(rng_.next_below(4));
    for (int i = 0; i < pre; ++i) emit_def(kb, fvals, ivals, i);

    // One or two loops, possibly with an If inside.
    const int loops = 1 + static_cast<int>(rng_.next_below(2));
    for (int l = 0; l < loops; ++l) {
      auto acc = kb.let("acc" + std::to_string(l), f32c(0.0f));
      kb.for_loop("it" + std::to_string(l), i32c(0), n, [&](ExprH it) {
        const int body = 1 + static_cast<int>(rng_.next_below(3));
        for (int i = 0; i < body; ++i) emit_def(kb, fvals, ivals, 100 * (l + 1) + i);
        if (rng_.next_below(2)) {
          kb.if_then((it & i32c(1)) == i32c(0),
                     [&] { kb.assign(acc, acc + fvals.back() * f32c(0.25f)); });
        } else {
          kb.assign(acc, acc + fvals.back());
        }
      });
      fvals.push_back(acc);
    }

    kb.store(out + kb.thread_linear(), fvals.back());
    kb.store(out + kb.thread_linear() + i32c(64), ivals.back());
    return kb.build();
  }

 private:
  void emit_def(KernelBuilder& kb, std::vector<ExprH>& fvals, std::vector<ExprH>& ivals,
                int tag) {
    auto pick_f = [&] { return fvals[rng_.next_below(fvals.size())]; };
    auto pick_i = [&] { return ivals[rng_.next_below(ivals.size())]; };
    switch (rng_.next_below(6)) {
      case 0: fvals.push_back(kb.let("f" + std::to_string(tag), pick_f() + pick_f())); break;
      case 1:
        fvals.push_back(kb.let("f" + std::to_string(tag), pick_f() * f32c(1.5f) - pick_f()));
        break;
      case 2:
        fvals.push_back(kb.let("f" + std::to_string(tag), sqrt_(abs_(pick_f()) + f32c(0.5f))));
        break;
      case 3:
        // Safe division: denominator bounded away from zero.
        fvals.push_back(
            kb.let("f" + std::to_string(tag), pick_f() / (abs_(pick_f()) + f32c(1.0f))));
        break;
      case 4: ivals.push_back(kb.let("i" + std::to_string(tag), pick_i() + i32c(3))); break;
      default:
        ivals.push_back(
            kb.let("i" + std::to_string(tag), (pick_i() * i32c(5)) ^ i32c(0x1234)));
        break;
    }
  }

  common::Rng rng_;
};

struct FuzzEnv {
  gpusim::Device dev;
  std::uint32_t in_addr = 0, out_addr = 0;
  std::vector<Value> args;

  void setup() {
    dev.reset_memory();
    in_addr = dev.mem().alloc(128, gpusim::AllocClass::F32Data);
    out_addr = dev.mem().alloc(128, gpusim::AllocClass::F32Data);
    std::vector<std::uint32_t> data(128);
    for (int i = 0; i < 128; ++i)
      data[static_cast<std::size_t>(i)] = Value::f32(0.25f * static_cast<float>(i) - 8.0f).bits;
    dev.mem().copy_in(in_addr, data);
    args = {Value::ptr(in_addr), Value::ptr(out_addr), Value::i32(9)};
  }

  std::vector<std::uint32_t> run(const BytecodeProgram& p, gpusim::LaunchHooks* hooks = nullptr) {
    setup();
    gpusim::LaunchOptions opts;
    opts.hooks = hooks;
    const auto res = dev.launch(p, gpusim::LaunchConfig{2, 1, 16, 1}, args, opts);
    EXPECT_EQ(res.status, gpusim::LaunchStatus::Ok);
    std::vector<std::uint32_t> out(128);
    dev.mem().copy_out(out_addr, out);
    return out;
  }
};

class TranslatorFuzz : public ::testing::TestWithParam<int> {};

}  // namespace

TEST_P(TranslatorFuzz, FtInstrumentationPreservesRandomKernelSemantics) {
  RandomKernelGen gen(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const Kernel k = gen.generate();
  // Every lowered program must be structurally valid (the code-fault
  // validator is the ground truth the mutation campaign relies on).
  EXPECT_TRUE(swifi::validate_program(lower(k)));
  FuzzEnv env;
  const auto base = env.run(lower(k));

  core::TranslateOptions opt;
  opt.mode = core::LibMode::FT;
  const auto ft_prog = lower(core::translate(k, opt));
  core::ControlBlock cb(ft_prog);
  const auto ft = env.run(ft_prog, &cb);
  EXPECT_EQ(ft, base);
  EXPECT_FALSE(cb.sdc_detected()) << "fault-free instrumented run raised an alarm";
}

TEST_P(TranslatorFuzz, NaiveDuplicationAlsoPreservesSemantics) {
  RandomKernelGen gen(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const Kernel k = gen.generate();
  FuzzEnv env;
  const auto base = env.run(lower(k));

  core::TranslateOptions opt;
  opt.mode = core::LibMode::FT;
  opt.naive_duplication = true;
  const auto prog = lower(core::translate(k, opt));
  const auto out = env.run(prog);
  EXPECT_EQ(out, base);
}

TEST_P(TranslatorFuzz, ProfilerVariantPreservesSemantics) {
  RandomKernelGen gen(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const Kernel k = gen.generate();
  FuzzEnv env;
  const auto base = env.run(lower(k));

  core::TranslateOptions opt;
  opt.mode = core::LibMode::Profiler;
  const auto prog = lower(core::translate(k, opt));
  core::ControlBlock cb(prog);
  cb.prepare_profiling(32);
  const auto out = env.run(prog, &cb);
  EXPECT_EQ(out, base);
}

TEST_P(TranslatorFuzz, RScatterPreservesSemanticsOnRandomKernels) {
  RandomKernelGen gen(static_cast<std::uint64_t>(GetParam()) * 53 + 29);
  const Kernel k = gen.generate();
  FuzzEnv env;
  const auto base = env.run(lower(k));

  gpusim::DeviceProps props;
  const auto sk = swifi::make_r_scatter(k, props);
  ASSERT_TRUE(sk.compiles);
  const auto out = env.run(lower(sk.kernel));
  EXPECT_EQ(out, base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslatorFuzz, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Determinism and campaign invariants
// ---------------------------------------------------------------------------

TEST(Determinism, LaunchIndependentOfWorkerCount) {
  auto w = workloads::make_tpacf();  // uses atomics + barriers
  const auto ds = w->make_dataset(3, workloads::Scale::Small);
  const auto prog = lower(w->build_kernel(workloads::Scale::Small));
  std::vector<std::uint32_t> first;
  std::uint64_t first_cycles = 0;
  for (int workers : {1, 2, 4}) {
    gpusim::Device dev;
    auto job = w->make_job(ds);
    const auto args = job->setup(dev);
    gpusim::LaunchOptions opts;
    opts.max_workers = workers;
    const auto res = dev.launch(prog, job->config(), args, opts);
    ASSERT_EQ(res.status, gpusim::LaunchStatus::Ok);
    const auto out = job->read_output(dev).words;
    if (first.empty()) {
      first = out;
      first_cycles = res.cycles;
    } else {
      EXPECT_EQ(out, first) << workers << " workers";
      EXPECT_EQ(res.cycles, first_cycles) << workers << " workers";
    }
  }
}

TEST(Determinism, ProfileSamplesStableAcrossRuns) {
  auto w = workloads::make_mri_q();
  const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
  const auto ds = w->make_dataset(4, workloads::Scale::Tiny);
  gpusim::Device dev;
  auto job = w->make_job(ds);
  const auto p1 = core::profile(dev, v, {job.get()});
  const auto p2 = core::profile(dev, v, {job.get()});
  ASSERT_EQ(p1.samples.size(), p2.samples.size());
  for (std::size_t d = 0; d < p1.samples.size(); ++d) {
    std::vector<double> a = p1.samples[d], b = p2.samples[d];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "detector " << d;
  }
  EXPECT_EQ(p1.exec_counts, p2.exec_counts);
}

namespace {

std::vector<std::string> hpc_names() {
  std::vector<std::string> n;
  for (const auto& w : workloads::hpc_suite()) n.push_back(w->name());
  return n;
}

class CampaignInvariants : public ::testing::TestWithParam<std::string> {};

}  // namespace

TEST_P(CampaignInvariants, OutcomesPartitionAndCoverageBounded) {
  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == GetParam()) w = std::move(cand);
  gpusim::Device dev;
  const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
  const auto ds = w->make_dataset(6, workloads::Scale::Tiny);
  auto job = w->make_job(ds);
  const auto pd = core::profile(dev, v, {job.get()});
  auto cb = core::make_configured_control_block(v.fift, pd);

  swifi::PlanOptions opt;
  opt.max_vars = 10;
  opt.masks_per_var = 4;
  opt.error_bits = 3;
  const auto specs = swifi::plan_faults(v.fift, pd, opt);
  ASSERT_FALSE(specs.empty());
  const auto res = swifi::run_campaign(dev, v.fift, *job, cb.get(), specs, w->requirement());

  // Outcomes partition the experiments.
  EXPECT_EQ(res.counts.activated() + res.counts.not_activated, specs.size());
  EXPECT_EQ(res.per_fault.size(), specs.size());
  // Coverage bounded and consistent with its definition.
  const double cov = res.counts.coverage();
  EXPECT_GE(cov, 0.0);
  EXPECT_LE(cov, 1.0);
  EXPECT_NEAR(cov, 1.0 - res.counts.ratio(res.counts.undetected), 1e-12);
  // The campaign must be reproducible.
  const auto res2 = swifi::run_campaign(dev, v.fift, *job, cb.get(), specs, w->requirement());
  EXPECT_EQ(res2.per_fault, res.per_fault);
}

TEST_P(CampaignInvariants, DeadWindowFaultsAreOverwhelminglyMasked) {
  // Late-window injections strike after the last use: they must be benign
  // far more often than live-window injections.
  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == GetParam()) w = std::move(cand);
  gpusim::Device dev;
  const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
  const auto ds = w->make_dataset(8, workloads::Scale::Tiny);
  auto job = w->make_job(ds);
  const auto pd = core::profile(dev, v, {job.get()});
  const auto gold = swifi::golden_run(dev, v.fi, *job);

  swifi::PlanOptions opt;
  opt.max_vars = 40;
  opt.masks_per_var = 3;
  opt.error_bits = 6;
  const auto specs = swifi::plan_faults(v.fi, pd, opt);

  swifi::OutcomeCounts live, dead;
  for (const auto& spec : specs) {
    bool is_dead = false;
    for (const auto& site : v.fi.fi_sites)
      if (site.site_id == spec.site_id) is_dead = site.dead_window;
    const auto o = swifi::run_one_fault(dev, v.fi, *job, nullptr, spec, gold.output,
                                        w->requirement(), 20'000'000);
    (is_dead ? dead : live).add(o);
  }
  if (dead.activated() >= 10 && live.activated() >= 10) {
    EXPECT_GE(dead.ratio(dead.masked) + 0.15, live.ratio(live.masked))
        << "dead-window faults should not be less benign than live ones";
  }
}

INSTANTIATE_TEST_SUITE_P(AllHpc, CampaignInvariants, ::testing::ValuesIn(hpc_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// R-Naive under injected faults
// ---------------------------------------------------------------------------

TEST(RNaiveIntegration, TransientDeviceFaultDetectedByOutputMismatch) {
  auto w = workloads::make_mri_q();
  const auto prog = lower(w->build_kernel(workloads::Scale::Tiny));
  const auto ds = w->make_dataset(9, workloads::Scale::Tiny);
  auto job = w->make_job(ds);
  gpusim::Device dev;
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Transient;
  fm.component = gpusim::DeviceFaultModel::Component::FPU;
  fm.mask = 0x00800000;
  fm.duration_ops = 5;  // strikes only the first execution
  dev.install_fault(fm);
  const auto rn = swifi::run_r_naive(dev, prog, *job);
  ASSERT_TRUE(rn.completed);
  EXPECT_TRUE(rn.mismatch) << "R-Naive must flag outputs that differ between runs";
}

TEST(RNaiveIntegration, CannotDetectHangs) {
  // Section IX.B: a corrupted-iterator hang defeats R-Naive — the first
  // execution never terminates, so there is nothing to compare.  (The
  // guardian handles this via its watchdog.)
  KernelBuilder kb("hang");
  auto out = kb.param_ptr("out");
  auto i = kb.let("i", i32c(0));
  kb.while_loop([&] { return i < i32c(10); }, [&] { kb.assign(i, i * i32c(1)); });
  kb.store(out, i);
  auto prog = lower(kb.build());

  struct Job final : core::KernelJob {
    std::uint32_t addr = 0;
    std::vector<Value> setup(gpusim::Device& dev) override {
      dev.reset_memory();
      addr = dev.mem().alloc(1);
      return {Value::ptr(addr)};
    }
    gpusim::LaunchConfig config() const override { return {}; }
    core::ProgramOutput read_output(const gpusim::Device&) const override { return {}; }
  } job;

  gpusim::Device dev;
  gpusim::LaunchOptions opts;
  opts.watchdog_instructions = 10000;
  const auto rn = swifi::run_r_naive(dev, prog, job, opts);
  EXPECT_FALSE(rn.completed);
  EXPECT_FALSE(rn.mismatch);
  EXPECT_EQ(rn.first.status, gpusim::LaunchStatus::Hang);
}
