// Reproduction-guard tests: assert the paper's qualitative claims (the
// "shapes" DESIGN.md promises) directly, so refactoring the cost model,
// translator or workloads cannot silently break the reproduction.
// Campaign sizes are kept small (Tiny scale); thresholds are deliberately
// loose — these are shape guards, not exact-number locks.
#include <gtest/gtest.h>

#include "hauberk/runtime.hpp"
#include "swifi/baselines.hpp"
#include "swifi/campaign.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::workloads;
using swifi::OutcomeCounts;

namespace {

struct Suite {
  std::vector<std::unique_ptr<Workload>> programs = hpc_suite();
};

OutcomeCounts sensitivity(Workload& w, kir::DType type, int bits = 1,
                          Scale scale = Scale::Tiny) {
  gpusim::Device dev;
  const auto v = core::build_variants(w.build_kernel(scale));
  const auto ds = w.make_dataset(1, scale);
  auto job = w.make_job(ds);
  const auto pd = core::profile(dev, v, {job.get()});
  swifi::PlanOptions opt;
  opt.max_vars = 12;
  opt.masks_per_var = 6;
  opt.error_bits = bits;
  opt.type_filter = type;
  const auto specs = swifi::plan_faults(v.fi, pd, opt);
  return swifi::run_campaign(dev, v.fi, *job, nullptr, specs, w.requirement()).counts;
}

}  // namespace

// --- Observation 2: FP faults do not crash GPU kernels ---

TEST(PaperClaims, FpFaultsNeverCrash) {
  Suite s;
  std::uint64_t crashes = 0, total = 0;
  for (auto& w : s.programs) {
    const auto c = sensitivity(*w, kir::DType::F32);
    crashes += c.failure;
    total += c.activated();
  }
  ASSERT_GT(total, 100u);
  EXPECT_EQ(crashes, 0u) << "Observation 2: corrupted FP values must not trap";
}

TEST(PaperClaims, PointerAndIntegerFaultsDoCrash) {
  Suite s;
  std::uint64_t crashes = 0, total = 0;
  for (auto& w : s.programs) {
    for (auto t : {kir::DType::PTR, kir::DType::I32}) {
      const auto c = sensitivity(*w, t);
      crashes += c.failure;
      total += c.activated();
    }
  }
  ASSERT_GT(total, 100u);
  const double ratio = static_cast<double>(crashes) / static_cast<double>(total);
  EXPECT_GT(ratio, 0.05) << "control-data faults must produce failures (paper: 16-33%)";
  EXPECT_LT(ratio, 0.60);
}

TEST(PaperClaims, GraphicsProgramsShowNoSingleBitSdc) {
  // Needs a realistic frame size: "user-noticeable" is a fraction of the
  // frame, and at Tiny (8x8) a single corrupted pixel already exceeds it.
  for (auto& w : graphics_suite()) {
    for (auto t : {kir::DType::I32, kir::DType::F32}) {
      const auto c = sensitivity(*w, t, 1, Scale::Small);
      EXPECT_EQ(c.undetected, 0u) << w->name();
    }
  }
}

// --- Observation 4: loops dominate kernel time ---

TEST(PaperClaims, LoopsDominateKernelTime) {
  Suite s;
  int ge95 = 0;
  double rpes_pct = 100.0;
  for (auto& w : s.programs) {
    gpusim::Device dev;
    const auto prog = kir::lower(w->build_kernel(Scale::Small));
    const auto ds = w->make_dataset(1, Scale::Small);
    auto job = w->make_job(ds);
    const auto args = job->setup(dev);
    const auto res = dev.launch(prog, job->config(), args);
    ASSERT_EQ(res.status, gpusim::LaunchStatus::Ok);
    const double pct =
        100.0 * static_cast<double>(res.loop_cycles) / static_cast<double>(res.cycles);
    if (w->name() == "RPES") rpes_pct = pct;
    else ge95 += pct >= 95.0;
  }
  EXPECT_EQ(ge95, 6) << "all non-RPES programs must be loop-dominated";
  EXPECT_LT(rpes_pct, 50.0) << "RPES must be the sequential-heavy exception";
}

// --- Fig. 13 ordering: Hauberk << R-Scatter < R-Naive ---

TEST(PaperClaims, OverheadOrderingHoldsPerProgram) {
  // Small scale: at Tiny the fixed costs (control block, non-loop fraction)
  // distort the ratios the claim is about.
  Suite s;
  for (auto& w : s.programs) {
    gpusim::Device dev;
    const auto src = w->build_kernel(Scale::Small);
    const auto ds = w->make_dataset(1, Scale::Small);
    auto job = w->make_job(ds);
    const auto baseline = kir::lower(src);
    auto args = job->setup(dev);
    const auto base = dev.launch(baseline, job->config(), args);

    core::TranslateOptions opt;
    opt.mode = core::LibMode::FT;
    const auto ft = kir::lower(core::translate(src, opt));
    args = job->setup(dev);
    gpusim::LaunchOptions ft_opts;
    ft_opts.charge_control_block = true;
    const auto ftr = dev.launch(ft, job->config(), args, ft_opts);

    const auto rn = swifi::run_r_naive(dev, baseline, *job);

    EXPECT_LT(ftr.cycles, rn.total_cycles) << w->name() << ": Hauberk must beat R-Naive";

    const auto sk = swifi::make_r_scatter(src, dev.props());
    if (sk.compiles) {
      args = job->setup(dev);
      const auto scat = dev.launch(kir::lower(sk.kernel), job->config(), args);
      // RPES is exempt: a sequential program offers R-Scatter no data-level
      // parallelism to exploit, so optimized duplication can lose to naive
      // re-execution there (the core finding of the paper's reference [11]).
      if (w->name() != "RPES") {
        // 2% tolerance: an all-compute kernel (MRI-FHD) duplicates nearly
        // every instruction, so R-Scatter approaches R-Naive from below.
        EXPECT_LT(scat.cycles, rn.total_cycles * 102 / 100) << w->name();
        EXPECT_LT(ftr.cycles, scat.cycles) << w->name();
      }
    } else {
      EXPECT_EQ(w->name(), "TPACF") << "only TPACF may fail R-Scatter compilation";
    }
    EXPECT_GE(rn.total_cycles, 2 * base.cycles);
  }
}

// --- Fig. 14: detectors buy real coverage ---

TEST(PaperClaims, HauberkCoverageBeatsBaselineOnEveryProgram) {
  Suite s;
  for (auto& w : s.programs) {
    gpusim::Device dev;
    const auto v = core::build_variants(w->build_kernel(Scale::Tiny));
    const auto ds = w->make_dataset(2, Scale::Tiny);
    auto job = w->make_job(ds);
    const auto pd = core::profile(dev, v, {job.get()});
    auto cb = core::make_configured_control_block(v.fift, pd);
    swifi::PlanOptions opt;
    opt.max_vars = 14;
    opt.masks_per_var = 6;
    opt.error_bits = 6;
    const auto fi = swifi::run_campaign(dev, v.fi, *job, nullptr,
                                        swifi::plan_faults(v.fi, pd, opt), w->requirement());
    const auto fift = swifi::run_campaign(dev, v.fift, *job, cb.get(),
                                          swifi::plan_faults(v.fift, pd, opt),
                                          w->requirement());
    EXPECT_GE(fift.counts.coverage() + 0.02, fi.counts.coverage()) << w->name();
    // PNS's floor is inherently lower: corrupting its LCG state diverts the
    // whole stochastic trajectory while every detector-visible statistic
    // stays in range — an SDC class value-range checking cannot see.
    const double floor = w->name() == "PNS" ? 0.45 : 0.60;
    EXPECT_GE(fift.counts.coverage(), floor) << w->name() << ": coverage collapsed";
  }
}

// --- Fig. 16 shape: PNS converges instantly, alpha tames MRI-FHD ---

TEST(PaperClaims, PnsRangesConvergeFromOneTrainingSet) {
  auto w = make_pns();
  const auto v = core::build_variants(w->build_kernel(Scale::Tiny));
  gpusim::Device dev;
  // Train on one dataset, test on another: must not alarm.
  const auto train = w->make_dataset(100, Scale::Tiny);
  auto train_job = w->make_job(train);
  const auto pd = core::profile(dev, v, {train_job.get()});
  auto cb = core::make_configured_control_block(v.ft, pd);
  for (std::uint64_t seed = 200; seed < 206; ++seed) {
    const auto test = w->make_dataset(seed, Scale::Tiny);
    auto job = w->make_job(test);
    const auto args = job->setup(dev);
    cb->reset_results();
    gpusim::LaunchOptions opts;
    opts.hooks = cb.get();
    const auto res = dev.launch(v.ft, job->config(), args, opts);
    ASSERT_EQ(res.status, gpusim::LaunchStatus::Ok);
    EXPECT_FALSE(res.sdc_alarm || cb->sdc_detected()) << "seed " << seed;
  }
}

TEST(PaperClaims, AlphaSuppressesMriFhdFalsePositives) {
  auto w = make_mri_fhd();
  const auto v = core::build_variants(w->build_kernel(Scale::Tiny));
  gpusim::Device dev;
  const auto train = w->make_dataset(100, Scale::Tiny);
  auto train_job = w->make_job(train);
  const auto pd = core::profile(dev, v, {train_job.get()});

  auto count_fps = [&](double alpha) {
    auto cb = core::make_configured_control_block(v.ft, pd, alpha);
    int alarms = 0;
    for (std::uint64_t seed = 300; seed < 312; ++seed) {
      const auto test = w->make_dataset(seed, Scale::Tiny);
      auto job = w->make_job(test);
      const auto args = job->setup(dev);
      cb->reset_results();
      gpusim::LaunchOptions opts;
      opts.hooks = cb.get();
      (void)dev.launch(v.ft, job->config(), args, opts);
      alarms += cb->sdc_detected();
    }
    return alarms;
  };

  const int fp1 = count_fps(1.0);
  const int fp100 = count_fps(100.0);
  EXPECT_GT(fp1, 0) << "one training set cannot cover MRI-FHD's dataset variation";
  EXPECT_LT(fp100, fp1) << "alpha widening must reduce false positives";
}

// --- TPACF structural claims (Section IX.A/B) ---

TEST(PaperClaims, TpacfRScatterFailsWithSharedMemoryReason) {
  auto w = make_tpacf();
  const auto sk = swifi::make_r_scatter(w->build_kernel(Scale::Tiny), gpusim::DeviceProps{});
  EXPECT_FALSE(sk.compiles);
  EXPECT_NE(sk.reason.find("shared memory"), std::string::npos);
}
