#!/bin/sh
# CLI contract for the shared --plan flag (common::parse_campaign_flags):
# every campaign harness — fault_campaign, bench_fig14_coverage,
# bench_ecc_study — accepts kirtune --emit-plan output through the same
# handling, and rejects a garbage plan file with exit 2 (a flag error, not a
# crash).  Run as: cli_plan_flag.sh BUILD_DIR
set -eu
BUILD=${1:?usage: cli_plan_flag.sh BUILD_DIR}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# A real plan out of the budgeted optimizer.
"$BUILD/tools/kirtune" --program=CP --scale=tiny --emit-plan="$TMP/plan.sexp" \
    --quiet >/dev/null

# Every harness must accept it.
"$BUILD/examples/fault_campaign" --program=CP --scale=tiny --vars=4 --masks=2 \
    --protected --plan="$TMP/plan.sexp" >/dev/null
"$BUILD/bench/bench_fig14_coverage" --scale=tiny --vars=4 --masks=2 --bits=1 \
    --plan="$TMP/plan.sexp" >/dev/null
"$BUILD/bench/bench_ecc_study" --scale=tiny --trials=4 \
    --plan="$TMP/plan.sexp" >/dev/null

# Every harness must reject garbage (and a missing file) with exit 2.
echo "(not a plan" > "$TMP/bad.sexp"
for cmd in \
    "examples/fault_campaign --program=CP --scale=tiny --vars=4 --masks=2" \
    "bench/bench_fig14_coverage --scale=tiny --vars=4 --masks=2 --bits=1" \
    "bench/bench_ecc_study --scale=tiny --trials=4"; do
  for bad in "$TMP/bad.sexp" "$TMP/does_not_exist.sexp"; do
    set +e
    # shellcheck disable=SC2086  # word-splitting of $cmd is intentional
    "$BUILD/$(echo $cmd | cut -d' ' -f1)" $(echo $cmd | cut -d' ' -f2-) \
        --plan="$bad" >/dev/null 2>&1
    rc=$?
    set -e
    if [ "$rc" -ne 2 ]; then
      echo "FAIL: '$cmd --plan=$bad' exited $rc (want 2)"
      exit 1
    fi
  done
done
echo "OK: --plan handling is uniform across campaign harnesses"
