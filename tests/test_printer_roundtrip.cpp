// kir serializer round-trip tests: parse_kernel(serialize_kernel(k)) must
// rebuild a kernel whose lowered bytecode is bit-identical to lowering the
// original — program_digest (the same FNV digest the golden translator file
// pins) is the equality oracle.  The matrix covers every workload's raw
// kernel plus every LibMode/ablation configuration of the golden digest
// harness, so any printer field the lowering reads is exercised.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "hauberk/translator.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"
#include "kir/printer.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

std::vector<std::unique_ptr<workloads::Workload>> all_workloads() {
  std::vector<std::unique_ptr<workloads::Workload>> out;
  for (auto& w : workloads::hpc_suite()) out.push_back(std::move(w));
  for (auto& w : workloads::graphics_suite()) out.push_back(std::move(w));
  for (auto& w : workloads::cpu_suite()) out.push_back(std::move(w));
  out.push_back(workloads::make_cpu_matmul());  // not in cpu_suite
  return out;
}

/// Round-trip `k` through the serializer and compare lowered digests; also
/// pin serializer idempotence (serialize(parse(text)) == text).
void expect_roundtrip(const kir::Kernel& k, const std::string& what) {
  const std::string text = kir::serialize_kernel(k);
  kir::Kernel back;
  ASSERT_NO_THROW(back = kir::parse_kernel(text)) << what;
  EXPECT_EQ(kir::program_digest(kir::lower(back)), kir::program_digest(kir::lower(k))) << what;
  EXPECT_EQ(kir::serialize_kernel(back), text) << what;
  // Metadata the digest does not cover must survive too.
  EXPECT_EQ(back.name, k.name) << what;
  ASSERT_EQ(back.vars.size(), k.vars.size()) << what;
  for (std::size_t i = 0; i < k.vars.size(); ++i) {
    EXPECT_EQ(back.vars[i].name, k.vars[i].name) << what;
    EXPECT_EQ(back.vars[i].scatter_shadow, k.vars[i].scatter_shadow) << what;
  }
}

}  // namespace

TEST(PrinterRoundTrip, RawWorkloadKernels) {
  for (const auto& w : all_workloads())
    expect_roundtrip(w->build_kernel(workloads::Scale::Small), w->name());
}

TEST(PrinterRoundTrip, AllLibModesAndAblations) {
  // The golden-digest configuration matrix: 4 modes x maxvar{1,2} x
  // naive{off,on}, plus the Hauberk-L / Hauberk-NL ablations.
  struct Config {
    std::string name;
    core::TranslateOptions opt;
  };
  std::vector<Config> cfgs;
  const struct {
    core::LibMode mode;
    const char* tag;
  } modes[] = {{core::LibMode::Profiler, "profiler"},
               {core::LibMode::FT, "ft"},
               {core::LibMode::FI, "fi"},
               {core::LibMode::FIFT, "fift"}};
  for (const auto& m : modes) {
    for (const int maxvar : {1, 2}) {
      for (const bool naive : {false, true}) {
        Config c;
        c.opt.mode = m.mode;
        c.opt.maxvar = maxvar;
        c.opt.naive_duplication = naive;
        c.name = std::string(m.tag) + ".maxvar" + std::to_string(maxvar) +
                 (naive ? ".naive" : "");
        cfgs.push_back(std::move(c));
      }
    }
  }
  Config l;
  l.opt.mode = core::LibMode::FT;
  l.opt.protect_nonloop = false;
  l.name = "ft.hauberk-l";
  cfgs.push_back(std::move(l));
  Config nl;
  nl.opt.mode = core::LibMode::FT;
  nl.opt.protect_loop = false;
  nl.name = "ft.hauberk-nl";
  cfgs.push_back(std::move(nl));

  for (const auto& w : all_workloads()) {
    const auto kernel = w->build_kernel(workloads::Scale::Small);
    for (const auto& c : cfgs)
      expect_roundtrip(core::translate(kernel, c.opt), w->name() + "/" + c.name);
  }
}

TEST(PrinterRoundTrip, EscapedNamesAndLabels) {
  kir::KernelBuilder kb("odd \"name\"\n\twith\\escapes");
  auto out = kb.param_ptr("p\"0\"");
  auto v = kb.let("x\\y", kir::i32c(7));
  kb.store(out, v);
  auto k = kb.build();
  k.body.front()->label = "label with \"quotes\" and\nnewline";
  expect_roundtrip(k, "escapes");
}

TEST(PrinterRoundTrip, MalformedInputThrows) {
  EXPECT_THROW((void)kir::parse_kernel(""), std::runtime_error);
  EXPECT_THROW((void)kir::parse_kernel("(kernel"), std::runtime_error);
  EXPECT_THROW((void)kir::parse_kernel("(wrong \"k\" 0 0 (params) (vars) ())"),
               std::runtime_error);
  // Out-of-range enum payload.
  kir::KernelBuilder kb("k");
  auto out = kb.param_ptr("out");
  kb.store(out, kir::i32c(1));
  const std::string good = kir::serialize_kernel(kb.build());
  std::string text = good;
  const auto pos = text.find("(s ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "(s 99");
  EXPECT_THROW((void)kir::parse_kernel(text), std::runtime_error);
  // Truncation anywhere in the stream must throw, never crash.
  for (std::size_t cut = 0; cut + 1 < good.size(); cut += 7)
    EXPECT_THROW((void)kir::parse_kernel(good.substr(0, cut)), std::runtime_error);
}
