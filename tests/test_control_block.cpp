// Unit tests for the Hauberk control block: detector configuration, per-
// launch result lifecycle, outlier recording, on-line learning, profiling
// storage, and thread-safety under concurrent detector callbacks.
#include <gtest/gtest.h>

#include <thread>

#include "hauberk/control_block.hpp"
#include "kir/bytecode.hpp"

using namespace hauberk;
using namespace hauberk::core;

namespace {

/// A bytecode program skeleton with `n` detectors and `s` FI sites.
kir::BytecodeProgram skeleton(int n_detectors, int n_sites = 2) {
  kir::BytecodeProgram p;
  p.name = "skel";
  for (int d = 0; d < n_detectors; ++d) {
    kir::DetectorMeta m;
    m.id = d;
    m.name = "det" + std::to_string(d);
    m.value_type = kir::DType::F32;
    p.detectors.push_back(m);
  }
  for (int s = 0; s < n_sites; ++s) {
    kir::FISite site;
    site.site_id = static_cast<std::uint32_t>(s);
    p.fi_sites.push_back(site);
  }
  return p;
}

RangeSet pos_range(double lo, double hi) {
  RangeSet rs;
  rs.pos = {true, lo, hi};
  return rs;
}

}  // namespace

TEST(ControlBlock, UnconfiguredDetectorAcceptsEverything) {
  ControlBlock cb(skeleton(1));
  EXPECT_FALSE(cb.check_range(0, kir::Value::f32(1e30f)));
  EXPECT_FALSE(cb.sdc_detected());
  EXPECT_EQ(cb.detectors()[0].checks, 1u);
  EXPECT_EQ(cb.detectors()[0].violations, 0u);
}

TEST(ControlBlock, ConfiguredDetectorFlagsOutliers) {
  ControlBlock cb(skeleton(1));
  cb.set_ranges(0, pos_range(1.0, 10.0));
  EXPECT_FALSE(cb.check_range(0, kir::Value::f32(5.0f)));
  EXPECT_TRUE(cb.check_range(0, kir::Value::f32(100.0f)));
  EXPECT_TRUE(cb.sdc_detected());
  EXPECT_EQ(cb.detectors()[0].violations, 1u);
  ASSERT_EQ(cb.detectors()[0].outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(cb.detectors()[0].outliers[0], 100.0);
}

TEST(ControlBlock, AlphaWidensAcceptance) {
  ControlBlock cb(skeleton(1));
  cb.set_ranges(0, pos_range(1.0, 10.0));
  cb.set_alpha(100.0);
  EXPECT_FALSE(cb.check_range(0, kir::Value::f32(500.0f)));  // 10 * 100 covers it
  EXPECT_TRUE(cb.check_range(0, kir::Value::f32(1e6f)));
}

TEST(ControlBlock, ResetClearsResultsButKeepsConfiguration) {
  ControlBlock cb(skeleton(1));
  cb.set_ranges(0, pos_range(1.0, 10.0));
  (void)cb.check_range(0, kir::Value::f32(100.0f));
  ASSERT_TRUE(cb.sdc_detected());
  cb.reset_results();
  EXPECT_FALSE(cb.sdc_detected());
  EXPECT_EQ(cb.total_checks(), 0u);
  EXPECT_TRUE(cb.detectors()[0].configured);
  EXPECT_TRUE(cb.check_range(0, kir::Value::f32(100.0f)));  // still configured
}

TEST(ControlBlock, AbsorbOutliersLearnsThem) {
  ControlBlock cb(skeleton(1));
  cb.set_ranges(0, pos_range(1.0, 10.0));
  (void)cb.check_range(0, kir::Value::f32(100.0f));
  cb.absorb_outliers();
  cb.reset_results();
  EXPECT_FALSE(cb.check_range(0, kir::Value::f32(100.0f)))
      << "on-line learning must accept the absorbed value";
}

TEST(ControlBlock, OutlierRecordingIsCapped) {
  ControlBlock cb(skeleton(1));
  cb.set_ranges(0, pos_range(1.0, 2.0));
  for (int i = 0; i < 1000; ++i) (void)cb.check_range(0, kir::Value::f32(1e9f));
  EXPECT_EQ(cb.detectors()[0].violations, 1000u);
  EXPECT_LE(cb.detectors()[0].outliers.size(), ControlBlock::kMaxOutliers);
}

TEST(ControlBlock, EqualCheckFailureSetsSdc) {
  ControlBlock cb(skeleton(2));
  cb.equal_check_failed(1);
  EXPECT_TRUE(cb.sdc_detected());
  EXPECT_EQ(cb.detectors()[1].violations, 1u);
  EXPECT_EQ(cb.detectors()[0].violations, 0u);
}

TEST(ControlBlock, IterationCheckDetectorSkippedByRangeConfiguration) {
  auto p = skeleton(2);
  p.detectors[1].is_iteration_check = true;
  ControlBlock cb(p);
  std::vector<std::vector<double>> samples{{1.0, 2.0}, {5.0, 5.0}};
  cb.configure_from_profile(samples);
  EXPECT_TRUE(cb.detectors()[0].configured);
  EXPECT_FALSE(cb.detectors()[1].configured) << "exact invariants need no ranges";
}

TEST(ControlBlock, ProfilingCollectsSamplesAndExecCounts) {
  ControlBlock cb(skeleton(1, /*sites=*/3));
  cb.prepare_profiling(/*threads=*/4);
  cb.profile_value(0, kir::Value::f32(2.5f));
  cb.profile_value(0, kir::Value::f32(-1.0f));
  cb.count_exec(1, 0);
  cb.count_exec(1, 0);
  cb.count_exec(2, 3);
  ASSERT_EQ(cb.profiled_samples()[0].size(), 2u);
  EXPECT_DOUBLE_EQ(cb.profiled_samples()[0][1], -1.0);
  EXPECT_EQ(cb.exec_counts()[1][0], 2u);
  EXPECT_EQ(cb.exec_counts()[2][3], 1u);
  EXPECT_EQ(cb.exec_counts()[0][0], 0u);
}

TEST(ControlBlock, CountExecIgnoresOutOfRangeThreads) {
  ControlBlock cb(skeleton(1, 1));
  cb.prepare_profiling(2);
  cb.count_exec(0, 99);  // beyond the prepared thread count: must not crash
  EXPECT_EQ(cb.exec_counts()[0][0], 0u);
}

TEST(ControlBlock, ConcurrentChecksAreSafeAndCounted) {
  ControlBlock cb(skeleton(1));
  cb.set_ranges(0, pos_range(1.0, 10.0));
  constexpr int kThreads = 4, kPer = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&cb] {
      for (int i = 0; i < kPer; ++i) {
        (void)cb.check_range(0, kir::Value::f32(5.0f));
        (void)cb.check_range(0, kir::Value::f32(50.0f));
      }
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(cb.total_checks(), static_cast<std::uint64_t>(kThreads) * kPer * 2);
  EXPECT_EQ(cb.total_violations(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_TRUE(cb.sdc_detected());
}

TEST(ControlBlock, ConfigureFromProfileSkipsEmptySampleSets) {
  ControlBlock cb(skeleton(2));
  std::vector<std::vector<double>> samples{{}, {3.0, 4.0}};
  cb.configure_from_profile(samples);
  EXPECT_FALSE(cb.detectors()[0].configured);
  EXPECT_TRUE(cb.detectors()[1].configured);
}

TEST(ControlBlock, AlphaFlooredAtOne) {
  ControlBlock cb(skeleton(1));
  cb.set_alpha(0.01);
  EXPECT_DOUBLE_EQ(cb.alpha(), 1.0);
}
