// ECC/EDC protected-memory backend tests (gpusim/ecc.hpp + DeviceMemory
// protected mode).
//
// The codeword sweeps are exhaustive, not sampled: every one of the 72
// single-bit flips must correct back to the original pair, and every one of
// the 72*71/2 double-bit flips must be flagged uncorrectable, for BOTH
// schemes — that is the SEC-DED contract the campaign outcome taxonomy
// (EccCorrected / EccDetectedUncorrectable) is built on.  Golden check bytes
// are pinned as literals so an H-matrix change can never slip through as
// "still self-consistent": the stored codeword format is part of trial
// staging (TrialStage snapshots check_image()) and must stay stable.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "gpusim/ecc.hpp"
#include "gpusim/memory.hpp"
#include "swifi/campaign.hpp"
#include "workloads/workload.hpp"

namespace ecc = hauberk::gpusim::ecc;
using hauberk::gpusim::DeviceMemory;
using hauberk::gpusim::MemoryModel;

namespace {

constexpr ecc::Scheme kSchemes[] = {ecc::Scheme::Hamming, ecc::Scheme::Hsiao};

// Data patterns the sweeps run under: zero, single bits at both ends, all
// ones, half masks, alternating masks, and irregular fills.
constexpr std::uint64_t kPatterns[] = {
    0x0ull,
    0x1ull,
    0x8000000000000000ull,
    0xFFFFFFFFFFFFFFFFull,
    0x00000000FFFFFFFFull,
    0xAAAAAAAAAAAAAAAAull,
    0x5555555555555555ull,
    0xDEADBEEFCAFEBABEull,
    0x0123456789ABCDEFull,
    0x00000001000000FEull,
};

/// Flip code bit `pos` (0..71) of a (data, check) pair.
void flip(std::uint64_t& data, std::uint8_t& check, int pos) {
  if (pos < ecc::kDataBits)
    data ^= 1ull << pos;
  else
    check ^= static_cast<std::uint8_t>(1u << (pos - ecc::kDataBits));
}

}  // namespace

// ---------------------------------------------------------------------------
// Codeword algebra
// ---------------------------------------------------------------------------

TEST(EccCode, GoldenCheckBytesHamming) {
  // Pinned against the systematic extended-Hamming construction; any change
  // to the H matrix breaks every stored checkpoint/stage image.
  const ecc::Code& c = ecc::code(ecc::Scheme::Hamming);
  const std::uint8_t golden[] = {0x00, 0x83, 0xC7, 0xFF, 0x18,
                                 0xAA, 0x55, 0x3A, 0x9C, 0x27};
  for (std::size_t i = 0; i < std::size(kPatterns); ++i)
    EXPECT_EQ(ecc::encode(c, kPatterns[i]), golden[i]) << "pattern " << i;
}

TEST(EccCode, GoldenCheckBytesHsiao) {
  const ecc::Code& c = ecc::code(ecc::Scheme::Hsiao);
  const std::uint8_t golden[] = {0x00, 0x07, 0x57, 0xD8, 0x03,
                                 0xD7, 0x0F, 0xD2, 0x42, 0x65};
  for (std::size_t i = 0; i < std::size(kPatterns); ++i)
    EXPECT_EQ(ecc::encode(c, kPatterns[i]), golden[i]) << "pattern " << i;
}

TEST(EccCode, ColumnsAreDistinctAndOddWeight) {
  // Odd-weight, distinct columns are the whole SEC-DED argument: singles hit
  // a column (correctable), doubles XOR to even weight (never a column).
  for (const auto scheme : kSchemes) {
    const ecc::Code& c = ecc::code(scheme);
    std::set<std::uint8_t> seen;
    for (int k = 0; k < ecc::kCodeBits; ++k) {
      EXPECT_EQ(std::popcount(c.column[k]) % 2, 1)
          << ecc::scheme_name(scheme) << " column " << k;
      EXPECT_TRUE(seen.insert(c.column[k]).second)
          << ecc::scheme_name(scheme) << " duplicate column " << k;
      EXPECT_EQ(c.locate[c.column[k]], k)
          << ecc::scheme_name(scheme) << " locate mismatch at " << k;
    }
  }
}

TEST(EccCode, CleanPairsDecodeAsNoError) {
  for (const auto scheme : kSchemes) {
    const ecc::Code& c = ecc::code(scheme);
    for (const std::uint64_t p : kPatterns) {
      const auto d = ecc::decode(c, p, ecc::encode(c, p));
      EXPECT_EQ(d.bit, ecc::kNoError);
      EXPECT_EQ(d.data, p);
    }
  }
}

TEST(EccCode, EverySingleBitFlipIsCorrected) {
  // Exhaustive: all 72 code-bit positions, every pattern, both schemes.
  for (const auto scheme : kSchemes) {
    const ecc::Code& c = ecc::code(scheme);
    for (const std::uint64_t p : kPatterns) {
      const std::uint8_t check = ecc::encode(c, p);
      for (int pos = 0; pos < ecc::kCodeBits; ++pos) {
        std::uint64_t data = p;
        std::uint8_t chk = check;
        flip(data, chk, pos);
        const auto d = ecc::decode(c, data, chk);
        ASSERT_EQ(d.bit, pos) << ecc::scheme_name(scheme) << " flip at " << pos;
        ASSERT_EQ(d.data, p) << ecc::scheme_name(scheme) << " flip at " << pos;
        ASSERT_EQ(d.check, check) << ecc::scheme_name(scheme) << " flip at " << pos;
      }
    }
  }
}

TEST(EccCode, EveryDoubleBitFlipIsUncorrectable) {
  // Exhaustive: all 72*71/2 = 2556 unordered position pairs, both schemes.
  // A double-bit error must never be "corrected" into wrong data.
  for (const auto scheme : kSchemes) {
    const ecc::Code& c = ecc::code(scheme);
    int pairs = 0;
    for (const std::uint64_t p : {0x0ull, 0xDEADBEEFCAFEBABEull}) {
      const std::uint8_t check = ecc::encode(c, p);
      pairs = 0;
      for (int i = 0; i < ecc::kCodeBits; ++i) {
        for (int j = i + 1; j < ecc::kCodeBits; ++j) {
          std::uint64_t data = p;
          std::uint8_t chk = check;
          flip(data, chk, i);
          flip(data, chk, j);
          const auto d = ecc::decode(c, data, chk);
          ASSERT_EQ(d.bit, ecc::kUncorrectable)
              << ecc::scheme_name(scheme) << " flips at " << i << "," << j;
          ++pairs;
        }
      }
    }
    EXPECT_EQ(pairs, 72 * 71 / 2);
  }
}

TEST(EccCode, SchemeNamesRoundTrip) {
  for (const auto scheme : {ecc::Scheme::None, ecc::Scheme::Hamming, ecc::Scheme::Hsiao}) {
    ecc::Scheme parsed{};
    ASSERT_TRUE(ecc::parse_scheme(ecc::scheme_name(scheme), parsed));
    EXPECT_EQ(parsed, scheme);
  }
  ecc::Scheme out{};
  EXPECT_FALSE(ecc::parse_scheme("secded", out));
  EXPECT_FALSE(ecc::parse_scheme("", out));
}

// ---------------------------------------------------------------------------
// DeviceMemory protected mode
// ---------------------------------------------------------------------------

namespace {

struct ProtectedMem : ::testing::TestWithParam<ecc::Scheme> {};

}  // namespace

TEST_P(ProtectedMem, SingleBitDataFaultCorrectedAndScrubbed) {
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(8);
  const std::uint32_t vals[] = {0x11111111u, 0x22222222u, 0x33333333u, 0x44444444u};
  mem.copy_in(base, vals);

  mem.corrupt_word(base + 1, 0x40u);
  std::uint32_t out = 0;
  ASSERT_TRUE(mem.load(base + 1, out));
  EXPECT_EQ(out, 0x22222222u);
  EXPECT_EQ(mem.ecc_corrected(), 1u);
  // The scrub wrote the corrected pair back: the next access takes the clean
  // fast path and the counter must not move again.
  ASSERT_TRUE(mem.load(base + 1, out));
  EXPECT_EQ(out, 0x22222222u);
  EXPECT_EQ(mem.ecc_corrected(), 1u);
}

TEST_P(ProtectedMem, SingleBitCheckFaultCorrected) {
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(4);
  const std::uint32_t vals[] = {0xCAFEBABEu, 0xDEADBEEFu};
  mem.copy_in(base, vals);

  mem.corrupt_check(base, 0x10u);
  std::uint32_t out = 0;
  ASSERT_TRUE(mem.load(base, out));
  EXPECT_EQ(out, 0xCAFEBABEu);
  EXPECT_EQ(mem.ecc_corrected(), 1u);
  EXPECT_EQ(mem.ecc_uncorrectable(), 0u);
}

TEST_P(ProtectedMem, DoubleBitDataFaultUncorrectable) {
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(4);
  const std::uint32_t vals[] = {0x01020304u, 0x05060708u};
  mem.copy_in(base, vals);

  mem.corrupt_word(base, 0x3u);  // two bits in one word -> one pair
  std::uint32_t out = 0;
  EXPECT_FALSE(mem.load(base, out));
  EXPECT_TRUE(DeviceMemory::last_fault_uncorrectable());
  EXPECT_EQ(mem.ecc_uncorrectable(), 1u);
  EXPECT_EQ(mem.ecc_corrected(), 0u);
}

TEST_P(ProtectedMem, DataPlusCheckDoubleFaultUncorrectable) {
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(4);
  const std::uint32_t vals[] = {0xA5A5A5A5u, 0x5A5A5A5Au};
  mem.copy_in(base, vals);

  mem.corrupt_word(base, 0x1u);
  mem.corrupt_check(base, 0x1u);
  std::uint32_t out = 0;
  EXPECT_FALSE(mem.load(base, out));
  EXPECT_TRUE(DeviceMemory::last_fault_uncorrectable());
  EXPECT_EQ(mem.ecc_uncorrectable(), 1u);
}

TEST_P(ProtectedMem, StoreCorrectsLatentSiblingFault) {
  // A 32-bit store is an RMW of the 64-bit codeword: a latent single-bit
  // error in the sibling word must be corrected (and counted), never
  // laundered into the freshly encoded pair.
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(4);
  const std::uint32_t vals[] = {0x10203040u, 0x50607080u};
  mem.copy_in(base, vals);

  mem.corrupt_word(base, 0x80000000u);
  ASSERT_TRUE(mem.store(base + 1, 0x99999999u));
  EXPECT_EQ(mem.ecc_corrected(), 1u);
  std::uint32_t out = 0;
  ASSERT_TRUE(mem.load(base, out));
  EXPECT_EQ(out, 0x10203040u);
  ASSERT_TRUE(mem.load(base + 1, out));
  EXPECT_EQ(out, 0x99999999u);
  EXPECT_EQ(mem.ecc_corrected(), 1u);
}

TEST_P(ProtectedMem, StoreToUncorrectablePairFails) {
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(4);
  const std::uint32_t vals[] = {0x1u, 0x2u};
  mem.copy_in(base, vals);

  mem.corrupt_word(base, 0x6u);
  EXPECT_FALSE(mem.store(base + 1, 0x7u));
  EXPECT_TRUE(DeviceMemory::last_fault_uncorrectable());
  EXPECT_EQ(mem.ecc_uncorrectable(), 1u);
}

TEST_P(ProtectedMem, DatapathFaultThroughStoreIsInvisible) {
  // ECC re-encodes on store: a wrong value arriving through the datapath is
  // a valid codeword and reads back clean — the gap Hauberk exists to fill.
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(2);
  ASSERT_TRUE(mem.store(base, 0xBAD0BAD0u));
  std::uint32_t out = 0;
  ASSERT_TRUE(mem.load(base, out));
  EXPECT_EQ(out, 0xBAD0BAD0u);
  EXPECT_EQ(mem.ecc_corrected(), 0u);
  EXPECT_EQ(mem.ecc_uncorrectable(), 0u);
}

TEST_P(ProtectedMem, OutOfBoundsIsNotAnEccFault) {
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  std::uint32_t out = 0;
  EXPECT_FALSE(mem.load(1u << 20, out));
  EXPECT_FALSE(DeviceMemory::last_fault_uncorrectable());
}

TEST_P(ProtectedMem, FlatArenaFastPathIsDisabled) {
  // Protected mode must route the fast/threaded engines' flat-arena accesses
  // through load()/store(), or reads would skip the EDC check entirely.
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  EXPECT_TRUE(mem.flat_arena().empty());
  DeviceMemory plain(MemoryModel::FlatGpu, 1u << 12, ecc::Scheme::None);
  EXPECT_FALSE(plain.flat_arena().empty());
}

TEST_P(ProtectedMem, RmwChecksAndReencodes) {
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(2);
  ASSERT_TRUE(mem.store(base, 40u));
  mem.corrupt_word(base, 0x2u);  // 40 ^ 2 = 42's neighbour; single bit
  ASSERT_TRUE(mem.rmw(base, [](std::uint32_t v) { return v + 2; }));
  EXPECT_EQ(mem.ecc_corrected(), 1u);
  std::uint32_t out = 0;
  ASSERT_TRUE(mem.load(base, out));
  EXPECT_EQ(out, 42u);
}

TEST_P(ProtectedMem, PagedCpuProtectionWorksOnStorageIndices) {
  // corrupt_word takes physical (image) indices; under PagedCpu those are
  // storage offsets, not virtual addresses.  The campaign memory-fault path
  // relies on this correspondence.
  DeviceMemory mem(MemoryModel::PagedCpu, 1u << 12, GetParam());
  const auto a = mem.alloc(4);
  const std::uint32_t vals[] = {7u, 8u, 9u, 10u};
  mem.copy_in(a, vals);
  mem.corrupt_word(0, 0x4u);  // physical word 0 backs the first allocation
  std::uint32_t out = 0;
  ASSERT_TRUE(mem.load(a, out));
  EXPECT_EQ(out, 7u);
  EXPECT_EQ(mem.ecc_corrected(), 1u);
}

TEST_P(ProtectedMem, RestoreTrialRestoresCheckArenaBitwise) {
  // Satellite regression: a re-staged trial must start from bitwise-identical
  // check bits, not merely re-encoded-equivalent ones.
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(8);
  const std::uint32_t vals[] = {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u};
  mem.copy_in(base, vals);
  const auto img = mem.image();
  const auto chk = mem.check_image();

  // A "trial": plant a raw fault, scribble some stores, trigger a scrub.
  mem.corrupt_word(base + 2, 0x8u);
  std::uint32_t out = 0;
  ASSERT_TRUE(mem.load(base + 2, out));
  ASSERT_TRUE(mem.store(base + 5, 0xFEEDFACEu));

  mem.restore_trial(img, chk);
  EXPECT_EQ(mem.image(), img);
  EXPECT_EQ(mem.check_image(), chk);

  // And the restored state matches a fresh identically-staged device.
  DeviceMemory fresh(MemoryModel::FlatGpu, 1u << 12, GetParam());
  (void)fresh.alloc(8);
  fresh.copy_in(base, vals);
  EXPECT_EQ(mem.image(), fresh.image());
  EXPECT_EQ(mem.check_image(), fresh.check_image());
}

TEST_P(ProtectedMem, RestoreTrialWithoutCheckImageReencodes) {
  // Callers that predate protection pass no check image; the fallback
  // re-encode must still leave a clean, consistent codeword arena.
  DeviceMemory mem(MemoryModel::FlatGpu, 1u << 12, GetParam());
  const auto base = mem.alloc(4);
  const std::uint32_t vals[] = {0xAAu, 0xBBu, 0xCCu, 0xDDu};
  mem.copy_in(base, vals);
  const auto img = mem.image();
  const auto chk = mem.check_image();

  mem.corrupt_check(base, 0x2u);
  mem.restore_trial(img);
  EXPECT_EQ(mem.check_image(), chk);
  std::uint32_t out = 0;
  ASSERT_TRUE(mem.load(base, out));
  EXPECT_EQ(out, 0xAAu);
  EXPECT_EQ(mem.ecc_corrected(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ProtectedMem,
                         ::testing::Values(ecc::Scheme::Hamming, ecc::Scheme::Hsiao),
                         [](const auto& info) {
                           return std::string(ecc::scheme_name(info.param));
                         });

// ---------------------------------------------------------------------------
// TrialStage integration: staged check bits across real trials
// ---------------------------------------------------------------------------

TEST(EccTrialStage, RestagedTrialHasBitwiseIdenticalCheckBits) {
  auto suite = hauberk::workloads::hpc_suite();
  auto& w = suite[0];
  const auto ds = w->make_dataset(1, hauberk::workloads::Scale::Tiny);
  auto job = w->make_job(ds);

  hauberk::gpusim::DeviceProps props;
  props.protection = ecc::Scheme::Hsiao;
  hauberk::gpusim::Device dev(props);
  hauberk::swifi::TrialStage stage(dev, *job);

  (void)stage.stage();
  const auto img = dev.mem().image();
  const auto chk = dev.mem().check_image();
  ASSERT_FALSE(chk.empty());

  // Dirty the arena the way a faulty trial would, then re-stage.
  dev.mem().corrupt_word(0, 0x1u);
  dev.mem().corrupt_check(2, 0x4u);
  (void)stage.stage();
  EXPECT_EQ(dev.mem().image(), img);
  EXPECT_EQ(dev.mem().check_image(), chk);

  // Bitwise identical to a never-corrupted device staged the same way.
  hauberk::gpusim::Device fresh(props);
  auto fjob = w->make_job(ds);
  (void)fjob->setup(fresh);
  EXPECT_EQ(dev.mem().image(), fresh.mem().image());
  EXPECT_EQ(dev.mem().check_image(), fresh.mem().check_image());
}
