// Unit tests for the value-range model (Section V.B / VI(iii)): three
// correlation points, threshold search, alpha widening, on-line learning,
// serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/rng.hpp"
#include "hauberk/ranges.hpp"

using namespace hauberk::core;

namespace {

std::vector<double> three_cluster_samples(std::size_t n_per) {
  // The Fig. 10 FP pattern: negative cluster, near-zero cluster, positive
  // cluster with similar magnitudes.
  hauberk::common::Rng rng(77);
  std::vector<double> s;
  for (std::size_t i = 0; i < n_per; ++i) {
    s.push_back(rng.uniform(-200.0, -50.0));
    s.push_back(rng.uniform(-1e-9, 1e-9));
    s.push_back(rng.uniform(40.0, 180.0));
  }
  return s;
}

}  // namespace

TEST(RangeSet, EmptyByDefault) {
  RangeSet rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_FALSE(rs.contains(1.0));
}

TEST(RangeSet, DeriveThreeCorrelationPoints) {
  auto s = three_cluster_samples(200);
  RangeSet rs = derive_ranges(s);
  EXPECT_TRUE(rs.neg.valid);
  EXPECT_TRUE(rs.pos.valid);
  EXPECT_TRUE(rs.has_zero);
  EXPECT_LE(rs.neg.lo, -50.0);
  EXPECT_GE(rs.pos.hi, 40.0);
}

TEST(RangeSet, DerivedRangesContainAllSamples) {
  auto s = three_cluster_samples(200);
  RangeSet rs = derive_ranges(s);
  for (double v : s) EXPECT_TRUE(rs.contains(v)) << v;
}

TEST(RangeSet, OutliersRejected) {
  auto s = three_cluster_samples(200);
  RangeSet rs = derive_ranges(s);
  EXPECT_FALSE(rs.contains(1e8));
  EXPECT_FALSE(rs.contains(-1e8));
  EXPECT_FALSE(rs.contains(0.5));  // between zero band and positive cluster
  EXPECT_FALSE(rs.contains(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(rs.contains(std::nan("")));
}

TEST(RangeSet, ThresholdSearchShrinksSpaceVsNaiveThreshold) {
  // Zero cluster sits at ~1e-9; the default 1e-5 threshold over-covers the
  // zero band by four decades, so the search must move the threshold down.
  auto s = three_cluster_samples(200);
  RangeSet searched = derive_ranges(s);
  RangeSet fixed = derive_ranges_fixed_threshold(s, 1e-5);
  EXPECT_LT(searched.space_decades(), fixed.space_decades());
  EXPECT_LT(searched.zero_eps, 1e-5);
}

TEST(RangeSet, AlphaWidensAcceptance) {
  RangeSet rs;
  rs.pos = {true, 10.0, 100.0};
  EXPECT_FALSE(rs.contains(500.0, 1.0));
  EXPECT_TRUE(rs.contains(500.0, 10.0));    // hi*alpha = 1000
  EXPECT_FALSE(rs.contains(0.5, 1.0));
  EXPECT_TRUE(rs.contains(0.5, 100.0));     // lo/alpha = 0.1
}

TEST(RangeSet, AlphaWidensNegativeRangeByMagnitude) {
  RangeSet rs;
  rs.neg = {true, -100.0, -10.0};
  EXPECT_FALSE(rs.contains(-500.0, 1.0));
  EXPECT_TRUE(rs.contains(-500.0, 10.0));
  EXPECT_FALSE(rs.contains(-1.0, 1.0));
  EXPECT_TRUE(rs.contains(-1.0, 100.0));
}

TEST(RangeSet, AlphaBelowOneClamped) {
  RangeSet rs;
  rs.pos = {true, 10.0, 100.0};
  EXPECT_TRUE(rs.contains(50.0, 0.001));  // treated as alpha = 1
}

TEST(RangeSet, AbsorbExtendsRanges) {
  RangeSet rs = derive_ranges_fixed_threshold(std::vector<double>{5.0, 7.0}, 1e-5);
  EXPECT_FALSE(rs.contains(20.0));
  rs.absorb(20.0);
  EXPECT_TRUE(rs.contains(20.0));
  EXPECT_FALSE(rs.contains(-3.0));
  rs.absorb(-3.0);
  EXPECT_TRUE(rs.contains(-3.0));
  rs.absorb(0.0);
  EXPECT_TRUE(rs.contains(0.0));
}

TEST(RangeSet, AbsorbIgnoresNonFinite) {
  RangeSet rs;
  rs.absorb(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(rs.empty());
}

TEST(RangeSet, IntegerStyleSamples) {
  // Integer detectors reuse the same machinery (Fig. 10(a)).
  std::vector<double> s;
  for (int i = 0; i < 100; ++i) s.push_back(100.0 + i);
  RangeSet rs = derive_ranges(s);
  EXPECT_TRUE(rs.contains(150.0));
  EXPECT_FALSE(rs.contains(1e7));
  EXPECT_FALSE(rs.neg.valid);
}

TEST(RangeSet, SingleValueSamples) {
  std::vector<double> s{42.0};
  RangeSet rs = derive_ranges(s);
  EXPECT_TRUE(rs.contains(42.0));
  EXPECT_FALSE(rs.contains(43.5));
  EXPECT_TRUE(rs.contains(43.5, 2.0));
}

TEST(RangeSet, SaveLoadRoundTrip) {
  auto s = three_cluster_samples(50);
  std::vector<RangeSet> sets{derive_ranges(s), RangeSet{}};
  sets[1].pos = {true, 1.5, 2.5};
  std::stringstream ss;
  save_ranges(ss, sets);
  auto loaded = load_ranges(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].neg.valid, sets[0].neg.valid);
  EXPECT_DOUBLE_EQ(loaded[0].pos.hi, sets[0].pos.hi);
  EXPECT_DOUBLE_EQ(loaded[1].pos.lo, 1.5);
  EXPECT_EQ(loaded[1].has_zero, false);
}

TEST(RangeSet, LoadRejectsGarbage) {
  std::stringstream ss("not-a-range-file 1 2");
  EXPECT_TRUE(load_ranges(ss).empty());
}

TEST(RangeSet, SpaceDecadesMonotonicInWidth) {
  RangeSet narrow, wide;
  narrow.pos = {true, 10.0, 20.0};
  wide.pos = {true, 1.0, 1000.0};
  EXPECT_LT(narrow.space_decades(), wide.space_decades());
}

// Property-style sweep: for random sample sets, derived ranges always accept
// every training sample at alpha 1 (no false positive on training data).
class DeriveProperty : public ::testing::TestWithParam<int> {};

TEST_P(DeriveProperty, TrainingSamplesAlwaysAccepted) {
  hauberk::common::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> s;
  const int n = 1 + static_cast<int>(rng.next_below(300));
  for (int i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, rng.uniform(-12.0, 12.0));
    s.push_back(rng.next_below(2) ? mag : -mag);
  }
  RangeSet rs = derive_ranges(s);
  for (double v : s) EXPECT_TRUE(rs.contains(v)) << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeriveProperty, ::testing::Range(0, 12));
