// Golden-output regression tests: every workload in src/workloads/ runs at a
// fixed tiny size and seed, and the FNV-1a hash of its output words plus its
// modeled cycle total are pinned here.  Any change to interpreter semantics,
// cost accounting, lowering, or instrumentation that moves an observable
// shows up as a hash/cycle mismatch — and because each workload is executed
// on both interpreter engines, the table also pins the engines to each
// other on real programs (complementing the random programs of
// test_differential_fuzz.cpp).
//
// Regenerating after an *intentional* behavior change:
//   HAUBERK_GOLDEN_PRINT=1 ./test_golden_outputs
// prints the updated table entries to paste below.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "gpusim/device.hpp"
#include "hauberk/control_block.hpp"
#include "hauberk/runtime.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::workloads;

namespace {

constexpr std::uint64_t kDatasetSeed = 20260806;

struct Golden {
  std::uint64_t base_hash, base_cycles;
  std::uint64_t ft_hash, ft_cycles;
};

/// FNV-1a over the output words, seeded with the word count so different
/// shapes with equal content still differ.
std::uint64_t fnv1a(const std::vector<std::uint32_t>& words) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ words.size();
  for (std::uint32_t w : words) {
    for (int b = 0; b < 4; ++b) {
      h ^= (w >> (8 * b)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

struct RunHash {
  std::uint64_t hash = 0;
  std::uint64_t cycles = 0;
};

RunHash run_hashed(Workload& w, const Dataset& ds, const kir::BytecodeProgram& prog,
                   gpusim::ExecEngine engine, gpusim::LaunchHooks* hooks) {
  gpusim::Device dev;
  dev.set_engine(engine);
  auto job = w.make_job(ds);
  const auto args = job->setup(dev);
  gpusim::LaunchOptions opts;
  opts.hooks = hooks;
  const auto res = dev.launch(prog, job->config(), args, opts);
  EXPECT_EQ(res.status, gpusim::LaunchStatus::Ok) << w.name();
  RunHash r;
  r.cycles = res.cycles;
  if (res.status == gpusim::LaunchStatus::Ok)
    r.hash = fnv1a(job->read_output(dev).words);
  return r;
}

/// Pinned goldens.  Keys are workload names; values were captured on the
/// reference engine and must hold on both.
const std::map<std::string, Golden>& goldens() {
  static const std::map<std::string, Golden> g = {
      {"CP", {0x8c30eec42cc1148bULL, 53760ULL, 0x8c30eec42cc1148bULL, 56736ULL}},
      {"MRI-FHD", {0xbb702e53f53decceULL, 89040ULL, 0xbb702e53f53decceULL, 92768ULL}},
      {"MRI-Q", {0xb97a49d5cd0cd7cfULL, 72528ULL, 0xb97a49d5cd0cd7cfULL, 76224ULL}},
      {"PNS", {0x413b03984206459fULL, 21231ULL, 0x413b03984206459fULL, 24703ULL}},
      {"RPES", {0xc2783afcc958c0c6ULL, 27376ULL, 0xc2783afcc958c0c6ULL, 54880ULL}},
      {"SAD", {0x597c39884d63a761ULL, 175092ULL, 0x597c39884d63a761ULL, 177902ULL}},
      {"TPACF", {0x6f4e5d6f909b3980ULL, 252920ULL, 0x6f4e5d6f909b3980ULL, 288302ULL}},
      {"ocean-flow", {0x783efbda61bc8efaULL, 84096ULL, 0x783efbda61bc8efaULL, 94272ULL}},
      {"ray-trace", {0x441b7bde26214c76ULL, 141952ULL, 0x441b7bde26214c76ULL, 180928ULL}},
      {"cpu-histogram", {0xa50265c6161fcf55ULL, 21763ULL, 0xa50265c6161fcf55ULL, 22620ULL}},
      {"cpu-linkedlist", {0xe6bd86443df8ce07ULL, 58ULL, 0xe6bd86443df8ce07ULL, 94ULL}},
      {"cpu-matmul", {0x26a9d1c4ba86dbb9ULL, 36640ULL, 0x26a9d1c4ba86dbb9ULL, 39848ULL}},
  };
  return g;
}

std::vector<std::unique_ptr<Workload>> all_workloads() {
  std::vector<std::unique_ptr<Workload>> all;
  for (auto& w : hpc_suite()) all.push_back(std::move(w));
  for (auto& w : graphics_suite()) all.push_back(std::move(w));
  for (auto& w : cpu_suite()) all.push_back(std::move(w));
  all.push_back(make_cpu_matmul());  // not part of cpu_suite's Fig. 1 rows
  return all;
}

}  // namespace

TEST(GoldenOutputs, AllWorkloadsMatchPinnedHashesOnBothEngines) {
  const bool print = std::getenv("HAUBERK_GOLDEN_PRINT") != nullptr;
  std::size_t checked = 0;
  for (auto& w : all_workloads()) {
    const Dataset ds = w->make_dataset(kDatasetSeed, Scale::Tiny);
    auto v = core::build_variants(w->build_kernel(Scale::Tiny));

    for (const auto engine : {gpusim::ExecEngine::Fast, gpusim::ExecEngine::Reference,
                              gpusim::ExecEngine::Threaded}) {
      const RunHash base = run_hashed(*w, ds, v.baseline, engine, nullptr);
      core::ControlBlock cb(v.ft);
      const RunHash ft = run_hashed(*w, ds, v.ft, engine, &cb);

      if (print) {
        if (engine == gpusim::ExecEngine::Reference)
          std::printf("      {\"%s\", {0x%016llxULL, %lluULL, 0x%016llxULL, %lluULL}},\n",
                      w->name().c_str(),
                      static_cast<unsigned long long>(base.hash),
                      static_cast<unsigned long long>(base.cycles),
                      static_cast<unsigned long long>(ft.hash),
                      static_cast<unsigned long long>(ft.cycles));
        continue;
      }

      const auto it = goldens().find(w->name());
      ASSERT_NE(it, goldens().end()) << "no golden pinned for " << w->name()
                                     << " — run with HAUBERK_GOLDEN_PRINT=1";
      const char* en = gpusim::exec_engine_name(engine);
      EXPECT_EQ(base.hash, it->second.base_hash) << w->name() << " baseline output (" << en << ")";
      EXPECT_EQ(base.cycles, it->second.base_cycles) << w->name() << " baseline cycles (" << en << ")";
      EXPECT_EQ(ft.hash, it->second.ft_hash) << w->name() << " FT output (" << en << ")";
      EXPECT_EQ(ft.cycles, it->second.ft_cycles) << w->name() << " FT cycles (" << en << ")";
      // FT instrumentation must also be semantically transparent here, by
      // construction of the table: base and FT hashes are pinned equal.
      EXPECT_EQ(base.hash, ft.hash) << w->name() << " (" << en << ")";
      ++checked;
    }
  }
  if (!print) {
    EXPECT_EQ(checked, 3 * goldens().size());
  }
}
