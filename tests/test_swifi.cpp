// Tests for the SWIFI fault injector: spec planning, activation, outcome
// classification, memory/code faults, and the R-Naive/R-Scatter baselines.
#include <gtest/gtest.h>

#include "hauberk/runtime.hpp"
#include "kir/builder.hpp"
#include "swifi/baselines.hpp"
#include "swifi/campaign.hpp"
#include "swifi/injector.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::swifi;
using namespace hauberk::workloads;
using core::ProfileData;

namespace {

struct Fixture {
  std::unique_ptr<Workload> w;
  core::KernelVariants v;
  Dataset ds;
  std::unique_ptr<core::KernelJob> job;
  gpusim::Device dev;
  ProfileData pd;

  explicit Fixture(std::unique_ptr<Workload> wl, std::uint64_t seed = 21)
      : w(std::move(wl)),
        v(core::build_variants(w->build_kernel(Scale::Tiny))),
        ds(w->make_dataset(seed, Scale::Tiny)),
        job(w->make_job(ds)) {
    pd = core::profile(dev, v, {job.get()});
  }
};

}  // namespace

TEST(PlanFaults, RespectsBudgetsAndDeterminism) {
  Fixture f(make_cp());
  PlanOptions opt;
  opt.max_vars = 5;
  opt.masks_per_var = 4;
  opt.seed = 3;
  auto specs = plan_faults(f.v.fi, f.pd, opt);
  EXPECT_EQ(specs.size(), 20u);
  auto specs2 = plan_faults(f.v.fi, f.pd, opt);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].site_id, specs2[i].site_id);
    EXPECT_EQ(specs[i].mask, specs2[i].mask);
    EXPECT_EQ(specs[i].thread, specs2[i].thread);
  }
}

TEST(PlanFaults, TypeFilterRestrictsTargets) {
  Fixture f(make_cp());
  PlanOptions opt;
  opt.type_filter = kir::DType::F32;
  for (const auto& s : plan_faults(f.v.fi, f.pd, opt)) EXPECT_EQ(s.type, kir::DType::F32);
  opt.type_filter = kir::DType::PTR;
  auto ptr_specs = plan_faults(f.v.fi, f.pd, opt);
  EXPECT_FALSE(ptr_specs.empty()) << "CP has pointer-typed virtual variables (abase)";
  for (const auto& s : ptr_specs) EXPECT_EQ(s.type, kir::DType::PTR);
}

TEST(PlanFaults, ErrorBitsControlMaskPopcount) {
  Fixture f(make_mri_q());
  for (int bits : {1, 3, 6, 10, 15}) {
    PlanOptions opt;
    opt.error_bits = bits;
    opt.max_vars = 3;
    opt.masks_per_var = 3;
    for (const auto& s : plan_faults(f.v.fi, f.pd, opt))
      EXPECT_EQ(std::popcount(s.mask), bits);
  }
}

TEST(PlanFaults, OccurrenceWithinProfiledCount) {
  Fixture f(make_pns());
  PlanOptions opt;
  opt.max_vars = 50;
  opt.masks_per_var = 2;
  for (const auto& s : plan_faults(f.v.fi, f.pd, opt)) {
    EXPECT_GE(s.occurrence, 1u);
    // occurrence must not exceed the profiled execution count for the thread
    bool found = false;
    for (std::uint32_t si = 0; si < f.v.fi.fi_sites.size(); ++si) {
      if (f.v.fi.fi_sites[si].site_id != s.site_id) continue;
      found = true;
      ASSERT_LT(s.thread, f.pd.exec_counts[si].size());
      EXPECT_LE(s.occurrence, f.pd.exec_counts[si][s.thread]);
    }
    EXPECT_TRUE(found);
  }
}

TEST(Injection, PlannedFaultsActuallyActivate) {
  Fixture f(make_cp());
  PlanOptions opt;
  opt.max_vars = 8;
  opt.masks_per_var = 2;
  const auto specs = plan_faults(f.v.fi, f.pd, opt);
  const auto gold = golden_run(f.dev, f.v.fi, *f.job);
  int activated = 0;
  for (const auto& spec : specs) {
    const Outcome o = run_one_fault(f.dev, f.v.fi, *f.job, nullptr, spec, gold.output,
                                    f.w->requirement(), 10'000'000);
    activated += o != Outcome::NotActivated;
  }
  // Every planned fault targets a profiled execution => all must activate.
  EXPECT_EQ(activated, static_cast<int>(specs.size()));
}

TEST(Injection, ZeroMaskIsAlwaysMasked) {
  Fixture f(make_cp());
  PlanOptions opt;
  opt.max_vars = 4;
  opt.masks_per_var = 1;
  auto specs = plan_faults(f.v.fi, f.pd, opt);
  const auto gold = golden_run(f.dev, f.v.fi, *f.job);
  for (auto& spec : specs) {
    spec.mask = 0;  // XOR with zero: fault has no effect
    const Outcome o = run_one_fault(f.dev, f.v.fi, *f.job, nullptr, spec, gold.output,
                                    f.w->requirement(), 10'000'000);
    EXPECT_EQ(o, Outcome::Masked);
  }
}

TEST(Injection, CampaignProducesAllCountsConsistently) {
  Fixture f(make_mri_q());
  PlanOptions opt;
  opt.max_vars = 10;
  opt.masks_per_var = 5;
  const auto specs = plan_faults(f.v.fi, f.pd, opt);
  const auto res = run_campaign(f.dev, f.v.fi, *f.job, nullptr, specs, f.w->requirement());
  EXPECT_EQ(res.per_fault.size(), specs.size());
  EXPECT_EQ(res.counts.activated() + res.counts.not_activated, specs.size());
  // Without detectors there can be no detected outcomes.
  EXPECT_EQ(res.counts.detected, 0u);
  EXPECT_EQ(res.counts.detected_masked, 0u);
}

TEST(Injection, FtDetectorsConvertUndetectedToDetected) {
  // The core claim: FI&FT coverage > plain-FI coverage.
  Fixture f(make_cp());
  PlanOptions opt;
  opt.max_vars = 12;
  opt.masks_per_var = 6;
  opt.seed = 5;
  opt.error_bits = 6;
  const auto fi_specs = plan_faults(f.v.fi, f.pd, opt);
  const auto fi = run_campaign(f.dev, f.v.fi, *f.job, nullptr, fi_specs, f.w->requirement());

  auto cb = core::make_configured_control_block(f.v.fift, f.pd);
  const auto fift_specs = plan_faults(f.v.fift, f.pd, opt);
  const auto fift =
      run_campaign(f.dev, f.v.fift, *f.job, cb.get(), fift_specs, f.w->requirement());

  EXPECT_GT(fift.counts.detected + fift.counts.detected_masked, 0u)
      << "Hauberk detectors must catch some injected faults";
  EXPECT_GE(fift.counts.coverage(), fi.counts.coverage());
}

TEST(Outcome, CountsArithmetic) {
  OutcomeCounts c;
  c.add(Outcome::Failure);
  c.add(Outcome::Masked);
  c.add(Outcome::Undetected);
  c.add(Outcome::Undetected);
  c.add(Outcome::NotActivated);
  EXPECT_EQ(c.activated(), 4u);
  EXPECT_DOUBLE_EQ(c.coverage(), 0.5);
  EXPECT_DOUBLE_EQ(c.ratio(c.failure), 0.25);
}

// --- memory & code faults (CPU rows of Fig. 1) ---

TEST(MemoryFault, RunsAndClassifies) {
  Fixture f(make_sad());
  const auto gold = golden_run(f.dev, f.v.baseline, *f.job);
  common::Rng rng(4);
  OutcomeCounts counts;
  for (int i = 0; i < 30; ++i)
    counts.add(run_one_memory_fault(f.dev, f.v.baseline, *f.job, rng, 1u << (i % 32),
                                    gold.output, f.w->requirement(), 10'000'000));
  EXPECT_EQ(counts.activated(), 30u);
}

TEST(CodeFault, InvalidMutantsAreFailures) {
  Fixture f(make_pns());
  kir::BytecodeProgram mutant = f.v.baseline;
  mutant.code[0].op = static_cast<kir::OpCode>(200);
  EXPECT_FALSE(validate_program(mutant));
  EXPECT_TRUE(validate_program(f.v.baseline));
}

TEST(CodeFault, JumpTargetAtProgramEndIsInvalid) {
  // Regression: a branch target of exactly code.size() used to pass
  // validation, but the interpreter then fetches one past the final Halt.
  Fixture f(make_pns());
  for (const kir::OpCode op : {kir::OpCode::Jmp, kir::OpCode::Jz}) {
    kir::BytecodeProgram mutant = f.v.baseline;
    mutant.code[0].op = op;
    mutant.code[0].aux = static_cast<std::uint32_t>(mutant.code.size());
    EXPECT_FALSE(validate_program(mutant)) << "target == code.size() is out of range";
    mutant.code[0].aux = static_cast<std::uint32_t>(mutant.code.size() - 1);
    EXPECT_TRUE(validate_program(mutant)) << "target of the final Halt is still in range";
  }
}

TEST(CodeFault, CampaignMostlyCrashesOrMasks) {
  Fixture f(make_pns());
  const auto gold = golden_run(f.dev, f.v.baseline, *f.job);
  common::Rng rng(9);
  OutcomeCounts counts;
  for (int i = 0; i < 60; ++i)
    counts.add(run_one_code_fault(f.dev, f.v.baseline, *f.job, rng, gold.output,
                                  f.w->requirement(), 5'000'000));
  EXPECT_EQ(counts.activated(), 60u);
  EXPECT_GT(counts.failure, 0u) << "bit flips in encodings must produce illegal instructions";
}

// --- baselines ---

TEST(RNaive, DetectsNothingFaultFreeAndDoublesCycles) {
  Fixture f(make_mri_q());
  auto single_args = f.job->setup(f.dev);
  const auto single = f.dev.launch(f.v.baseline, f.job->config(), single_args);
  ASSERT_EQ(single.status, gpusim::LaunchStatus::Ok);

  const auto rn = run_r_naive(f.dev, f.v.baseline, *f.job);
  EXPECT_TRUE(rn.completed);
  EXPECT_FALSE(rn.mismatch);
  EXPECT_GE(rn.total_cycles, 2 * single.cycles);
  EXPECT_LT(rn.total_cycles, 2 * single.cycles + 100000);
}

TEST(RNaive, DetectsDeviceFaultViaMismatch) {
  Fixture f(make_cp());
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Intermittent;
  fm.component = gpusim::DeviceFaultModel::Component::FPU;
  fm.mask = 0x7f000000;
  fm.period = 101;          // corrupts different ops across the two runs
  fm.duration_ops = 1u << 30;
  f.dev.install_fault(fm);
  const auto rn = run_r_naive(f.dev, f.v.baseline, *f.job);
  ASSERT_TRUE(rn.completed);
  EXPECT_TRUE(rn.mismatch);
}

TEST(RScatter, CompilesForMostProgramsButNotTpacf) {
  gpusim::DeviceProps props;
  for (const auto& w : hpc_suite()) {
    const auto sk = make_r_scatter(w->build_kernel(Scale::Tiny), props);
    if (w->name() == "TPACF") {
      EXPECT_FALSE(sk.compiles) << "TPACF uses >half shared memory (Section IX.A)";
      EXPECT_NE(sk.reason.find("shared memory"), std::string::npos);
    } else {
      EXPECT_TRUE(sk.compiles) << w->name();
      EXPECT_GT(sk.duplicated_defs, 0) << w->name();
    }
  }
}

TEST(RScatter, InstrumentedKernelPreservesSemantics) {
  auto w = make_cp();
  const auto ds = w->make_dataset(31, Scale::Tiny);
  gpusim::Device dev;
  auto job = w->make_job(ds);
  const auto base_prog = kir::lower(w->build_kernel(Scale::Tiny));
  auto args = job->setup(dev);
  const auto base = dev.launch(base_prog, job->config(), args);
  ASSERT_EQ(base.status, gpusim::LaunchStatus::Ok);
  const auto base_out = job->read_output(dev);

  const auto sk = make_r_scatter(w->build_kernel(Scale::Tiny), dev.props());
  ASSERT_TRUE(sk.compiles);
  const auto scat_prog = kir::lower(sk.kernel);
  args = job->setup(dev);
  const auto scat = dev.launch(scat_prog, job->config(), args);
  ASSERT_EQ(scat.status, gpusim::LaunchStatus::Ok);
  EXPECT_FALSE(scat.sdc_alarm);
  EXPECT_EQ(job->read_output(dev).words, base_out.words);
  // Scatter-duplicated work is cheaper than 2x but clearly above 1x.
  EXPECT_GT(scat.cycles, base.cycles * 140 / 100);
  EXPECT_LT(scat.cycles, base.cycles * 215 / 100);
}

TEST(Injection, Footnote1FpFaultCanCrashViaDataflowToAddress) {
  // Paper footnote 1: "if there is a data-flow from an FP variable to an
  // integer or a pointer variable (e.g., FP data is used to calculate a
  // memory address), a corrupted FP value can propagate to a control data
  // and cause a failure."  Build exactly that kernel and corrupt the FP
  // variable with a high-exponent mask: the saturating float->int cast
  // produces a huge offset and the access faults.
  kir::KernelBuilder kb("footnote1");
  auto data = kb.param_ptr("data");
  auto out = kb.param_ptr("out");
  auto scale = kb.param_f32("scale");
  auto fpos = kb.let("fpos", scale * kir::to_f32(kb.thread_linear()));  // FP index
  auto idx = kb.let("idx", kir::to_i32(fpos));                          // FP -> int
  kb.store(out + kb.thread_linear(), kb.load_f32(data + idx));          // int -> address

  core::TranslateOptions topt;
  topt.mode = core::LibMode::FI;
  const auto fi_prog = kir::lower(core::translate(kb.build(), topt));

  gpusim::Device dev;
  const auto da = dev.mem().alloc(64, gpusim::AllocClass::F32Data);
  const auto oa = dev.mem().alloc(32, gpusim::AllocClass::F32Data);
  const kir::Value args[] = {kir::Value::ptr(da), kir::Value::ptr(oa), kir::Value::f32(1.5f)};

  // Locate fpos's live-window FI site.
  std::uint32_t site_id = 0;
  bool found = false;
  for (const auto& s : fi_prog.fi_sites)
    if (s.var_name == "fpos" && !s.dead_window) {
      site_id = s.site_id;
      found = true;
    }
  ASSERT_TRUE(found);

  FaultSpec spec;
  spec.site_id = site_id;
  spec.thread = 3;
  spec.occurrence = 1;
  spec.mask = 0x3f800000;  // exponent wreckage: fpos becomes astronomically large
  InjectingHooks hooks(fi_prog, nullptr);
  hooks.arm(spec);
  gpusim::LaunchOptions opts;
  opts.hooks = &hooks;
  const auto res = dev.launch(fi_prog, gpusim::LaunchConfig{1, 1, 8, 1}, args, opts);
  EXPECT_TRUE(hooks.activated());
  EXPECT_EQ(res.status, gpusim::LaunchStatus::CrashOutOfBounds)
      << "the corrupted FP value must propagate to the address and fault";
}
