// Unit tests for the kernel IR: builder, analysis (virtual variables, loop
// dataflow, CBD, self-accumulators, trip counts), lowering, and printing.
#include <gtest/gtest.h>

#include "kir/analysis.hpp"
#include "kir/ast.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"
#include "kir/printer.hpp"

using namespace hauberk::kir;

namespace {

/// A miniature coulombic-potential style kernel modeled on Fig. 9: a loop
/// over atoms accumulating two energies, with non-loop setup code.
struct CpLike {
  Kernel kernel;
  VarId energy1 = kInvalidVar, energy2 = kInvalidVar, dy = kInvalidVar;

  static CpLike make() {
    CpLike r;
    KernelBuilder kb("cp_like");
    auto atoms = kb.param_ptr("atominfo");   // 4 words per atom: x, y, z, q
    auto numatoms = kb.param_i32("numatoms");
    auto out = kb.param_ptr("energyout");
    auto spacing = kb.param_f32("gridspacing");

    auto coorx = kb.let("coorx", to_f32(kb.tid_x()) * spacing);
    auto coory = kb.let("coory", to_f32(kb.bid_x()) * spacing);
    auto e1 = kb.let("energyx1", f32c(0.0f));
    auto e2 = kb.let("energyx2", f32c(0.0f));
    kb.for_loop("atomid", i32c(0), numatoms, [&](ExprH atomid) {
      auto base = kb.let("abase", atoms + atomid * i32c(4));
      auto dx1 = kb.let("dx1", kb.load_f32(base) - coorx);
      auto dy = kb.let("dy", kb.load_f32(base + i32c(1)) - coory);
      auto dz2 = kb.let("dyz2", dy * dy + kb.load_f32(base + i32c(2)));
      auto q = kb.let("q", kb.load_f32(base + i32c(3)));
      auto dx2 = kb.let("dx2", dx1 + spacing);
      auto r1 = kb.let("r1", q * rsqrt_(dx1 * dx1 + dz2));
      auto r2 = kb.let("r2", q * rsqrt_(dx2 * dx2 + dz2));
      kb.assign(e1, e1 + r1);
      kb.assign(e2, e2 + r2);
      r.dy = dy.var_id();
    });
    kb.store(out + kb.tid_x(), e1);
    kb.store(out + kb.tid_x() + i32c(1024), e2);
    r.energy1 = e1.var_id();
    r.energy2 = e2.var_id();
    r.kernel = kb.build();
    return r;
  }
};

}  // namespace

// --- value / expr basics ---

TEST(Value, Accessors) {
  EXPECT_EQ(Value::f32(2.5f).as_f32(), 2.5f);
  EXPECT_EQ(Value::i32(-7).as_i32(), -7);
  EXPECT_EQ(Value::ptr(123).as_ptr(), 123u);
  EXPECT_EQ(Value::i32(-7).as_double(), -7.0);
}

TEST(Builder, TypePromotionIntToFloat) {
  auto e = (i32c(2) + f32c(1.5f));
  EXPECT_EQ(e.type(), DType::F32);
}

TEST(Builder, ComparisonYieldsInt) {
  auto e = (f32c(1.0f) < f32c(2.0f));
  EXPECT_EQ(e.type(), DType::I32);
}

TEST(Builder, PointerArithmeticStaysPointer) {
  KernelBuilder kb("k");
  auto p = kb.param_ptr("p");
  EXPECT_EQ((p + i32c(4)).type(), DType::PTR);
}

TEST(Builder, AssignToNonVarThrows) {
  KernelBuilder kb("k");
  EXPECT_THROW(kb.assign(f32c(1.0f), f32c(2.0f)), std::logic_error);
}

TEST(Builder, BuildTwiceThrows) {
  KernelBuilder kb("k");
  (void)kb.build();
  EXPECT_THROW((void)kb.build(), std::logic_error);
}

TEST(CloneExpr, ProducesEqualButDistinctTree) {
  auto e = (f32c(1.0f) + f32c(2.0f)).node();
  auto c = clone_expr(e);
  EXPECT_NE(e.get(), c.get());
  EXPECT_NE(e->a.get(), c->a.get());
  EXPECT_EQ(c->bin, BinOp::Add);
}

// --- analysis ---

TEST(Analysis, NonLoopVarsHaveDepthZero) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  EXPECT_EQ(an.facts(cp.energy1).def_depth, 0);
  EXPECT_EQ(an.facts(cp.energy2).def_depth, 0);
  EXPECT_TRUE(an.facts(cp.energy1).assigned_in_loop);
}

TEST(Analysis, LoopVarsHaveDepthOne) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  EXPECT_EQ(an.facts(cp.dy).def_depth, 1);
  EXPECT_EQ(an.facts(cp.dy).def_loop, 0u);
}

TEST(Analysis, LoopStructure) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  ASSERT_EQ(an.loops().size(), 1u);
  const LoopNode& ln = an.loop(0);
  EXPECT_TRUE(ln.is_for);
  EXPECT_EQ(ln.depth, 1);
  EXPECT_EQ(ln.parent, kNoLoop);
  EXPECT_FALSE(ln.lets_inside.empty());
}

TEST(Analysis, SelfAccumulatorsDetected) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  auto sa = an.self_accumulators(0);
  EXPECT_TRUE(sa.count(cp.energy1));
  EXPECT_TRUE(sa.count(cp.energy2));
  EXPECT_FALSE(sa.count(cp.dy));
}

TEST(Analysis, TripCountDerivableForSimpleFor) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  auto trip = an.derive_trip_count(0);
  ASSERT_NE(trip, nullptr);
  // max(0, numatoms - 0)
  EXPECT_EQ(trip->kind, ExprKind::Binary);
  EXPECT_EQ(trip->bin, BinOp::Max);
}

TEST(Analysis, TripCountNotDerivableForWhile) {
  KernelBuilder kb("w");
  auto n = kb.param_i32("n");
  auto i = kb.let("i", i32c(0));
  kb.while_loop([&] { return i < n; }, [&] { kb.assign(i, i + i32c(1)); });
  Kernel k = kb.build();
  Analysis an(k);
  EXPECT_EQ(an.derive_trip_count(0), nullptr);
}

TEST(Analysis, TripCountNotDerivableWhenBoundMutated) {
  KernelBuilder kb("m");
  auto n = kb.let("n", i32c(10));
  kb.for_loop("i", i32c(0), ExprH(Expr::make_var(n.var_id(), DType::I32)),
              [&](ExprH) { kb.assign(n, n - i32c(1)); });
  Kernel k = kb.build();
  Analysis an(k);
  EXPECT_EQ(an.derive_trip_count(0), nullptr);
}

TEST(Analysis, TripCountWithMinLimit) {
  // for (i = 0; i < min(A, B); i++): the paper's two-condition loop form.
  KernelBuilder kb("mn");
  auto a = kb.param_i32("A");
  auto b = kb.param_i32("B");
  kb.for_loop("i", i32c(0), min_(a, b), [&](ExprH) {});
  Kernel k = kb.build();
  Analysis an(k);
  ASSERT_NE(an.derive_trip_count(0), nullptr);
}

TEST(LoopDataflow, Fig9StyleSelection) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  LoopDataflow df = an.loop_dataflow(0);

  // Both energies are loop outputs.
  EXPECT_NE(std::count(df.outputs.begin(), df.outputs.end(), cp.energy1), 0);
  EXPECT_NE(std::count(df.outputs.begin(), df.outputs.end(), cp.energy2), 0);

  // energyx2 has a strictly larger cumulative backward dependency than
  // energyx1 (dx2 adds one more op to its chain), mirroring Fig. 9's 13 > 12.
  EXPECT_GT(df.cbd(cp.energy2), df.cbd(cp.energy1));

  // dy feeds both energies.
  auto fwd = df.forward_set(cp.dy);
  EXPECT_TRUE(fwd.count(cp.energy1));
  EXPECT_TRUE(fwd.count(cp.energy2));
}

TEST(LoopDataflow, BackwardSetIncludesChain) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  LoopDataflow df = an.loop_dataflow(0);
  auto back = df.backward_set(cp.energy2);
  EXPECT_TRUE(back.count(cp.dy));
  EXPECT_TRUE(back.count(cp.energy2));
}

TEST(ProtectionPlan, SelfAccumulatorsSelectedFirstWithoutExtraCode) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  auto plan = an.plan_loop_protection(0, 1);
  ASSERT_EQ(plan.selected.size(), 1u);
  // A self-accumulating variable must be preferred (Section V.B step (i)).
  EXPECT_TRUE(plan.self_accumulating.count(plan.selected[0]));
  ASSERT_NE(plan.trip_count, nullptr);
}

TEST(ProtectionPlan, MaxvarTwoProtectsIndependentVars) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  auto plan = an.plan_loop_protection(0, 2);
  EXPECT_EQ(plan.selected.size(), 2u);
  EXPECT_NE(plan.selected[0], plan.selected[1]);
}

TEST(ProtectionPlan, ExcludesIteratorAndPointers) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  auto plan = an.plan_loop_protection(0, 100);
  for (VarId v : plan.selected) {
    EXPECT_FALSE(an.facts(v).is_loop_iterator) << cp.kernel.vars[v].name;
    EXPECT_NE(cp.kernel.vars[v].type, DType::PTR) << cp.kernel.vars[v].name;
  }
}

// --- lowering ---

TEST(Lower, ProducesHaltTerminatedCode) {
  auto cp = CpLike::make();
  auto p = lower(cp.kernel);
  ASSERT_FALSE(p.code.empty());
  EXPECT_EQ(p.code.back().op, OpCode::Halt);
  EXPECT_EQ(p.num_params, 4u);
  EXPECT_GT(p.num_slots, p.num_params + p.num_named);
}

TEST(Lower, LoopInstructionsAreFlagged) {
  auto cp = CpLike::make();
  auto p = lower(cp.kernel);
  int in_loop = 0, outside = 0;
  for (const auto& in : p.code)
    ((in.flags & kInstrInLoop) ? in_loop : outside)++;
  EXPECT_GT(in_loop, 10);
  EXPECT_GT(outside, 5);
}

TEST(Lower, TempSlotsAreReused) {
  // Register demand must track expression *depth*, not expression size:
  // a long sum chain (((a+b)+c)+... must not allocate one temp per term.
  KernelBuilder kb("chain");
  auto x = kb.param_f32("x");
  ExprH acc = f32c(0.0f);
  for (int i = 0; i < 40; ++i) acc = acc + x;
  kb.let("y", acc);
  Kernel k = kb.build();
  auto p = lower(k);
  EXPECT_LT(p.num_slots, 10u);
}

TEST(Lower, DisassembleMentionsKernelName) {
  auto cp = CpLike::make();
  auto p = lower(cp.kernel);
  EXPECT_NE(disassemble(p).find("cp_like"), std::string::npos);
}

// --- printer ---

TEST(Printer, KernelRoundTripMentionsConstructs) {
  auto cp = CpLike::make();
  const std::string s = print_kernel(cp.kernel);
  EXPECT_NE(s.find("for ("), std::string::npos);
  EXPECT_NE(s.find("energyx2"), std::string::npos);
  EXPECT_NE(s.find("rsqrtf"), std::string::npos);
}

TEST(Printer, DataflowGraphShowsCbd) {
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  const std::string s = print_loop_dataflow(cp.kernel, an.loop_dataflow(0));
  EXPECT_NE(s.find("cbd="), std::string::npos);
  EXPECT_NE(s.find("OUTPUT"), std::string::npos);
}

TEST(CloneKernel, DeepCopiesStatements) {
  auto cp = CpLike::make();
  Kernel c = clone_kernel(cp.kernel);
  ASSERT_EQ(c.body.size(), cp.kernel.body.size());
  EXPECT_NE(c.body[0].get(), cp.kernel.body[0].get());
  // Mutating the clone must not affect the original.
  c.body.clear();
  EXPECT_FALSE(cp.kernel.body.empty());
}

// --- deeper analysis properties ---

TEST(Analysis, NestedLoopStructureAndMembership) {
  KernelBuilder kb("nested");
  auto n = kb.param_i32("n");
  auto acc = kb.let("acc", i32c(0));
  VarId inner_var = kInvalidVar;
  kb.for_loop("i", i32c(0), n, [&](ExprH i) {
    kb.for_loop("j", i32c(0), n, [&](ExprH j) {
      auto x = kb.let("x", i * j);
      inner_var = x.var_id();
      kb.assign(acc, acc + x);
    });
  });
  Kernel k = kb.build();
  Analysis an(k);
  ASSERT_EQ(an.loops().size(), 2u);
  const LoopNode& outer = an.loop(0);
  const LoopNode& inner = an.loop(1);
  EXPECT_EQ(outer.parent, kNoLoop);
  EXPECT_EQ(inner.parent, 0u);
  EXPECT_EQ(inner.depth, 2);
  // The inner Let belongs to both loops' bodies.
  EXPECT_NE(std::count(outer.lets_inside.begin(), outer.lets_inside.end(), inner_var), 0);
  EXPECT_NE(std::count(inner.lets_inside.begin(), inner.lets_inside.end(), inner_var), 0);
}

TEST(Analysis, StridedLoopTripCountDerivable) {
  // for (i = tid; i < n; i += stride): the grid-strided idiom.
  KernelBuilder kb("stride");
  auto n = kb.param_i32("n");
  auto tid = kb.let("tid", kb.thread_linear());
  auto stride = kb.let("stride", kb.bdim_x() * kb.gdim_x());
  auto acc = kb.let("acc", f32c(0.0f));
  kb.for_loop_step("i", tid, n, stride, [&](ExprH) { kb.assign(acc, acc + f32c(1.0f)); });
  Kernel k = kb.build();
  Analysis an(k);
  ASSERT_NE(an.derive_trip_count(0), nullptr);
}

TEST(Analysis, SelfAccumulatorRequiresTopLevelAddOrSub) {
  KernelBuilder kb("sa");
  auto n = kb.param_i32("n");
  auto mul = kb.let("mul", f32c(1.0f));
  auto add = kb.let("add", f32c(0.0f));
  auto scaled = kb.let("scaled", f32c(0.0f));
  kb.for_loop("i", i32c(0), n, [&](ExprH) {
    kb.assign(mul, mul * f32c(1.01f));            // multiplicative: not self-acc
    kb.assign(add, add + f32c(2.0f));             // additive: self-acc
    kb.assign(scaled, scaled * f32c(0.5f) + f32c(1.0f));  // affine: not self-acc
  });
  Kernel k = kb.build();
  Analysis an(k);
  const auto sa = an.self_accumulators(0);
  EXPECT_FALSE(sa.count(mul.var_id()));
  EXPECT_TRUE(sa.count(add.var_id()));
  EXPECT_FALSE(sa.count(scaled.var_id()));
}

TEST(LoopDataflow, CbdGrowsWithDependencyChainLength) {
  // Property: appending one more dependent definition to a chain strictly
  // increases the chain head's CBD.
  auto build = [](int chain) {
    KernelBuilder kb("chain");
    auto n = kb.param_i32("n");
    auto out = kb.param_ptr("out");
    VarId head = kInvalidVar;
    kb.for_loop("i", i32c(0), n, [&](ExprH i) {
      ExprH cur = kb.let("c0", to_f32(i) + f32c(1.0f));
      for (int c = 1; c < chain; ++c)
        cur = kb.let("c" + std::to_string(c), cur * f32c(1.5f));
      auto sink = kb.let("sink", cur + f32c(0.25f));
      head = sink.var_id();
      kb.store(out + i, sink);
    });
    Kernel k = kb.build();
    Analysis an(k);
    return an.loop_dataflow(0).cbd(head);
  };
  int prev = build(1);
  for (int chain = 2; chain <= 5; ++chain) {
    const int cur = build(chain);
    EXPECT_GT(cur, prev) << "chain " << chain;
    prev = cur;
  }
}

TEST(ProtectionPlan, SelectionCoversForwardDependents) {
  // Once a variable is selected, everything feeding it must be excluded
  // from later selections (they are already covered).
  auto cp = CpLike::make();
  Analysis an(cp.kernel);
  auto plan = an.plan_loop_protection(0, 3);
  LoopDataflow df = an.loop_dataflow(0);
  for (std::size_t a = 0; a < plan.selected.size(); ++a) {
    const auto back = df.backward_set(plan.selected[a]);
    for (std::size_t b = a + 1; b < plan.selected.size(); ++b)
      EXPECT_FALSE(back.count(plan.selected[b]))
          << cp.kernel.vars[plan.selected[b]].name << " feeds "
          << cp.kernel.vars[plan.selected[a]].name;
  }
}

TEST(Analysis, WhileLoopBodyVariablesAreLoopVars) {
  KernelBuilder kb("wh2");
  auto n = kb.param_i32("n");
  auto i = kb.let("i", i32c(0));
  VarId tmp = kInvalidVar;
  kb.while_loop([&] { return i < n; }, [&] {
    auto t = kb.let("t", i * i32c(3));
    tmp = t.var_id();
    kb.assign(i, i + i32c(1));
  });
  Kernel k = kb.build();
  Analysis an(k);
  const auto df = an.loop_dataflow(0);
  EXPECT_NE(std::count(df.loop_vars.begin(), df.loop_vars.end(), tmp), 0);
  EXPECT_EQ(an.derive_trip_count(0), nullptr);
}
