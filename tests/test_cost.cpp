// Static cycle-estimator tests (hauberk/cost.hpp).
//
// The estimator transfers one measured baseline run's per-pc execution
// counts onto any instrumented lowering of the same kernel through the
// stmt_origin provenance table, then folds them against the shared gpusim
// cost vector.  Two accuracy contracts are pinned here:
//
//   * identity — estimating the profiled baseline itself reproduces the
//     measured cycles exactly (same counts, same cost vector), and
//   * transfer — estimating the full-Hauberk FT build lands within 10% of
//     the simulator on every one of the 12 workloads (the acceptance bound
//     kirtune's predictions are trusted to).
//
// Plus the cost-anatomy arithmetic (CostBreakdown totals, Measurement
// exclusion) and the AnalysisManager external-slot caching that keeps
// repeated per-pipeline consumers from re-lowering.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/cost.hpp"
#include "gpusim/device.hpp"
#include "hauberk/cost.hpp"
#include "hauberk/translator.hpp"
#include "kir/analysis_manager.hpp"
#include "kir/bytecode.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

struct WorkloadEntry {
  std::unique_ptr<workloads::Workload> w;
  bool cpu = false;
};

std::vector<WorkloadEntry> all_workloads() {
  std::vector<WorkloadEntry> out;
  for (auto& w : workloads::hpc_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::graphics_suite()) out.push_back({std::move(w), false});
  for (auto& w : workloads::cpu_suite()) out.push_back({std::move(w), true});
  out.push_back({workloads::make_cpu_matmul(), true});  // not in cpu_suite
  return out;
}

gpusim::Device make_device(bool cpu) {
  gpusim::DeviceProps props;
  if (cpu) props.memory_model = gpusim::MemoryModel::PagedCpu;
  return gpusim::Device(props);
}

}  // namespace

TEST(CostEstimator, BaselineEstimateIsExactOnEveryWorkload) {
  for (const auto& e : all_workloads()) {
    auto dev = make_device(e.cpu);
    const auto kernel = e.w->build_kernel(workloads::Scale::Tiny);
    const auto ds = e.w->make_dataset(1, workloads::Scale::Tiny);
    auto job = e.w->make_job(ds);
    const auto profile = cost::measure_profile(dev, kernel, *job);
    ASSERT_GT(profile.measured_cycles, 0u) << e.w->name();
    EXPECT_EQ(cost::estimate_program_cycles(profile.baseline, profile),
              profile.measured_cycles)
        << e.w->name() << ": same counts x same cost vector must be an identity";
  }
}

TEST(CostEstimator, FtBuildWithinTenPercentOnEveryWorkload) {
  for (const auto& e : all_workloads()) {
    auto dev = make_device(e.cpu);
    const auto kernel = e.w->build_kernel(workloads::Scale::Tiny);
    const auto ds = e.w->make_dataset(1, workloads::Scale::Tiny);
    auto job = e.w->make_job(ds);
    const auto profile = cost::measure_profile(dev, kernel, *job);

    core::TranslateOptions opt;
    opt.mode = core::LibMode::FT;
    const auto prog = kir::lower(core::translate(kernel, opt));
    const std::uint64_t predicted = cost::estimate_program_cycles(prog, profile);

    auto args = job->setup(dev);
    const auto res = dev.launch(prog, job->config(), args);
    ASSERT_EQ(res.status, gpusim::LaunchStatus::Ok) << e.w->name();
    const double err = std::fabs(static_cast<double>(predicted) -
                                 static_cast<double>(res.cycles)) /
                       static_cast<double>(res.cycles);
    EXPECT_LE(err, 0.10) << e.w->name() << ": predicted " << predicted << " vs measured "
                         << res.cycles;

    // The plan-level convenience entry must agree with the program-level one
    // for the trivial (full-Hauberk) plan.
    EXPECT_EQ(cost::estimate_kernel_cycles(kernel, {}, profile), predicted) << e.w->name();
  }
}

TEST(CostEstimator, InstrumentationNeverEstimatesBelowBaseline) {
  for (const auto& e : all_workloads()) {
    auto dev = make_device(e.cpu);
    const auto kernel = e.w->build_kernel(workloads::Scale::Tiny);
    const auto ds = e.w->make_dataset(1, workloads::Scale::Tiny);
    auto job = e.w->make_job(ds);
    const auto profile = cost::measure_profile(dev, kernel, *job);
    EXPECT_GE(cost::estimate_kernel_cycles(kernel, {}, profile), profile.measured_cycles)
        << e.w->name() << ": detectors only add instructions";
  }
}

TEST(CostBreakdown, TotalsSumClassesAndExcludeMeasurement) {
  const auto suite = workloads::hpc_suite();
  core::TranslateOptions opt;
  opt.mode = core::LibMode::FIFT;  // FI hooks give a nonzero Measurement class
  const auto prog =
      kir::lower(core::translate(suite.front()->build_kernel(workloads::Scale::Tiny), opt));
  const gpusim::CostModel cm;
  const auto bd = gpusim::static_breakdown(prog, cm, /*regs_per_thread=*/28, /*ecc=*/false);

  std::uint64_t instrs = 0, cycles = 0;
  for (const gpusim::CostClass c :
       {gpusim::CostClass::Program, gpusim::CostClass::Dup, gpusim::CostClass::Check,
        gpusim::CostClass::DetectorAux}) {
    instrs += bd.at(c, false);
    cycles += bd.at(c, true);
  }
  EXPECT_EQ(bd.total_instructions(), instrs) << "Measurement must not count";
  EXPECT_EQ(bd.total_cycles(), cycles);
  EXPECT_GT(bd.at(gpusim::CostClass::Measurement, false), 0u)
      << "a FIFT build carries FI hooks";
  EXPECT_EQ(bd.at(gpusim::CostClass::Measurement, true), 0u) << "hooks are free";
  EXPECT_GT(bd.at(gpusim::CostClass::Program, false), 0u);
  EXPECT_GT(bd.at(gpusim::CostClass::Check, false), 0u);
}

TEST(CostBreakdown, WeightedBreakdownMatchesLaunchCycles) {
  // weighted_breakdown folded over the interpreter's own counts must account
  // for exactly the cycles the launch reported — same table, same counts.
  const auto suite = workloads::hpc_suite();
  const auto& w = *suite.front();
  gpusim::Device dev;
  const auto prog = kir::lower(w.build_kernel(workloads::Scale::Tiny));
  const auto ds = w.make_dataset(1, workloads::Scale::Tiny);
  auto job = w.make_job(ds);
  auto args = job->setup(dev);
  std::vector<std::uint64_t> counts;
  gpusim::LaunchOptions opts;
  opts.instr_exec_counts = &counts;
  const auto res = dev.launch(prog, job->config(), args, opts);
  ASSERT_EQ(res.status, gpusim::LaunchStatus::Ok);
  const auto bd = gpusim::weighted_breakdown(prog, dev.cost_model(),
                                             dev.props().regs_per_thread,
                                             /*ecc=*/false, counts);
  EXPECT_EQ(bd.total_cycles(), res.cycles);
}

TEST(CostBreakdown, StaticAnatomyIsCachedInTheAnalysisManager) {
  const auto suite = workloads::hpc_suite();
  const auto kernel = suite.front()->build_kernel(workloads::Scale::Tiny);
  kir::AnalysisManager am(kernel);
  const auto a = cost::kernel_static_breakdown(kernel, am);
  const auto before = am.stats();
  const auto b = cost::kernel_static_breakdown(kernel, am);
  const auto after = am.stats();
  EXPECT_EQ(a.total_cycles(), b.total_cycles());
  EXPECT_EQ(a.total_instructions(), b.total_instructions());
  EXPECT_GT(a.total_cycles(), 0u);
  EXPECT_EQ(after.misses, before.misses) << "second lookup must hit the cached slot";
  EXPECT_GT(after.hits, before.hits);
}
