// Crash-recovery and determinism tests for the sharded, checkpointed
// campaign service (swifi/service.hpp).
//
// The contract under test: a campaign's final outcome counts, histograms,
// remark digest and result-log bytes are a pure function of (program, specs,
// requirement) — invariant across worker counts, shard splits, and any
// kill/resume history.  Kills are simulated with the on_checkpoint hook,
// which throws right after a periodic checkpoint lands on disk; that leaves
// exactly the on-disk state a SIGKILL at that instant would.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "hauberk/checkpoint.hpp"
#include "hauberk/runtime.hpp"
#include "swifi/resultlog.hpp"
#include "swifi/service.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::swifi;
using namespace hauberk::workloads;

namespace {

struct Fixture {
  std::unique_ptr<Workload> w;
  core::KernelVariants v;
  Dataset ds;
  core::ProfileData pd;
  std::vector<FaultSpec> specs;

  explicit Fixture(std::unique_ptr<Workload> wl, bool with_ft = false, std::uint64_t seed = 7)
      : w(std::move(wl)),
        v(core::build_variants(w->build_kernel(Scale::Tiny))),
        ds(w->make_dataset(21, Scale::Tiny)) {
    gpusim::Device dev;
    auto job = w->make_job(ds);
    pd = core::profile(dev, v, {job.get()});
    PlanOptions opt;
    opt.max_vars = 8;
    opt.masks_per_var = 4;
    opt.seed = seed;
    specs = plan_faults(with_ft ? v.fift : v.fi, pd, opt);
  }

  [[nodiscard]] const kir::BytecodeProgram& prog(bool with_ft = false) const {
    return with_ft ? v.fift : v.fi;
  }

  [[nodiscard]] WorkerContextFactory factory(bool with_cb = false) const {
    return [this, with_cb] {
      WorkerContext ctx;
      ctx.device = std::make_unique<gpusim::Device>();
      ctx.job = w->make_job(ds);
      if (with_cb) ctx.cb = core::make_configured_control_block(v.fift, pd);
      return ctx;
    };
  }

  /// Like factory(), but every worker device carries hardware ECC on global
  /// memory.  All four engines then route loads through the EDC check path,
  /// so this exercises the protected datapath under the full service
  /// machinery (sharding, checkpoints, result logs).
  [[nodiscard]] WorkerContextFactory protected_factory(gpusim::ecc::Scheme scheme) const {
    return [this, scheme] {
      WorkerContext ctx;
      gpusim::DeviceProps props;
      props.protection = scheme;
      ctx.device = std::make_unique<gpusim::Device>(props);
      ctx.job = w->make_job(ds);
      return ctx;
    };
  }
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "hauberk_service_" + name;
}

void expect_same_aggregates(const ServiceResult& a, const ServiceResult& b,
                            const char* what) {
  EXPECT_EQ(a.counts.failure, b.counts.failure) << what;
  EXPECT_EQ(a.counts.masked, b.counts.masked) << what;
  EXPECT_EQ(a.counts.detected_masked, b.counts.detected_masked) << what;
  EXPECT_EQ(a.counts.detected, b.counts.detected) << what;
  EXPECT_EQ(a.counts.undetected, b.counts.undetected) << what;
  EXPECT_EQ(a.counts.not_activated, b.counts.not_activated) << what;
  EXPECT_EQ(a.counts.ecc_corrected, b.counts.ecc_corrected) << what;
  EXPECT_EQ(a.counts.ecc_uncorrectable, b.counts.ecc_uncorrectable) << what;
  EXPECT_TRUE(a.site_hist == b.site_hist) << what;
  EXPECT_TRUE(a.sdc_site_hist == b.sdc_site_hist) << what;
  EXPECT_EQ(a.remark_digest, b.remark_digest) << what;
  EXPECT_EQ(a.config_digest, b.config_digest) << what;
}

/// The crash-recovery driver: run one shard to completion, simulating a kill
/// right after every k-th periodic checkpoint (the hook throws once per run
/// instance), resuming after each kill.  Returns the final completed result.
struct CrashInjected : std::runtime_error {
  CrashInjected() : std::runtime_error("injected crash") {}
};

ServiceResult run_with_crashes(const Fixture& f, ServiceConfig cfg, bool crash_every_ckpt,
                               int& crashes) {
  crashes = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    ServiceConfig attempt = cfg;
    attempt.resume = cycle > 0;
    if (crash_every_ckpt) {
      auto armed = std::make_shared<bool>(true);
      attempt.on_checkpoint = [armed](const CampaignCheckpoint&) {
        if (*armed) {
          *armed = false;  // one kill per process incarnation
          throw CrashInjected();
        }
      };
    }
    CampaignService service(attempt);
    try {
      return service.run(f.prog(), f.factory(), f.specs, f.w->requirement());
    } catch (const CrashInjected&) {
      ++crashes;
    }
  }
  ADD_FAILURE() << "kill/resume cycle did not converge in 100 attempts";
  return {};
}

}  // namespace

TEST(CampaignService, MatchesCampaignExecutor) {
  Fixture f(make_cp());
  ASSERT_FALSE(f.specs.empty());

  CampaignExecutor ex(2);
  const auto ref = ex.run(f.prog(), f.factory(), f.specs, f.w->requirement());

  ServiceConfig cfg;
  cfg.workers = 2;
  CampaignService service(cfg);
  const auto res = service.run(f.prog(), f.factory(), f.specs, f.w->requirement());

  EXPECT_EQ(res.counts.failure, ref.counts.failure);
  EXPECT_EQ(res.counts.masked, ref.counts.masked);
  EXPECT_EQ(res.counts.detected_masked, ref.counts.detected_masked);
  EXPECT_EQ(res.counts.detected, ref.counts.detected);
  EXPECT_EQ(res.counts.undetected, ref.counts.undetected);
  EXPECT_EQ(res.counts.not_activated, ref.counts.not_activated);
  EXPECT_EQ(res.shard_trials, f.specs.size());
  EXPECT_EQ(res.trials_run, f.specs.size());
  EXPECT_EQ(res.site_hist.total(), f.specs.size());
}

TEST(CampaignService, WorkerCountInvariantIncludingLogBytes) {
  Fixture f(make_cp());
  ServiceConfig base;
  base.workers = 1;
  base.resultlog_path = tmp_path("wc_ref.log");
  CampaignService one(base);
  const auto ref = one.run(f.prog(), f.factory(), f.specs, f.w->requirement());
  const auto ref_bytes = read_bytes(base.resultlog_path);
  ASSERT_FALSE(ref_bytes.empty());

  for (const int workers : {2, 8}) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.resultlog_path = tmp_path("wc_" + std::to_string(workers) + ".log");
    CampaignService service(cfg);
    const auto res = service.run(f.prog(), f.factory(), f.specs, f.w->requirement());
    expect_same_aggregates(ref, res, "worker invariance");
    EXPECT_EQ(read_bytes(cfg.resultlog_path), ref_bytes)
        << "result log must be byte-identical at " << workers << " workers";
  }
}

TEST(CampaignService, ShardMergeMatchesSingleShot) {
  Fixture f(make_cp());
  ServiceConfig ref_cfg;
  ref_cfg.workers = 2;
  ref_cfg.resultlog_path = tmp_path("merge_ref.log");
  CampaignService ref_service(ref_cfg);
  const auto ref = ref_service.run(f.prog(), f.factory(), f.specs, f.w->requirement());
  const auto ref_log = read_result_log(ref_cfg.resultlog_path);

  for (const std::uint32_t K : {2u, 4u}) {
    std::vector<ResultLogData> shard_logs;
    ServiceResult merged;
    std::uint64_t shard_sum = 0;
    for (std::uint32_t i = 0; i < K; ++i) {
      ServiceConfig cfg;
      cfg.workers = 2;
      cfg.shards = K;
      cfg.shard_index = i;
      cfg.resultlog_path =
          tmp_path("merge_" + std::to_string(K) + "_" + std::to_string(i) + ".log");
      CampaignService service(cfg);
      const auto res = service.run(f.prog(), f.factory(), f.specs, f.w->requirement());
      shard_sum += res.shard_trials;
      shard_logs.push_back(read_result_log(cfg.resultlog_path));
      if (i == 0)
        merged = res;
      else
        merged.merge(res);
    }
    EXPECT_EQ(shard_sum, f.specs.size()) << "shards must partition the campaign";
    expect_same_aggregates(ref, merged, "shard merge invariance");

    const auto log = merge_result_logs(shard_logs);
    ASSERT_EQ(log.records.size(), ref_log.records.size());
    for (std::size_t i = 0; i < log.records.size(); ++i)
      EXPECT_EQ(log.records[i], ref_log.records[i]) << "K=" << K << " record " << i;
  }
}

TEST(CampaignService, KillAfterEveryCheckpointResumesByteIdentical) {
  Fixture f(make_cp());
  // Uninterrupted single-shot reference.
  ServiceConfig ref_cfg;
  ref_cfg.workers = 2;
  ref_cfg.resultlog_path = tmp_path("kill_ref.log");
  CampaignService ref_service(ref_cfg);
  const auto ref = ref_service.run(f.prog(), f.factory(), f.specs, f.w->requirement());
  const auto ref_log = read_result_log(ref_cfg.resultlog_path);

  struct Config {
    std::uint32_t shards;
    int workers;
  };
  for (const Config c : {Config{1, 2}, Config{2, 2}, Config{4, 2}, Config{1, 1}, Config{1, 8}}) {
    std::vector<ResultLogData> shard_logs;
    ServiceResult merged;
    const std::string tag = std::to_string(c.shards) + "s" + std::to_string(c.workers) + "w";
    for (std::uint32_t i = 0; i < c.shards; ++i) {
      ServiceConfig cfg;
      cfg.workers = c.workers;
      cfg.shards = c.shards;
      cfg.shard_index = i;
      cfg.checkpoint_every = 5;
      cfg.checkpoint_path = tmp_path("kill_" + tag + "_" + std::to_string(i) + ".ckpt");
      cfg.resultlog_path = tmp_path("kill_" + tag + "_" + std::to_string(i) + ".log");
      int crashes = 0;
      const auto res = run_with_crashes(f, cfg, /*crash_every_ckpt=*/true, crashes);
      EXPECT_GT(crashes, 0) << tag << ": the crash harness must actually crash";
      EXPECT_EQ(res.trials_run + res.trials_resumed, res.shard_trials) << tag;
      EXPECT_GT(res.trials_resumed, 0u) << tag << ": final cycle must be a resume";
      shard_logs.push_back(read_result_log(cfg.resultlog_path));
      if (i == 0)
        merged = res;
      else
        merged.merge(res);
    }
    expect_same_aggregates(ref, merged, tag.c_str());
    const auto log = c.shards == 1 ? shard_logs[0] : merge_result_logs(shard_logs);
    ASSERT_EQ(log.records.size(), ref_log.records.size()) << tag;
    for (std::size_t i = 0; i < log.records.size(); ++i)
      EXPECT_EQ(log.records[i], ref_log.records[i]) << tag << " record " << i;
  }
}

TEST(CampaignService, ResumeOfCompletedShardIsNoOp) {
  Fixture f(make_cp());
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.checkpoint_every = 5;
  cfg.checkpoint_path = tmp_path("noop.ckpt");
  cfg.resultlog_path = tmp_path("noop.log");
  CampaignService first(cfg);
  const auto full = first.run(f.prog(), f.factory(), f.specs, f.w->requirement());
  const auto bytes = read_bytes(cfg.resultlog_path);

  cfg.resume = true;
  CampaignService again(cfg);
  const auto res = again.run(f.prog(), f.factory(), f.specs, f.w->requirement());
  EXPECT_EQ(res.trials_run, 0u);
  EXPECT_EQ(res.trials_resumed, full.shard_trials);
  expect_same_aggregates(full, res, "no-op resume");
  EXPECT_EQ(read_bytes(cfg.resultlog_path), bytes) << "no-op resume must not disturb the log";
}

TEST(CampaignService, ResumeRejectsCheckpointFromDifferentCampaign) {
  Fixture f(make_cp());
  Fixture other(make_cp(), /*with_ft=*/false, /*seed=*/1234);  // different fault plan
  ASSERT_NE(campaign_digest(f.prog(), f.specs, f.w->requirement(), 0),
            campaign_digest(other.prog(), other.specs, other.w->requirement(), 0));

  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.checkpoint_path = tmp_path("xcampaign.ckpt");
  CampaignService writer(cfg);
  (void)writer.run(f.prog(), f.factory(), f.specs, f.w->requirement());

  cfg.resume = true;
  CampaignService reader(cfg);
  EXPECT_THROW(
      (void)reader.run(other.prog(), other.factory(), other.specs, other.w->requirement()),
      core::CheckpointError);
}

TEST(CampaignService, ResumeRejectsWrongShard) {
  Fixture f(make_cp());
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.shards = 2;
  cfg.shard_index = 0;
  cfg.checkpoint_path = tmp_path("xshard.ckpt");
  CampaignService writer(cfg);
  (void)writer.run(f.prog(), f.factory(), f.specs, f.w->requirement());

  cfg.shard_index = 1;
  cfg.resume = true;
  CampaignService reader(cfg);
  EXPECT_THROW((void)reader.run(f.prog(), f.factory(), f.specs, f.w->requirement()),
               core::CheckpointError);
}

TEST(CampaignService, TornLogTailIsTruncatedOnResume) {
  Fixture f(make_cp());
  ServiceConfig ref_cfg;
  ref_cfg.workers = 2;
  ref_cfg.resultlog_path = tmp_path("torn_ref.log");
  CampaignService ref_service(ref_cfg);
  const auto ref = ref_service.run(f.prog(), f.factory(), f.specs, f.w->requirement());
  const auto ref_bytes = read_bytes(ref_cfg.resultlog_path);

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.checkpoint_every = 5;
  cfg.checkpoint_path = tmp_path("torn.ckpt");
  cfg.resultlog_path = tmp_path("torn.log");
  auto armed = std::make_shared<bool>(true);
  cfg.on_checkpoint = [armed](const CampaignCheckpoint&) {
    if (*armed) {
      *armed = false;
      throw CrashInjected();
    }
  };
  CampaignService first(cfg);
  EXPECT_THROW((void)first.run(f.prog(), f.factory(), f.specs, f.w->requirement()),
               CrashInjected);

  // A kill mid-append leaves a partial trailing record; fake one.
  {
    std::ofstream out(cfg.resultlog_path, std::ios::binary | std::ios::app);
    out.write("\x7f\x00\x01", 3);
  }
  EXPECT_GT(read_result_log(cfg.resultlog_path).torn_tail_bytes, 0u);

  cfg.on_checkpoint = nullptr;
  cfg.resume = true;
  CampaignService second(cfg);
  const auto res = second.run(f.prog(), f.factory(), f.specs, f.w->requirement());
  expect_same_aggregates(ref, res, "torn-tail resume");
  EXPECT_EQ(read_bytes(cfg.resultlog_path), ref_bytes)
      << "resume must truncate the torn tail and converge to the reference bytes";
}

TEST(CampaignService, StaleTempCheckpointIsIgnoredAndReplaced) {
  Fixture f(make_cp());
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.checkpoint_every = 5;
  cfg.checkpoint_path = tmp_path("staletmp.ckpt");
  cfg.resultlog_path = tmp_path("staletmp.log");
  // A kill mid-save leaves a garbage temp file; it must never be read, and
  // the next atomic save must clobber it.
  {
    std::ofstream out(cfg.checkpoint_path + ".tmp", std::ios::binary);
    out << "this is not a checkpoint";
  }
  auto armed = std::make_shared<bool>(true);
  cfg.on_checkpoint = [armed](const CampaignCheckpoint&) {
    if (*armed) {
      *armed = false;
      throw CrashInjected();
    }
  };
  CampaignService first(cfg);
  EXPECT_THROW((void)first.run(f.prog(), f.factory(), f.specs, f.w->requirement()),
               CrashInjected);

  // The checkpoint that landed must be loadable (the stale tmp never
  // contaminated it), and a resume completes normally.
  const auto ck = CampaignCheckpoint::load(cfg.checkpoint_path);
  EXPECT_GT(ck.watermark, 0u);
  cfg.on_checkpoint = nullptr;
  cfg.resume = true;
  CampaignService second(cfg);
  const auto res = second.run(f.prog(), f.factory(), f.specs, f.w->requirement());
  EXPECT_EQ(res.trials_run + res.trials_resumed, res.shard_trials);
}

TEST(CampaignService, FiFtCampaignWithControlBlockSurvivesKillResume) {
  Fixture f(make_cp(), /*with_ft=*/true);
  ASSERT_FALSE(f.specs.empty());
  ServiceConfig ref_cfg;
  ref_cfg.workers = 2;
  ref_cfg.campaign.pipeline = PipelineSpec::from_report(f.v.fift_report);
  CampaignService ref_service(ref_cfg);
  const auto ref =
      ref_service.run(f.prog(true), f.factory(true), f.specs, f.w->requirement());
  EXPECT_GT(ref.counts.detected + ref.counts.detected_masked, 0u)
      << "detectors must fire so the invariance check covers detected outcomes";
  EXPECT_NE(ref.remark_digest, 0u);

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.campaign.pipeline = PipelineSpec::from_report(f.v.fift_report);
  cfg.checkpoint_every = 5;
  cfg.checkpoint_path = tmp_path("fift.ckpt");
  int crashes = 0;
  ServiceResult res;
  for (int cycle = 0; cycle < 100; ++cycle) {
    ServiceConfig attempt = cfg;
    attempt.resume = cycle > 0;
    auto armed = std::make_shared<bool>(true);
    attempt.on_checkpoint = [armed](const CampaignCheckpoint&) {
      if (*armed) {
        *armed = false;
        throw CrashInjected();
      }
    };
    CampaignService service(attempt);
    try {
      res = service.run(f.prog(true), f.factory(true), f.specs, f.w->requirement());
      break;
    } catch (const CrashInjected&) {
      ++crashes;
    }
  }
  EXPECT_GT(crashes, 0);
  expect_same_aggregates(ref, res, "FI&FT kill/resume");
}

TEST(CampaignService, EmptyCampaignAndEmptyShard) {
  Fixture f(make_cp());
  ServiceConfig cfg;
  cfg.workers = 2;
  CampaignService service(cfg);
  const auto res = service.run(f.prog(), f.factory(), {}, f.w->requirement());
  EXPECT_EQ(res.shard_trials, 0u);
  EXPECT_EQ(res.trials_run, 0u);
  EXPECT_EQ(res.counts.activated() + res.counts.not_activated, 0u);

  // A shard index beyond the trial count owns nothing and must still finish.
  ServiceConfig tail;
  tail.workers = 2;
  tail.shards = 64;
  tail.shard_index = 63;
  std::vector<FaultSpec> three(f.specs.begin(), f.specs.begin() + 3);
  CampaignService tail_service(tail);
  const auto tail_res = tail_service.run(f.prog(), f.factory(), three, f.w->requirement());
  EXPECT_EQ(tail_res.shard_trials, 0u);
  EXPECT_EQ(tail_res.trials_run, 0u);
}

TEST(CampaignService, ConfigValidation) {
  ServiceConfig bad_shard;
  bad_shard.shards = 2;
  bad_shard.shard_index = 2;
  EXPECT_THROW(CampaignService{bad_shard}, std::invalid_argument);

  ServiceConfig no_path;
  no_path.checkpoint_every = 10;
  EXPECT_THROW(CampaignService{no_path}, std::invalid_argument);

  ServiceConfig resume_no_path;
  resume_no_path.resume = true;
  EXPECT_THROW(CampaignService{resume_no_path}, std::invalid_argument);

  ServiceConfig zero_shards;
  zero_shards.shards = 0;
  EXPECT_THROW(CampaignService{zero_shards}, std::invalid_argument);
}

TEST(CampaignService, MergeRejectsForeignResults) {
  ServiceResult a;
  a.config_digest = 1;
  ServiceResult b;
  b.config_digest = 2;
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ECC-protected campaigns.  The same determinism contract must hold when the
// worker devices carry hardware SEC-DED: outcome counts, histograms and
// result-log bytes invariant across worker counts, shard splits and
// kill/resume — and the protection scheme is part of the campaign identity,
// so checkpoints cannot leak across schemes.

TEST(CampaignServiceEcc, ProtectionIsPartOfTheCampaignIdentity) {
  Fixture f(make_cp());
  const auto none = campaign_digest(f.prog(), f.specs, f.w->requirement(), 0);
  const auto hamming = campaign_digest(f.prog(), f.specs, f.w->requirement(), 0,
                                       gpusim::ecc::Scheme::Hamming);
  const auto hsiao = campaign_digest(f.prog(), f.specs, f.w->requirement(), 0,
                                     gpusim::ecc::Scheme::Hsiao);
  EXPECT_NE(none, hamming);
  EXPECT_NE(none, hsiao);
  EXPECT_NE(hamming, hsiao);
  // The explicit-None digest must equal the pre-ECC four-argument form, so
  // digests (and checkpoints) minted before protection existed stay valid.
  EXPECT_EQ(none, campaign_digest(f.prog(), f.specs, f.w->requirement(), 0,
                                  gpusim::ecc::Scheme::None));
}

TEST(CampaignServiceEcc, WorkerAndShardInvariantIncludingLogBytes) {
  Fixture f(make_cp());
  const auto scheme = gpusim::ecc::Scheme::Hsiao;

  ServiceConfig base;
  base.workers = 1;
  base.campaign.protection = scheme;
  base.resultlog_path = tmp_path("ecc_ref.log");
  CampaignService one(base);
  const auto ref = one.run(f.prog(), f.protected_factory(scheme), f.specs, f.w->requirement());
  const auto ref_bytes = read_bytes(base.resultlog_path);
  ASSERT_FALSE(ref_bytes.empty());

  for (const int workers : {2, 8}) {
    ServiceConfig cfg;
    cfg.workers = workers;
    cfg.campaign.protection = scheme;
    cfg.resultlog_path = tmp_path("ecc_wc_" + std::to_string(workers) + ".log");
    CampaignService service(cfg);
    const auto res =
        service.run(f.prog(), f.protected_factory(scheme), f.specs, f.w->requirement());
    expect_same_aggregates(ref, res, "ECC worker invariance");
    EXPECT_EQ(read_bytes(cfg.resultlog_path), ref_bytes)
        << "ECC result log must be byte-identical at " << workers << " workers";
  }

  const auto ref_log = read_result_log(base.resultlog_path);
  for (const std::uint32_t K : {2u, 4u}) {
    std::vector<ResultLogData> shard_logs;
    ServiceResult merged;
    for (std::uint32_t i = 0; i < K; ++i) {
      ServiceConfig cfg;
      cfg.workers = 2;
      cfg.shards = K;
      cfg.shard_index = i;
      cfg.campaign.protection = scheme;
      cfg.resultlog_path =
          tmp_path("ecc_merge_" + std::to_string(K) + "_" + std::to_string(i) + ".log");
      CampaignService service(cfg);
      const auto res =
          service.run(f.prog(), f.protected_factory(scheme), f.specs, f.w->requirement());
      shard_logs.push_back(read_result_log(cfg.resultlog_path));
      if (i == 0)
        merged = res;
      else
        merged.merge(res);
    }
    expect_same_aggregates(ref, merged, "ECC shard merge invariance");
    const auto log = merge_result_logs(shard_logs);
    ASSERT_EQ(log.records.size(), ref_log.records.size());
    for (std::size_t i = 0; i < log.records.size(); ++i)
      EXPECT_EQ(log.records[i], ref_log.records[i]) << "ECC K=" << K << " record " << i;
  }
}

TEST(CampaignServiceEcc, KillResumeWithProtectionResumesByteIdentical) {
  Fixture f(make_cp());
  const auto scheme = gpusim::ecc::Scheme::Hsiao;

  ServiceConfig ref_cfg;
  ref_cfg.workers = 2;
  ref_cfg.campaign.protection = scheme;
  ref_cfg.resultlog_path = tmp_path("ecc_kill_ref.log");
  CampaignService ref_service(ref_cfg);
  const auto ref =
      ref_service.run(f.prog(), f.protected_factory(scheme), f.specs, f.w->requirement());
  const auto ref_bytes = read_bytes(ref_cfg.resultlog_path);

  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.campaign.protection = scheme;
  cfg.checkpoint_every = 5;
  cfg.checkpoint_path = tmp_path("ecc_kill.ckpt");
  cfg.resultlog_path = tmp_path("ecc_kill.log");
  int crashes = 0;
  ServiceResult res;
  for (int cycle = 0; cycle < 100; ++cycle) {
    ServiceConfig attempt = cfg;
    attempt.resume = cycle > 0;
    auto armed = std::make_shared<bool>(true);
    attempt.on_checkpoint = [armed](const CampaignCheckpoint&) {
      if (*armed) {
        *armed = false;
        throw CrashInjected();
      }
    };
    CampaignService service(attempt);
    try {
      res = service.run(f.prog(), f.protected_factory(scheme), f.specs, f.w->requirement());
      break;
    } catch (const CrashInjected&) {
      ++crashes;
    }
  }
  EXPECT_GT(crashes, 0) << "the crash harness must actually crash";
  EXPECT_GT(res.trials_resumed, 0u) << "final cycle must be a resume";
  expect_same_aggregates(ref, res, "ECC kill/resume");
  EXPECT_EQ(read_bytes(cfg.resultlog_path), ref_bytes)
      << "ECC result log must survive kill/resume byte-identical";
}

TEST(CampaignServiceEcc, ResumeRejectsCheckpointAcrossProtectionSchemes) {
  Fixture f(make_cp());
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.checkpoint_path = tmp_path("ecc_xscheme.ckpt");
  CampaignService writer(cfg);
  (void)writer.run(f.prog(), f.factory(), f.specs, f.w->requirement());

  // Same program, same specs, same requirement — only the protection scheme
  // differs.  The digest folds it, so the unprotected checkpoint must not
  // seed a protected campaign (the logged outcomes mean different things).
  cfg.resume = true;
  cfg.campaign.protection = gpusim::ecc::Scheme::Hsiao;
  CampaignService reader(cfg);
  EXPECT_THROW(
      (void)reader.run(f.prog(), f.protected_factory(gpusim::ecc::Scheme::Hsiao), f.specs,
                       f.w->requirement()),
      core::CheckpointError);
}
