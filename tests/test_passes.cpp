// Tests for the Hauberk pass framework (src/hauberk/passes): each
// instrumentation pass exercised in isolation outside the full pipeline,
// PassPipeline composition and the per-kernel override hook, the
// kir::AnalysisManager cache (hits, misses, invalidation-on-mutation), the
// TranslateOptions combination sweep, the translator idempotence guard, and
// remark determinism — including worker-count invariance of the remark
// digest carried through SWIFI campaigns.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "hauberk/passes/instrument.hpp"
#include "hauberk/passes/pass_manager.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/runtime.hpp"
#include "hauberk/translator.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"
#include "kir/printer.hpp"
#include "swifi/campaign.hpp"
#include "swifi/executor.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::core;
using namespace hauberk::core::passes;
using namespace hauberk::workloads;

namespace {

/// One loop with two independent protectable variables: `sum` is
/// self-accumulating, `t` is stored per-iteration and needs an inserted
/// accumulator.  The constant bounds make the trip count derivable.
kir::Kernel loop_kernel() {
  kir::KernelBuilder kb("loopy");
  auto out = kb.param_ptr("out");
  auto sum = kb.let("sum", kir::i32c(0));
  kb.for_loop("i", kir::i32c(0), kir::i32c(8), [&](kir::ExprH i) {
    auto t = kb.let("t", i * kir::i32c(2) + kir::i32c(1));
    kb.store(out + i, t);
    kb.assign(sum, sum + i);
  });
  kb.store(out, sum);
  return kb.build();
}

/// Straight-line kernel: two independent definitions and one store.
kir::Kernel straightline_kernel() {
  kir::KernelBuilder kb("straight");
  auto out = kb.param_ptr("out");
  auto a = kb.let("a", kir::f32c(2.0f));
  auto b = kb.let("b", a * kir::f32c(3.0f));
  kb.store(out, b);
  return kb.build();
}

int count_kind(const kir::StmtList& body, kir::StmtKind kind) {
  int n = 0;
  for (const auto& s : body) {
    if (s->kind == kind) ++n;
    n += count_kind(s->body, kind) + count_kind(s->else_body, kind);
  }
  return n;
}

bool has_var(const kir::Kernel& k, const std::string& name) {
  for (const auto& v : k.vars)
    if (v.name == name) return true;
  return false;
}

/// Fresh context over a deep copy of `k` (the helper mirrors translate()'s
/// setup so a single pass can run outside the pipeline).
struct Isolated {
  TranslateOptions opt;
  TranslateReport rep;
  PassContext ctx;
  explicit Isolated(const kir::Kernel& k, TranslateOptions o = {})
      : opt(std::move(o)), ctx(kir::clone_kernel(k), opt, rep) {}
};

}  // namespace

// ---------------------------------------------------------------------------
// Individual passes in isolation
// ---------------------------------------------------------------------------

TEST(SiteEnumerationPass, EnumeratesTwoSitesPerDefinitionPlusIterators) {
  Isolated t(loop_kernel());
  SiteEnumerationPass pass;
  EXPECT_FALSE(pass.run(t.ctx)) << "analysis-only pass must not report mutation";
  // Definitions: sum, t, sum-assign -> 2 sites each; one For iterator site.
  EXPECT_EQ(t.ctx.sites.size(), 7u);
  int late = 0, iterators = 0;
  for (const auto& s : t.ctx.sites) {
    late += s.late;
    iterators += s.is_iterator;
    EXPECT_LT(s.id, t.ctx.next_site);
  }
  EXPECT_EQ(late, 3);
  EXPECT_EQ(iterators, 1);
  // The kernel itself is untouched.
  EXPECT_EQ(kir::print_kernel(t.ctx.kernel), kir::print_kernel(loop_kernel()));
}

TEST(SiteEnumerationPass, IteratorSitesRespectTheOption) {
  TranslateOptions opt;
  opt.fi_target_iterators = false;
  Isolated t(loop_kernel(), opt);
  SiteEnumerationPass().run(t.ctx);
  for (const auto& s : t.ctx.sites) EXPECT_FALSE(s.is_iterator);
  EXPECT_EQ(t.ctx.sites.size(), 6u);
}

TEST(LoopAccumulatorPass, InsertsCounterAndAccumulatorScaffolding) {
  TranslateOptions opt;
  opt.maxvar = 2;
  Isolated t(loop_kernel(), opt);
  LoopAccumulatorPass pass;
  EXPECT_TRUE(pass.run(t.ctx));
  // Scaffolding variables declared: the shared counter and t's accumulator;
  // self-accumulating `sum` gets none.
  EXPECT_TRUE(has_var(t.ctx.kernel, "__hbk_iter0"));
  EXPECT_TRUE(has_var(t.ctx.kernel, "__hbk_acc_t"));
  EXPECT_FALSE(has_var(t.ctx.kernel, "__hbk_acc_sum"));
  ASSERT_EQ(t.ctx.loop_products.size(), 1u);
  const auto& prod = t.ctx.loop_products[0];
  EXPECT_EQ(prod.loop_id, 0u);
  EXPECT_NE(prod.trip_count, nullptr) << "constant-bound loop has a derivable trip count";
  ASSERT_EQ(prod.vars.size(), 2u);
  EXPECT_TRUE(prod.vars[0].self_accumulating) << "self-accumulators are selected first";
  EXPECT_FALSE(prod.vars[1].self_accumulating);
  // No detectors yet: checks belong to LoopCheckPass.
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::RangeCheck), 0);
  EXPECT_TRUE(t.rep.loop_detectors.empty());
}

TEST(LoopAccumulatorPass, RemarksExplainSelectionAndMaxvarEviction) {
  TranslateOptions opt;
  opt.maxvar = 1;
  Isolated t(loop_kernel(), opt);
  LoopAccumulatorPass().run(t.ctx);
  bool saw_self = false, saw_evict = false;
  for (const auto& r : t.rep.remarks) {
    saw_self |= r.message.find("self-accumulating") != std::string::npos;
    saw_evict |= r.message.find("evicted by Maxvar") != std::string::npos;
  }
  EXPECT_TRUE(saw_self);
  EXPECT_TRUE(saw_evict) << "maxvar=1 must evict 't' and say so";
}

TEST(LoopCheckPass, PlacesGuardedRangeChecksAndIterationInvariant) {
  TranslateOptions opt;
  opt.maxvar = 2;
  Isolated t(loop_kernel(), opt);
  LoopAccumulatorPass().run(t.ctx);
  LoopCheckPass pass(/*profile_mode=*/false);
  EXPECT_TRUE(pass.run(t.ctx));
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::RangeCheck), 2);
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::EqualCheck), 1);
  ASSERT_EQ(t.rep.loop_detectors.size(), 2u);
  EXPECT_EQ(t.rep.loop_detectors[0].value_detector, 0);
  EXPECT_EQ(t.rep.loop_detectors[1].value_detector, 1);
  EXPECT_EQ(t.rep.loop_detectors[0].iter_detector, 2)
      << "iteration detector id allocated after the value detectors";
  EXPECT_EQ(t.ctx.next_detector, 3);
}

TEST(LoopCheckPass, ProfileModeEmitsProfileValuesAndReservesIterId) {
  TranslateOptions opt;
  opt.maxvar = 2;
  Isolated t(loop_kernel(), opt);
  LoopAccumulatorPass().run(t.ctx);
  LoopCheckPass pass(/*profile_mode=*/true);
  EXPECT_TRUE(pass.run(t.ctx));
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::ProfileValue), 2);
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::RangeCheck), 0);
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::EqualCheck), 0)
      << "profile mode never emits the invariant check";
  EXPECT_EQ(t.ctx.next_detector, 3)
      << "the iteration detector id is still reserved so FT/Profiler id spaces align";
}

TEST(NonLoopChecksumPass, ChecksumsParamsAndDuplicatesDefinitions) {
  Isolated t(straightline_kernel());
  NonLoopChecksumPass pass;
  EXPECT_TRUE(pass.run(t.ctx));
  const auto& body = t.ctx.kernel.body;
  // Entry checksum for the one param + two per-definition checksum windows
  // (open + close) + the exit param checksum.
  EXPECT_EQ(count_kind(body, kir::StmtKind::ChecksumXor), 6);
  EXPECT_EQ(count_kind(body, kir::StmtKind::DupCheck), 2);
  EXPECT_EQ(count_kind(body, kir::StmtKind::ChecksumValidate), 1);
  EXPECT_EQ(body.front()->kind, kir::StmtKind::ChecksumXor) << "entry checksum first";
  EXPECT_EQ(body.back()->kind, kir::StmtKind::ChecksumValidate) << "validate last";
  EXPECT_EQ(t.rep.params_protected, 1);
  EXPECT_EQ(t.rep.nonloop_protected, 2);
}

TEST(NaiveDuplicationPass, ShadowsDefinitionsWithoutChecksums) {
  Isolated t(straightline_kernel());
  NaiveDuplicationPass pass;
  EXPECT_TRUE(pass.run(t.ctx));
  EXPECT_TRUE(has_var(t.ctx.kernel, "a__shadow"));
  EXPECT_TRUE(has_var(t.ctx.kernel, "b__shadow"));
  const auto& body = t.ctx.kernel.body;
  EXPECT_EQ(count_kind(body, kir::StmtKind::ChecksumXor), 0) << "Fig. 8(b) has no checksum";
  EXPECT_EQ(count_kind(body, kir::StmtKind::ChecksumValidate), 0);
  EXPECT_EQ(count_kind(body, kir::StmtKind::DupCheck), 2);
  EXPECT_EQ(t.rep.params_protected, 0) << "naive scheme leaves parameters unprotected";
}

TEST(FIHookPass, InsertsOneHookPerEnumeratedSite) {
  Isolated t(loop_kernel());
  SiteEnumerationPass().run(t.ctx);
  FIHookPass pass;
  EXPECT_TRUE(pass.run(t.ctx));
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::FIHook),
            static_cast<int>(t.ctx.sites.size()));
}

TEST(CountExecPass, InsertsProfilerHooksAtTheSameSites) {
  Isolated t(loop_kernel());
  SiteEnumerationPass().run(t.ctx);
  CountExecPass pass;
  EXPECT_TRUE(pass.run(t.ctx));
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::CountExec),
            static_cast<int>(t.ctx.sites.size()));
  EXPECT_EQ(count_kind(t.ctx.kernel.body, kir::StmtKind::FIHook), 0);
}

TEST(ControlLayoutPass, PublishesSiteCountWithoutMutating) {
  Isolated t(loop_kernel());
  SiteEnumerationPass().run(t.ctx);
  ControlLayoutPass pass;
  EXPECT_FALSE(pass.run(t.ctx));
  EXPECT_EQ(t.rep.fi_sites, static_cast<int>(t.ctx.sites.size()));
}

// ---------------------------------------------------------------------------
// Pipeline composition
// ---------------------------------------------------------------------------

TEST(PassPipeline, AddRemoveInsertHas) {
  PassPipeline pipe("test");
  pipe.add(std::make_shared<SiteEnumerationPass>());
  pipe.add(std::make_shared<ControlLayoutPass>());
  EXPECT_TRUE(pipe.has("site-enum"));
  EXPECT_FALSE(pipe.has("fi-hooks"));
  EXPECT_TRUE(pipe.insert_before("control-layout", std::make_shared<FIHookPass>()));
  EXPECT_EQ(pipe.pass_names(),
            (std::vector<std::string>{"site-enum", "fi-hooks", "control-layout"}));
  EXPECT_TRUE(pipe.remove("fi-hooks"));
  EXPECT_FALSE(pipe.remove("fi-hooks")) << "second removal finds nothing";
  EXPECT_FALSE(pipe.insert_before("no-such-pass", std::make_shared<FIHookPass>()));
  EXPECT_EQ(pipe.size(), 2u);
}

TEST(PipelineFor, NamesEncodeModeAndAblations) {
  TranslateOptions opt;
  EXPECT_EQ(pipeline_for(LibMode::None, opt).name(), "baseline");
  EXPECT_EQ(pipeline_for(LibMode::Profiler, opt).name(), "profiler");
  EXPECT_EQ(pipeline_for(LibMode::FT, opt).name(), "ft");
  EXPECT_EQ(pipeline_for(LibMode::FI, opt).name(), "fi");
  EXPECT_EQ(pipeline_for(LibMode::FIFT, opt).name(), "fi+ft");
  opt.naive_duplication = true;
  EXPECT_EQ(pipeline_for(LibMode::FT, opt).name(), "ft.naive");
  opt.naive_duplication = false;
  opt.protect_nonloop = false;
  EXPECT_EQ(pipeline_for(LibMode::FT, opt).name(), "ft.hauberk-l");
  opt.protect_nonloop = true;
  opt.protect_loop = false;
  EXPECT_EQ(pipeline_for(LibMode::FT, opt).name(), "ft.hauberk-nl");
  opt.protect_nonloop = false;
  EXPECT_EQ(pipeline_for(LibMode::FT, opt).name(), "ft.noprotect");
}

TEST(PipelineFor, CompositionMatchesMode) {
  TranslateOptions opt;
  EXPECT_EQ(pipeline_for(LibMode::None, opt).pass_names(),
            (std::vector<std::string>{"site-enum", "control-layout"}));
  EXPECT_EQ(pipeline_for(LibMode::FT, opt).pass_names(),
            (std::vector<std::string>{"site-enum", "loop-accum", "loop-check",
                                      "nonloop-checksum", "control-layout"}));
  EXPECT_EQ(pipeline_for(LibMode::Profiler, opt).pass_names(),
            (std::vector<std::string>{"site-enum", "loop-accum", "loop-profile",
                                      "count-exec", "control-layout"}));
  EXPECT_EQ(pipeline_for(LibMode::FI, opt).pass_names(),
            (std::vector<std::string>{"site-enum", "fi-hooks", "control-layout"}));
  EXPECT_EQ(pipeline_for(LibMode::FIFT, opt).pass_names(),
            (std::vector<std::string>{"site-enum", "loop-accum", "loop-check",
                                      "nonloop-checksum", "fi-hooks", "control-layout"}));
  opt.naive_duplication = true;
  EXPECT_TRUE(pipeline_for(LibMode::FT, opt).has("nonloop-naive-dup"))
      << "the Fig. 8(b) variant is a swappable pass";
  EXPECT_FALSE(pipeline_for(LibMode::FT, opt).has("nonloop-checksum"));
}

TEST(HardeningPlanAPI, SelectiveHardeningDropsAPassForOneKernel) {
  // The structured replacement for the pipeline_override scenario below:
  // a plan entry for "loopy" turning the non-loop detectors off must equal
  // the Hauberk-L reference build, while other kernels are untouched.
  const auto k = loop_kernel();
  TranslateOptions plain;
  plain.mode = LibMode::FT;
  plain.protect_nonloop = false;  // Hauberk-L reference
  const auto reference = translate(k, plain);

  auto plan = std::make_shared<HardeningPlan>();
  plan->kernels.push_back({"loopy", -1, Tri::Default, Tri::Off, Tri::Default, {}, {}});
  TranslateOptions sel;
  sel.mode = LibMode::FT;
  sel.plan = plan;
  TranslateReport rep;
  const auto planned = translate(k, sel, &rep);
  EXPECT_EQ(kir::print_kernel(planned), kir::print_kernel(reference))
      << "plan (nonloop off) must equal the Hauberk-L build";
  EXPECT_EQ(rep.pipeline, "ft.hauberk-l.plan")
      << "a non-trivial matched plan entry tags the pipeline name";

  // A kernel with a different name has no matching entry: full pipeline.
  auto other = kir::clone_kernel(k);
  other.name = "other";
  TranslateReport full_rep;
  const auto full = translate(other, sel, &full_rep);
  EXPECT_GT(count_kind(full.body, kir::StmtKind::ChecksumValidate), 0);
  EXPECT_EQ(full_rep.pipeline, "ft");
}

// Backward-compatibility shim: the deprecated stringly hook still composes
// with (and runs after) plan resolution.
TEST(PipelineOverride, SelectiveHardeningDropsAPassForOneKernel) {
  const auto k = loop_kernel();
  TranslateOptions plain;
  plain.mode = LibMode::FT;
  plain.protect_nonloop = false;  // Hauberk-L reference
  const auto reference = translate(k, plain);

  TranslateOptions sel;
  sel.mode = LibMode::FT;
  sel.pipeline_override = [](const std::string& kernel_name, PassPipeline& pipe) {
    if (kernel_name == "loopy") pipe.remove("nonloop-checksum");
  };
  TranslateReport rep;
  const auto overridden = translate(k, sel, &rep);
  EXPECT_EQ(kir::print_kernel(overridden), kir::print_kernel(reference))
      << "dropping the non-loop pass must equal the Hauberk-L build";

  // A kernel with a different name keeps the full pipeline.
  auto other = kir::clone_kernel(k);
  other.name = "other";
  TranslateReport full_rep;
  const auto full = translate(other, sel, &full_rep);
  EXPECT_GT(count_kind(full.body, kir::StmtKind::ChecksumValidate), 0);
}

// ---------------------------------------------------------------------------
// AnalysisManager cache
// ---------------------------------------------------------------------------

TEST(AnalysisManager, CachesAnalysisAndPlans) {
  const auto k = loop_kernel();
  kir::AnalysisManager am(k);
  (void)am.analysis();
  (void)am.analysis();
  EXPECT_EQ(am.stats().misses, 1u);
  EXPECT_EQ(am.stats().hits, 1u);

  (void)am.loop_plan(0, 1);  // computes dataflow + plan
  const auto before_hits = am.stats().hits;
  (void)am.loop_plan(0, 1);  // fully cached
  EXPECT_EQ(am.stats().hits, before_hits + 1);

  // A different Maxvar budget is a different plan, but reuses the cached
  // dataflow graph.
  const auto misses = am.stats().misses;
  (void)am.loop_plan(0, 2);
  EXPECT_EQ(am.stats().misses, misses + 1) << "only the plan itself is recomputed";
  EXPECT_EQ(am.loop_plan(0, 1).selected.size(), 1u);
  EXPECT_EQ(am.loop_plan(0, 2).selected.size(), 2u);
}

TEST(AnalysisManager, InvalidationDropsCachesAfterMutation) {
  auto k = loop_kernel();
  kir::AnalysisManager am(k);
  EXPECT_EQ(am.analysis().loops().size(), 1u);
  (void)am.loop_plan(0, 1);

  // Mutate the AST the way a pass would: empty the kernel body.
  k.body.clear();
  k.num_loops = 0;
  am.invalidate();
  EXPECT_EQ(am.stats().invalidations, 1u);
  EXPECT_TRUE(am.analysis().loops().empty()) << "post-invalidation analysis sees the mutation";
}

TEST(AnalysisManager, TranslateReportCarriesCacheStats) {
  TranslateOptions opt;
  opt.mode = LibMode::FT;
  TranslateReport rep;
  (void)translate(loop_kernel(), opt, &rep);
  EXPECT_EQ(rep.pipeline, "ft");
  EXPECT_GT(rep.analysis_cache.misses, 0u);
  EXPECT_GT(rep.analysis_cache.invalidations, 0u) << "mutating passes must invalidate";
  EXPECT_GE(rep.analysis_cache.hit_rate(), 0.0);
  EXPECT_LE(rep.analysis_cache.hit_rate(), 1.0);
}

TEST(AnalysisManager, CachedPlanServesRepeatedConsumersWithinOnePassRun) {
  // Within one un-mutated kernel state, repeated queries are all hits: the
  // recompute-per-call pattern of the old monolith is gone.
  const auto k = loop_kernel();
  kir::AnalysisManager am(k);
  (void)am.loop_plan(0, 1);
  const auto baseline = am.stats();
  for (int i = 0; i < 10; ++i) {
    (void)am.analysis();
    (void)am.loop_dataflow(0);
    (void)am.loop_plan(0, 1);
  }
  EXPECT_EQ(am.stats().misses, baseline.misses);
  EXPECT_EQ(am.stats().hits, baseline.hits + 30);
}

// ---------------------------------------------------------------------------
// TranslateOptions combination sweep
// ---------------------------------------------------------------------------

TEST(TranslateSweep, EveryModeAndAblationTranslatesAndValidates) {
  const kir::Kernel kernels[] = {loop_kernel(), straightline_kernel()};
  for (const auto& k : kernels) {
    for (const LibMode mode : {LibMode::None, LibMode::Profiler, LibMode::FT, LibMode::FI,
                               LibMode::FIFT}) {
      for (const bool protect_loop : {false, true}) {
        for (const bool protect_nonloop : {false, true}) {
          for (const bool naive : {false, true}) {
            TranslateOptions opt;
            opt.mode = mode;
            opt.protect_loop = protect_loop;
            opt.protect_nonloop = protect_nonloop;
            opt.naive_duplication = naive;
            TranslateReport rep;
            const auto instrumented = translate(k, opt, &rep);
            const auto prog = kir::lower(instrumented);
            EXPECT_TRUE(swifi::validate_program(prog))
                << k.name << " mode=" << lib_mode_name(mode) << " loop=" << protect_loop
                << " nonloop=" << protect_nonloop << " naive=" << naive;
            EXPECT_EQ(rep.pipeline, pipeline_for(mode, opt).name());
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Idempotence guard
// ---------------------------------------------------------------------------

TEST(Idempotence, ReinstrumentingAnInstrumentedKernelIsRejected) {
  TranslateOptions opt;
  opt.mode = LibMode::FT;
  const auto once = translate(loop_kernel(), opt);
  EXPECT_TRUE(is_instrumented(once));
  EXPECT_THROW((void)translate(once, opt), std::invalid_argument);
  // The FI build is instrumented too (hooks are translator-inserted).
  TranslateOptions fi;
  fi.mode = LibMode::FI;
  EXPECT_THROW((void)translate(translate(loop_kernel(), fi), fi), std::invalid_argument);
}

TEST(Idempotence, BaselineTranslationStaysReinstrumentable) {
  // LibMode::None inserts nothing, so its output is still pristine.
  TranslateOptions none;
  none.mode = LibMode::None;
  const auto base = translate(loop_kernel(), none);
  EXPECT_FALSE(is_instrumented(base));
  TranslateOptions ft;
  ft.mode = LibMode::FT;
  EXPECT_NO_THROW((void)translate(base, ft));
}

// ---------------------------------------------------------------------------
// Remark determinism
// ---------------------------------------------------------------------------

TEST(Remarks, DeterministicAcrossRepeatedTranslations) {
  TranslateOptions opt;
  opt.mode = LibMode::FIFT;
  TranslateReport a, b;
  (void)translate(loop_kernel(), opt, &a);
  (void)translate(loop_kernel(), opt, &b);
  ASSERT_EQ(a.remarks.size(), b.remarks.size());
  for (std::size_t i = 0; i < a.remarks.size(); ++i) {
    EXPECT_EQ(a.remarks[i].pass, b.remarks[i].pass);
    EXPECT_EQ(a.remarks[i].message, b.remarks[i].message);
  }
  EXPECT_NE(remark_digest(a), 0u);
  EXPECT_EQ(remark_digest(a), remark_digest(b));
  EXPECT_FALSE(format_remarks(a).empty());
}

TEST(Remarks, DigestDistinguishesPipelines) {
  TranslateOptions ft;
  ft.mode = LibMode::FT;
  TranslateOptions fi;
  fi.mode = LibMode::FI;
  TranslateReport a, b;
  (void)translate(loop_kernel(), ft, &a);
  (void)translate(loop_kernel(), fi, &b);
  EXPECT_NE(remark_digest(a), remark_digest(b));
}

TEST(Remarks, WorkerCountInvariantUnderSwifiCampaigns) {
  // The remark digest rides through CampaignConfig::pipeline into every
  // CampaignResult; running the same campaign at different worker counts
  // must reproduce it bit-for-bit.
  auto w = make_cp();
  auto v = core::build_variants(w->build_kernel(Scale::Tiny));
  const auto ds = w->make_dataset(33, Scale::Tiny);
  gpusim::Device dev;
  auto job = w->make_job(ds);
  const auto pd = core::profile(dev, v, {job.get()});

  swifi::PlanOptions popt;
  popt.max_vars = 6;
  popt.masks_per_var = 2;
  const auto specs = swifi::plan_faults(v.fift, pd, popt);
  ASSERT_FALSE(specs.empty());

  swifi::CampaignConfig cfg;
  cfg.pipeline = swifi::PipelineSpec::from_report(v.fift_report);
  const std::uint64_t expect_digest = core::remark_digest(v.fift_report);
  ASSERT_NE(expect_digest, 0u);

  for (const int workers : {1, 2, 4}) {
    swifi::CampaignExecutor ex(workers);
    const auto res = ex.run(
        v.fift,
        [&] {
          swifi::WorkerContext ctx;
          ctx.device = std::make_unique<gpusim::Device>();
          ctx.job = w->make_job(ds);
          ctx.cb = core::make_configured_control_block(v.fift, pd);
          return ctx;
        },
        specs, w->requirement(), cfg);
    EXPECT_EQ(res.pipeline, "fi+ft") << workers << " workers";
    EXPECT_EQ(res.remark_digest, expect_digest) << workers << " workers";
  }
}
