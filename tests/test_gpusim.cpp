// Unit tests for the simulated GPU: memory models, interpreter semantics,
// crash/hang detection, barriers/atomics, cost attribution, fault model.
#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/device.hpp"
#include "kir/builder.hpp"
#include "kir/bytecode.hpp"

using namespace hauberk::gpusim;
using namespace hauberk::kir;

namespace {

DeviceProps small_props() {
  DeviceProps p;
  p.global_mem_words = 1u << 20;
  return p;
}

float f32_of(std::uint32_t bits) { return Value{DType::F32, bits}.as_f32(); }

}  // namespace

// --- memory ---

TEST(Memory, FlatGpuPacksFromZero) {
  DeviceMemory m(MemoryModel::FlatGpu, 1024);
  EXPECT_EQ(m.alloc(16), 0u);
  EXPECT_EQ(m.alloc(16), 16u);
  EXPECT_TRUE(m.valid(31));
  // No page protection: unallocated-but-physical addresses are accessible.
  EXPECT_TRUE(m.valid(32));
  EXPECT_FALSE(m.valid(1024));
}

TEST(Memory, FlatGpuCorruptedPointerOftenStaysValid) {
  // The GPU has no page protection: any address below the high-water mark is
  // accessible, so small-bit corruptions of a pointer stay "valid".
  DeviceMemory m(MemoryModel::FlatGpu, 1u << 20);
  const std::uint32_t base = m.alloc(1u << 16);
  EXPECT_TRUE(m.valid(base + 5));
  EXPECT_TRUE(m.valid((base + 5) ^ (1u << 10)));   // low-bit flip: still in arena
  EXPECT_TRUE(m.valid((base + 5) ^ (1u << 19)));   // still within physical memory
  EXPECT_FALSE(m.valid((base + 5) ^ (1u << 30)));  // beyond physical memory
}

TEST(Memory, PagedCpuRejectsBetweenAllocations) {
  DeviceMemory m(MemoryModel::PagedCpu, 1u << 20);
  const std::uint32_t a = m.alloc(100);
  const std::uint32_t b = m.alloc(100);
  EXPECT_NE(a, b);
  EXPECT_TRUE(m.valid(a));
  EXPECT_TRUE(m.valid(a + 99));
  EXPECT_FALSE(m.valid(a + 100));   // past end of allocation
  EXPECT_FALSE(m.valid(0));         // null page unmapped
  EXPECT_FALSE(m.valid(a - 1));
}

TEST(Memory, PagedCpuStoresAndLoads) {
  DeviceMemory m(MemoryModel::PagedCpu, 1u << 20);
  const std::uint32_t a = m.alloc(4);
  const std::uint32_t b = m.alloc(4);
  std::uint32_t data[4] = {1, 2, 3, 4};
  m.copy_in(a, data);
  m.copy_in(b, data);
  std::uint32_t out[4] = {};
  m.copy_out(b, out);
  EXPECT_EQ(out[2], 3u);
}

TEST(Memory, CopyOutOfBoundsThrows) {
  DeviceMemory m(MemoryModel::FlatGpu, 64);
  (void)m.alloc(8);
  std::uint32_t buf[16] = {};
  // Host copies beyond physical memory fault.
  EXPECT_THROW(m.copy_out(56, std::span<std::uint32_t>(buf, 16)), std::out_of_range);
}

TEST(Memory, FootprintAccounting) {
  DeviceMemory m(MemoryModel::FlatGpu, 1024);
  (void)m.alloc(100, AllocClass::F32Data);
  (void)m.alloc(10, AllocClass::I32Data);
  EXPECT_EQ(m.allocated_bytes(AllocClass::F32Data), 400u);
  EXPECT_EQ(m.allocated_bytes(AllocClass::I32Data), 40u);
  m.reset();
  EXPECT_EQ(m.allocated_bytes(AllocClass::F32Data), 0u);
}

// --- basic execution ---

TEST(Exec, SaxpyMatchesNative) {
  constexpr int n = 256;
  KernelBuilder kb("saxpy");
  auto a = kb.param_f32("a");
  auto x = kb.param_ptr("x");
  auto y = kb.param_ptr("y");
  auto i = kb.thread_linear();
  kb.store(y + i, a * kb.load_f32(x + i) + kb.load_f32(y + i));
  auto prog = lower(kb.build());

  Device dev(small_props());
  const auto xa = dev.mem().alloc(n, AllocClass::F32Data);
  const auto ya = dev.mem().alloc(n, AllocClass::F32Data);
  std::vector<std::uint32_t> xs(n), ys(n);
  for (int k = 0; k < n; ++k) {
    xs[k] = Value::f32(static_cast<float>(k)).bits;
    ys[k] = Value::f32(1.0f).bits;
  }
  dev.mem().copy_in(xa, xs);
  dev.mem().copy_in(ya, ys);

  const Value args[] = {Value::f32(2.0f), Value::ptr(xa), Value::ptr(ya)};
  LaunchConfig cfg{4, 1, 64, 1};
  auto res = dev.launch(prog, cfg, args);
  ASSERT_EQ(res.status, LaunchStatus::Ok);
  EXPECT_EQ(res.threads, 256u);

  std::vector<std::uint32_t> out(n);
  dev.mem().copy_out(ya, out);
  for (int k = 0; k < n; ++k)
    EXPECT_EQ(f32_of(out[k]), 2.0f * static_cast<float>(k) + 1.0f);
}

TEST(Exec, LoopSumMatchesClosedForm) {
  KernelBuilder kb("sum");
  auto n = kb.param_i32("n");
  auto out = kb.param_ptr("out");
  auto acc = kb.let("acc", i32c(0));
  kb.for_loop("i", i32c(0), n, [&](ExprH i) { kb.assign(acc, acc + i); });
  kb.store(out + kb.thread_linear(), acc);
  auto prog = lower(kb.build());

  Device dev(small_props());
  const auto oa = dev.mem().alloc(1, AllocClass::I32Data);
  const Value args[] = {Value::i32(100), Value::ptr(oa)};
  auto res = dev.launch(prog, LaunchConfig{}, args);
  ASSERT_EQ(res.status, LaunchStatus::Ok);
  std::uint32_t result = 0;
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&result, 1));
  EXPECT_EQ(static_cast<std::int32_t>(result), 4950);
}

TEST(Exec, IfElseBothBranches) {
  KernelBuilder kb("branch");
  auto out = kb.param_ptr("out");
  auto i = kb.thread_linear();
  kb.if_then_else((i % i32c(2)) == i32c(0),
                  [&] { kb.store(out + i, i32c(7)); },
                  [&] { kb.store(out + i, i32c(9)); });
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(8, AllocClass::I32Data);
  const Value args[] = {Value::ptr(oa)};
  auto res = dev.launch(prog, LaunchConfig{1, 1, 8, 1}, args);
  ASSERT_EQ(res.status, LaunchStatus::Ok);
  std::vector<std::uint32_t> vals(8);
  dev.mem().copy_out(oa, vals);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(vals[k], (k % 2 == 0) ? 7u : 9u);
}

TEST(Exec, WhileLoopRuns) {
  KernelBuilder kb("wh");
  auto out = kb.param_ptr("out");
  auto i = kb.let("i", i32c(0));
  kb.while_loop([&] { return i < i32c(10); }, [&] { kb.assign(i, i + i32c(3)); });
  kb.store(out, i);
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1, AllocClass::I32Data);
  const Value args[] = {Value::ptr(oa)};
  ASSERT_EQ(dev.launch(prog, LaunchConfig{}, args).status, LaunchStatus::Ok);
  std::uint32_t result = 0;
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&result, 1));
  EXPECT_EQ(result, 12u);
}

TEST(Exec, SelectIsBranchless) {
  KernelBuilder kb("sel");
  auto out = kb.param_ptr("out");
  auto i = kb.thread_linear();
  kb.store(out + i, select_(i < i32c(2), f32c(1.5f), f32c(-2.5f)));
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(4, AllocClass::F32Data);
  const Value args[] = {Value::ptr(oa)};
  ASSERT_EQ(dev.launch(prog, LaunchConfig{1, 1, 4, 1}, args).status, LaunchStatus::Ok);
  std::vector<std::uint32_t> vals(4);
  dev.mem().copy_out(oa, vals);
  EXPECT_EQ(f32_of(vals[0]), 1.5f);
  EXPECT_EQ(f32_of(vals[3]), -2.5f);
}

// --- crashes / hangs ---

TEST(Exec, OutOfBoundsLoadCrashes) {
  KernelBuilder kb("oob");
  auto out = kb.param_ptr("out");
  kb.store(out, kb.load_f32(ExprH(Expr::make_const(Value::ptr(0xffff0000u)))));
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1);
  const Value args[] = {Value::ptr(oa)};
  EXPECT_EQ(dev.launch(prog, LaunchConfig{}, args).status, LaunchStatus::CrashOutOfBounds);
}

TEST(Exec, IntegerDivByZeroCrashes) {
  KernelBuilder kb("div0");
  auto out = kb.param_ptr("out");
  auto z = kb.param_i32("z");
  kb.store(out, i32c(1) / z);
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1);
  const Value args[] = {Value::ptr(oa), Value::i32(0)};
  EXPECT_EQ(dev.launch(prog, LaunchConfig{}, args).status, LaunchStatus::CrashDivByZero);
}

TEST(Exec, FloatDivByZeroDoesNotCrash) {
  // Observation 2's mechanism: FP div-by-zero yields infinity, no exception.
  KernelBuilder kb("fdiv0");
  auto out = kb.param_ptr("out");
  kb.store(out, f32c(1.0f) / f32c(0.0f));
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1);
  const Value args[] = {Value::ptr(oa)};
  ASSERT_EQ(dev.launch(prog, LaunchConfig{}, args).status, LaunchStatus::Ok);
  std::uint32_t result = 0;
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&result, 1));
  EXPECT_TRUE(std::isinf(f32_of(result)));
}

TEST(Exec, InfiniteLoopReportsHang) {
  KernelBuilder kb("hang");
  auto i = kb.let("i", i32c(0));
  kb.while_loop([&] { return i >= i32c(0); }, [&] { kb.assign(i, i | i32c(0)); });
  auto prog = lower(kb.build());
  Device dev(small_props());
  LaunchOptions opts;
  opts.watchdog_instructions = 10000;
  EXPECT_EQ(dev.launch(prog, LaunchConfig{}, {}, opts).status, LaunchStatus::Hang);
}

TEST(Exec, SharedMemoryOverLimitFailsLaunch) {
  KernelBuilder kb("bigshared", /*shared_mem_words=*/1u << 20);
  kb.shstore(i32c(0), i32c(1));
  auto prog = lower(kb.build());
  Device dev(small_props());
  EXPECT_EQ(dev.launch(prog, LaunchConfig{}, {}).status, LaunchStatus::LaunchFailure);
}

TEST(Exec, WrongArgCountFailsLaunch) {
  KernelBuilder kb("args");
  (void)kb.param_i32("n");
  auto prog = lower(kb.build());
  Device dev(small_props());
  EXPECT_EQ(dev.launch(prog, LaunchConfig{}, {}).status, LaunchStatus::LaunchFailure);
}

TEST(Exec, DisabledDeviceRefusesLaunch) {
  KernelBuilder kb("nop2");
  auto prog = lower(kb.build());
  Device dev(small_props());
  dev.set_disabled(true);
  EXPECT_EQ(dev.launch(prog, LaunchConfig{}, {}).status, LaunchStatus::DeviceDisabled);
}

// --- shared memory + barrier + atomics ---

TEST(Exec, SharedMemoryReductionWithBarrier) {
  constexpr std::uint32_t kThreads = 32;
  KernelBuilder kb("reduce", kThreads);
  auto out = kb.param_ptr("out");
  auto t = kb.tid_x();
  kb.shstore(t, t * i32c(2));
  kb.barrier();
  kb.if_then(t == i32c(0), [&] {
    auto acc = kb.let("acc", i32c(0));
    kb.for_loop("i", i32c(0), i32c(kThreads),
                [&](ExprH i) { kb.assign(acc, acc + kb.shload_i32(i)); });
    kb.store(out, acc);
  });
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1, AllocClass::I32Data);
  const Value args[] = {Value::ptr(oa)};
  ASSERT_EQ(dev.launch(prog, LaunchConfig{1, 1, kThreads, 1}, args).status, LaunchStatus::Ok);
  std::uint32_t result = 0;
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&result, 1));
  EXPECT_EQ(result, 2u * (kThreads * (kThreads - 1) / 2));
}

TEST(Exec, AtomicAddAccumulatesAcrossBlocks) {
  KernelBuilder kb("atom");
  auto out = kb.param_ptr("out");
  kb.atomic_add(out, i32c(1));
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1, AllocClass::I32Data);
  const Value args[] = {Value::ptr(oa)};
  ASSERT_EQ(dev.launch(prog, LaunchConfig{16, 1, 32, 1}, args).status, LaunchStatus::Ok);
  std::uint32_t result = 0;
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&result, 1));
  EXPECT_EQ(result, 16u * 32u);
}

// --- cost model / attribution ---

TEST(Cost, LoopCyclesDominateLoopHeavyKernel) {
  KernelBuilder kb("loopy");
  auto n = kb.param_i32("n");
  auto out = kb.param_ptr("out");
  auto acc = kb.let("acc", f32c(0.0f));
  kb.for_loop("i", i32c(0), n, [&](ExprH i) { kb.assign(acc, acc + to_f32(i) * f32c(0.5f)); });
  kb.store(out, acc);
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1);
  const Value args[] = {Value::i32(1000), Value::ptr(oa)};
  auto res = dev.launch(prog, LaunchConfig{}, args);
  ASSERT_EQ(res.status, LaunchStatus::Ok);
  EXPECT_GT(res.loop_cycles, res.cycles * 95 / 100);
  EXPECT_LE(res.loop_cycles, res.cycles);
}

TEST(Cost, DeterministicAcrossRuns) {
  KernelBuilder kb("det");
  auto n = kb.param_i32("n");
  auto acc = kb.let("acc", f32c(1.0f));
  kb.for_loop("i", i32c(0), n, [&](ExprH) { kb.assign(acc, acc * f32c(1.0001f)); });
  auto prog = lower(kb.build());
  Device dev(small_props());
  const Value args[] = {Value::i32(5000)};
  auto r1 = dev.launch(prog, LaunchConfig{8, 1, 32, 1}, args);
  auto r2 = dev.launch(prog, LaunchConfig{8, 1, 32, 1}, args);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.instructions, r2.instructions);
}

TEST(Cost, RegisterSpillIncreasesCycles) {
  // Same kernel, tighter register budget => spill surcharges => more cycles.
  KernelBuilder kb("spill");
  auto n = kb.param_i32("n");
  auto out = kb.param_ptr("out");
  std::vector<ExprH> vars;
  for (int v = 0; v < 30; ++v)
    vars.push_back(kb.let("v" + std::to_string(v), f32c(static_cast<float>(v))));
  auto acc = kb.let("acc", f32c(0.0f));
  kb.for_loop("i", i32c(0), n, [&](ExprH) {
    for (auto& v : vars) kb.assign(acc, acc + v);
  });
  kb.store(out, acc);
  auto prog = lower(kb.build());

  DeviceProps loose = small_props();
  loose.regs_per_thread = 64;
  DeviceProps tight = small_props();
  tight.regs_per_thread = 16;
  Device d1(loose), d2(tight);
  const auto o1 = d1.mem().alloc(1);
  const auto o2 = d2.mem().alloc(1);
  const Value a1[] = {Value::i32(100), Value::ptr(o1)};
  const Value a2[] = {Value::i32(100), Value::ptr(o2)};
  auto r1 = d1.launch(prog, LaunchConfig{}, a1);
  auto r2 = d2.launch(prog, LaunchConfig{}, a2);
  ASSERT_EQ(r1.status, LaunchStatus::Ok);
  ASSERT_EQ(r2.status, LaunchStatus::Ok);
  EXPECT_GT(r2.cycles, r1.cycles);
}

namespace {

/// Hand-assembled program exercising every detector opcode exactly once
/// (plus two Consts and two ChkXors), with values chosen so no check fires.
/// Fields: {op, flags, dst, a, b, aux, imm}.
BytecodeProgram detector_program() {
  BytecodeProgram p;
  p.name = "detops";
  p.num_slots = 2;
  p.slot_types = {DType::I32, DType::I32};
  p.detectors.push_back({0, "acc", DType::F32, false});
  p.code = {
      {OpCode::Const, 0, 0, 0, 0, 0, 0},     // slot0 = 0 (checksum accumulator)
      {OpCode::Const, 0, 1, 0, 0, 0, 5},     // slot1 = 5 (checked value)
      {OpCode::ChkXor, 0, 0, 1, 0, 0, 0},    // slot0 ^= slot1  -> 5
      {OpCode::ChkXor, 0, 0, 1, 0, 0, 0},    // slot0 ^= slot1  -> 0
      {OpCode::ChkValidate, 0, 0, 0, 0, 0, 0},  // slot0 == 0: checksum intact
      {OpCode::DupCmp, 0, 0, 1, 1, 0, 0},       // slot1 == slot1: duplicates agree
      {OpCode::RangeCheck, 0, 0, 1, 0, 0, 0},   // detector 0 (no hooks -> no-op)
      {OpCode::EqualCheck, 0, 0, 1, 1, 0, 0},   // equal: no violation
      {OpCode::Halt, 0, 0, 0, 0, 0, 0},
  };
  return p;
}

}  // namespace

TEST(Cost, DetectorOpcodeCyclesMatchCostModelOnBothEngines) {
  // Pins the per-opcode charge of the Hauberk detector instructions
  // (Table I's runtime overhead mechanism) to the cost model, on both the
  // predecoded fast engine and the reference switch interpreter.
  const auto prog = detector_program();
  for (const auto engine : {ExecEngine::Fast, ExecEngine::Reference}) {
    Device dev(small_props());
    dev.set_engine(engine);
    const CostModel& cm = dev.cost_model();
    const std::uint64_t expected = 2ull * cm.alu            // two Consts
                                   + 2ull * cm.chk_xor      // checksum updates
                                   + cm.chk_validate + cm.dup_cmp + cm.range_check +
                                   cm.equal_check;          // Halt is free
    const auto res = dev.launch(prog, LaunchConfig{}, {});
    ASSERT_EQ(res.status, LaunchStatus::Ok) << exec_engine_name(engine);
    EXPECT_EQ(res.cycles, expected) << exec_engine_name(engine);
    EXPECT_EQ(res.instructions, prog.code.size()) << exec_engine_name(engine);
    EXPECT_FALSE(res.sdc_alarm) << exec_engine_name(engine);
  }
}

TEST(Cost, DetectorSdcBitRaisesAlarmIdenticallyOnBothEngines) {
  // A mismatching duplicate pair must set the launch's SDC alarm with the
  // same cycle total on both engines (the check itself costs dup_cmp either
  // way; only the alarm bit differs from the clean program).
  auto prog = detector_program();
  prog.code[1].imm = 7;            // slot1 = 7
  prog.code[5] = {OpCode::DupCmp, 0, 0, 0, 1, 0, 0};  // slot0(0) != slot1(7)
  // Re-point ChkValidate at the still-zero slot0 so only DupCmp fires.
  std::uint64_t cycles[2] = {0, 0};
  int i = 0;
  for (const auto engine : {ExecEngine::Fast, ExecEngine::Reference}) {
    Device dev(small_props());
    dev.set_engine(engine);
    const auto res = dev.launch(prog, LaunchConfig{}, {});
    ASSERT_EQ(res.status, LaunchStatus::Ok) << exec_engine_name(engine);
    EXPECT_TRUE(res.sdc_alarm) << exec_engine_name(engine);
    cycles[i++] = res.cycles;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(Cost, ControlBlockChargeAdded) {
  KernelBuilder kb("cb");
  auto prog = lower(kb.build());
  Device dev(small_props());
  LaunchOptions plain, charged;
  charged.charge_control_block = true;
  auto r1 = dev.launch(prog, LaunchConfig{}, {}, plain);
  auto r2 = dev.launch(prog, LaunchConfig{}, {}, charged);
  EXPECT_EQ(r2.cycles - r1.cycles, dev.cost_model().control_block_per_launch);
}

// --- device fault model (BIST substrate) ---

TEST(FaultModel, PermanentAluFaultCorruptsIntegerResults) {
  KernelBuilder kb("alu");
  auto out = kb.param_ptr("out");
  kb.store(out, i32c(40) + i32c(2));
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(2, AllocClass::I32Data);
  const Value args[] = {Value::ptr(oa)};

  DeviceFaultModel fm;
  fm.kind = DeviceFaultModel::Kind::Permanent;
  fm.component = DeviceFaultModel::Component::ALU;
  fm.sm = 0;
  fm.mask = 1u << 4;
  dev.install_fault(fm);
  ASSERT_EQ(dev.launch(prog, LaunchConfig{}, args).status, LaunchStatus::Ok);
  std::uint32_t result = 0;
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&result, 1));
  EXPECT_NE(result, 42u);  // corrupted

  dev.clear_fault();
  ASSERT_EQ(dev.launch(prog, LaunchConfig{}, args).status, LaunchStatus::Ok);
  dev.mem().copy_out(oa, std::span<std::uint32_t>(&result, 1));
  EXPECT_EQ(result, 42u);  // healthy again
}

TEST(FaultModel, TransientFaultStopsAfterDuration) {
  KernelBuilder kb("trans");
  auto n = kb.param_i32("n");
  auto out = kb.param_ptr("out");
  auto acc = kb.let("acc", i32c(0));
  kb.for_loop("i", i32c(0), n, [&](ExprH) { kb.assign(acc, acc + i32c(0)); });
  kb.store(out, acc);
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1, AllocClass::I32Data);
  const Value args[] = {Value::i32(1000), Value::ptr(oa)};

  DeviceFaultModel fm;
  fm.kind = DeviceFaultModel::Kind::Transient;
  fm.component = DeviceFaultModel::Component::ALU;
  fm.mask = 0xff;
  fm.duration_ops = 1;  // exactly one corrupted op
  dev.install_fault(fm);
  ASSERT_EQ(dev.launch(prog, LaunchConfig{}, args).status, LaunchStatus::Ok);
  EXPECT_EQ(dev.fault_injected_ops_.load(), 1u);
}

TEST(Profiling, InstructionExecutionCountsSumToTotal) {
  KernelBuilder kb("prof");
  auto n = kb.param_i32("n");
  auto out = kb.param_ptr("out");
  auto acc = kb.let("acc", i32c(0));
  kb.for_loop("i", i32c(0), n, [&](ExprH i) { kb.assign(acc, acc + i); });
  kb.store(out, acc);
  auto prog = lower(kb.build());
  Device dev(small_props());
  const auto oa = dev.mem().alloc(1, AllocClass::I32Data);
  const Value args[] = {Value::i32(50), Value::ptr(oa)};
  std::vector<std::uint64_t> counts;
  LaunchOptions opts;
  opts.instr_exec_counts = &counts;
  const auto res = dev.launch(prog, LaunchConfig{2, 1, 8, 1}, args, opts);
  ASSERT_EQ(res.status, LaunchStatus::Ok);
  ASSERT_EQ(counts.size(), prog.code.size());
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, res.instructions);
  // The Halt instruction runs exactly once per thread.
  EXPECT_EQ(counts.back(), 16u);
}

TEST(Profiling, CountsAreDeterministicAcrossWorkers) {
  KernelBuilder kb("prof2");
  auto n = kb.param_i32("n");
  auto acc = kb.let("acc", f32c(0.0f));
  kb.for_loop("i", i32c(0), n, [&](ExprH) { kb.assign(acc, acc + f32c(0.5f)); });
  auto prog = lower(kb.build());
  const Value args[] = {Value::i32(30)};
  std::vector<std::uint64_t> c1, c2;
  for (auto* c : {&c1, &c2}) {
    Device dev(small_props());
    LaunchOptions opts;
    opts.instr_exec_counts = c;
    opts.max_workers = c == &c1 ? 1 : 4;
    ASSERT_EQ(dev.launch(prog, LaunchConfig{8, 1, 16, 1}, args, opts).status,
              LaunchStatus::Ok);
  }
  EXPECT_EQ(c1, c2);
}

TEST(SimtCost, UniformKernelCostsOneWarpIssuePerInstruction) {
  // 32 threads executing identical paths: warp cost = thread cost / 32.
  KernelBuilder kb("uni");
  auto n = kb.param_i32("n");
  auto acc = kb.let("acc", f32c(0.0f));
  kb.for_loop("i", i32c(0), n, [&](ExprH) { kb.assign(acc, acc + f32c(1.0f)); });
  auto prog = lower(kb.build());
  Device dev(small_props());
  const Value args[] = {Value::i32(40)};
  LaunchOptions opts;
  opts.simt_cost = true;
  const auto res = dev.launch(prog, LaunchConfig{1, 1, 32, 1}, args, opts);
  ASSERT_EQ(res.status, LaunchStatus::Ok);
  EXPECT_EQ(res.simt_cycles * 32, res.cycles);
}

TEST(SimtCost, DivergentTripCountsSerializeToWarpMaximum) {
  // Thread t iterates t times: per-thread cycles sum ~ Sum(t); warp cost of
  // the loop body ~ max(t) = 31 iterations.
  KernelBuilder kb("tri");
  auto acc = kb.let("acc", i32c(0));
  kb.for_loop("i", i32c(0), kb.thread_linear(), [&](ExprH) { kb.assign(acc, acc + i32c(1)); });
  auto prog = lower(kb.build());
  Device dev(small_props());
  LaunchOptions opts;
  opts.simt_cost = true;
  const auto res = dev.launch(prog, LaunchConfig{1, 1, 32, 1}, {}, opts);
  ASSERT_EQ(res.status, LaunchStatus::Ok);
  // Average trip is 15.5, max is 31: warp cost must be roughly twice the
  // per-thread average (sum/32), not equal to it.
  EXPECT_GT(res.simt_cycles * 32, res.cycles * 3 / 2);
}

TEST(SimtCost, IfElseDivergenceChargesBothPaths) {
  auto build = [](bool divergent) {
    KernelBuilder kb("d");
    auto tid = kb.let("tid", kb.thread_linear());
    auto sel = kb.let("sel", divergent ? (tid & i32c(1)) : i32c(0));
    auto acc = kb.let("acc", f32c(0.0f));
    kb.for_loop("i", i32c(0), i32c(32), [&](ExprH) {
      kb.if_then_else(sel == i32c(0), [&] { kb.assign(acc, acc + f32c(1.0f)); },
                      [&] { kb.assign(acc, acc + f32c(2.0f)); });
    });
    return lower(kb.build());
  };
  Device dev(small_props());
  LaunchOptions opts;
  opts.simt_cost = true;
  const auto uni = dev.launch(build(false), LaunchConfig{1, 1, 32, 1}, {}, opts);
  const auto div = dev.launch(build(true), LaunchConfig{1, 1, 32, 1}, {}, opts);
  ASSERT_EQ(uni.status, LaunchStatus::Ok);
  ASSERT_EQ(div.status, LaunchStatus::Ok);
  EXPECT_GT(div.simt_cycles, uni.simt_cycles * 120 / 100)
      << "divergent warps must serialize both branch paths";
  EXPECT_NEAR(static_cast<double>(div.cycles), static_cast<double>(uni.cycles),
              static_cast<double>(uni.cycles) * 0.05)
      << "per-thread cost is divergence-blind";
}

// --- restore_trial (the campaign service's per-trial re-staging primitive) ---

TEST(RestoreTrial, ZeroWordTrialIsANoOpThatStaysFresh) {
  // A trial that allocates nothing: image() is empty, restore_trial of the
  // empty image must be valid and leave the arena exactly fresh.
  DeviceMemory m(MemoryModel::FlatGpu, 64);
  const auto img = m.image();
  EXPECT_TRUE(img.empty());
  m.restore_trial(img);
  EXPECT_EQ(m.image(), img);

  // Even after a stray scribble above the (empty) staged prefix — the
  // no-page-protection case — restore_trial must wipe it back to zero.
  ASSERT_TRUE(m.store(10, 0xdeadbeefu));
  m.restore_trial(img);
  std::uint32_t v = 1;
  ASSERT_TRUE(m.load(10, v));
  EXPECT_EQ(v, 0u);
}

TEST(RestoreTrial, StoreExactlyAtHighWaterBoundaryIsCleared) {
  DeviceMemory m(MemoryModel::FlatGpu, 64);
  const auto base = m.alloc(8);
  std::vector<std::uint32_t> data(8);
  for (std::uint32_t i = 0; i < 8; ++i) data[i] = 100 + i;
  m.copy_in(base, data);
  const auto staged = m.image();
  ASSERT_EQ(staged.size(), 8u);

  // Scribble at the exact allocation boundary (first unallocated word) and
  // at the last physical word: both are above the staged prefix and must be
  // zeroed by restore_trial, while the prefix comes back bitwise.
  ASSERT_TRUE(m.store(8, 0xffffffffu));
  ASSERT_TRUE(m.store(63, 0xabababab));
  // Also corrupt the staged prefix itself.
  ASSERT_TRUE(m.store(3, 0x12345678u));

  m.restore_trial(staged);
  EXPECT_EQ(m.image(), staged) << "staged prefix must restore bitwise";
  std::uint32_t v = 1;
  ASSERT_TRUE(m.load(8, v));
  EXPECT_EQ(v, 0u) << "word at the high-water boundary must be wiped";
  ASSERT_TRUE(m.load(63, v));
  EXPECT_EQ(v, 0u) << "last physical word must be wiped";
}

TEST(RestoreTrial, RestoreAfterRestoreIsIdempotent) {
  DeviceMemory m(MemoryModel::FlatGpu, 128);
  const auto base = m.alloc(16);
  std::vector<std::uint32_t> data(16);
  for (std::uint32_t i = 0; i < 16; ++i) data[i] = i * i + 7;
  m.copy_in(base, data);
  const auto staged = m.image();

  ASSERT_TRUE(m.store(base + 5, 0xcccccccc));
  ASSERT_TRUE(m.store(40, 0xdddddddd));
  m.restore_trial(staged);
  const auto after_first = m.image();
  m.restore_trial(staged);  // no intervening stores: must change nothing
  EXPECT_EQ(m.image(), after_first);
  EXPECT_EQ(m.image(), staged);
  std::uint32_t v = 1;
  ASSERT_TRUE(m.load(40, v));
  EXPECT_EQ(v, 0u);
}

TEST(RestoreTrial, PostRestoreImageMatchesFreshDeviceBitwise) {
  // The determinism contract's memory leg: a restored arena must be
  // indistinguishable from a freshly staged one — compare against a second
  // device that never ran a faulty trial.
  const auto stage = [](DeviceMemory& m) {
    const auto a = m.alloc(12, AllocClass::F32Data);
    const auto b = m.alloc(4, AllocClass::PtrData);
    std::vector<std::uint32_t> va(12), vb(4);
    for (std::uint32_t i = 0; i < 12; ++i) va[i] = 0x40000000u + i;
    for (std::uint32_t i = 0; i < 4; ++i) vb[i] = i;
    m.copy_in(a, va);
    m.copy_in(b, vb);
  };
  DeviceMemory dirty(MemoryModel::FlatGpu, 256);
  DeviceMemory fresh(MemoryModel::FlatGpu, 256);
  stage(dirty);
  stage(fresh);
  const auto staged = fresh.image();

  // Simulate a wild trial: overwrite everything the model lets us reach.
  for (std::uint32_t addr = 0; addr < 256; ++addr) (void)dirty.store(addr, ~addr);
  dirty.restore_trial(staged);

  EXPECT_EQ(dirty.image(), fresh.image());
  for (std::uint32_t addr = 0; addr < 256; ++addr) {
    std::uint32_t dv = 1, fv = 2;
    ASSERT_TRUE(dirty.load(addr, dv));
    ASSERT_TRUE(fresh.load(addr, fv));
    ASSERT_EQ(dv, fv) << "word " << addr << " differs from a fresh device";
  }
}

TEST(RestoreTrial, NoteStoreGrowsTheWatermarkMonotonically) {
  DeviceMemory m(MemoryModel::FlatGpu, 64);
  const auto staged = m.image();
  // Engine-style dirty tracking: stores through flat_arena() + note_store.
  auto arena = m.flat_arena();
  ASSERT_FALSE(arena.empty());
  arena[20] = 0xeeeeeeee;
  m.note_store(20);
  arena[5] = 0x55555555;
  m.note_store(5);  // below the watermark: must not shrink it
  m.restore_trial(staged);
  std::uint32_t v = 1;
  ASSERT_TRUE(m.load(20, v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(m.load(5, v));
  EXPECT_EQ(v, 0u);
}
