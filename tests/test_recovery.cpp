// Tests for the recovery engine: guardian FSM (Fig. 11), BIST, backoff
// daemon, alpha controller, and hang detection — including the TPACF
// write-retry livelock of Section IX.B.
#include <gtest/gtest.h>

#include "hauberk/bist.hpp"
#include "hauberk/recovery.hpp"
#include "hauberk/runtime.hpp"
#include "kir/builder.hpp"
#include "swifi/campaign.hpp"
#include "swifi/injector.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using namespace hauberk::core;
using namespace hauberk::workloads;

namespace {

struct Fx {
  std::unique_ptr<Workload> w;
  KernelVariants v;
  Dataset ds;
  std::unique_ptr<KernelJob> job;
  gpusim::Device dev;
  ProfileData pd;
  std::unique_ptr<ControlBlock> cb;

  explicit Fx(std::unique_ptr<Workload> wl)
      : w(std::move(wl)),
        v(build_variants(w->build_kernel(Scale::Tiny))),
        ds(w->make_dataset(41, Scale::Tiny)),
        job(w->make_job(ds)) {
    pd = profile(dev, v, {job.get()});
    cb = make_configured_control_block(v.ft, pd);
  }
};

}  // namespace

// --- BIST ---

TEST(Bist, PassesOnHealthyDevice) {
  gpusim::Device dev;
  const BistResult r = run_bist(dev);
  EXPECT_FALSE(r.fault_detected);
}

TEST(Bist, DetectsPermanentAluFault) {
  gpusim::Device dev;
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Permanent;
  fm.component = gpusim::DeviceFaultModel::Component::ALU;
  fm.mask = 0x10;
  dev.install_fault(fm);
  const BistResult r = run_bist(dev);
  EXPECT_TRUE(r.fault_detected);
  EXPECT_TRUE(r.alu_failed);
}

TEST(Bist, DetectsPermanentFpuFault) {
  gpusim::Device dev;
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Permanent;
  fm.component = gpusim::DeviceFaultModel::Component::FPU;
  fm.mask = 0x00400000;
  dev.install_fault(fm);
  const BistResult r = run_bist(dev);
  EXPECT_TRUE(r.fault_detected);
  EXPECT_TRUE(r.fpu_failed);
  EXPECT_FALSE(r.alu_failed);
}

TEST(Bist, DetectsRegisterFileFault) {
  gpusim::Device dev;
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Permanent;
  fm.component = gpusim::DeviceFaultModel::Component::RegisterFile;
  fm.mask = 0x1;
  dev.install_fault(fm);
  EXPECT_TRUE(run_bist(dev).regfile_failed);
}

// --- guardian: Fig. 11 paths ---

TEST(Guardian, CleanRunIsSuccess) {
  Fx f(make_cp());
  Guardian g;
  const auto out = g.run_protected(f.dev, nullptr, f.v.ft, *f.job, *f.cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::Success);
  EXPECT_EQ(out.executions, 1);
  EXPECT_FALSE(out.bist_ran);
  EXPECT_FALSE(out.output.words.empty());
}

TEST(Guardian, MisconfiguredRangesDiagnosedAsFalseAlarmAndLearned) {
  Fx f(make_cp());
  // Force a false positive: configure absurdly tight ranges.
  for (auto& d : f.cb->detectors()) {
    if (d.meta.is_iteration_check) continue;
    d.ranges = RangeSet{};
    d.ranges.pos = {true, 1e20, 2e20};
    d.configured = true;
  }
  Guardian g;
  const auto out = g.run_protected(f.dev, nullptr, f.v.ft, *f.job, *f.cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::FalseAlarm);
  EXPECT_EQ(out.executions, 2);  // original + diagnosis reexecution

  // On-line learning: the absorbed outliers make the next run clean.
  const auto again = g.run_protected(f.dev, nullptr, f.v.ft, *f.job, *f.cb);
  EXPECT_EQ(again.verdict, RecoveryVerdict::Success);
}

TEST(Guardian, IntermittentDeviceFaultMigratesToSpare) {
  Fx f(make_cp());
  // An intermittent FPU fault that corrupts on an odd period: the two
  // diagnosis executions see different corruption, outputs differ => BIST
  // => disable + migrate.
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Permanent;
  fm.component = gpusim::DeviceFaultModel::Component::FPU;
  fm.mask = 0x7fc00000;  // exponent wreckage => range detectors fire
  fm.period = 97;
  f.dev.install_fault(fm);
  gpusim::Device spare;
  Guardian g;
  const auto out = g.run_protected(f.dev, &spare, f.v.ft, *f.job, *f.cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::MigratedToSpare);
  EXPECT_TRUE(out.bist_ran);
  EXPECT_TRUE(out.device_disabled);
  EXPECT_TRUE(f.dev.disabled());
  // The migrated output is the fault-free computation.
  auto args = f.job->setup(spare);
  const auto clean = spare.launch(f.v.baseline, f.job->config(), args);
  ASSERT_EQ(clean.status, gpusim::LaunchStatus::Ok);
  EXPECT_EQ(out.output.words, f.job->read_output(spare).words);
}

TEST(Guardian, TransientFaultRecoveredByReexecution) {
  Fx f(make_cp());
  // Transient: corrupts a bounded number of FPU ops, then disappears.  The
  // first run alarms; the reexecution is clean => TransientRecovered.
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Transient;
  fm.component = gpusim::DeviceFaultModel::Component::FPU;
  fm.mask = 0x7fc00000;
  fm.duration_ops = 40;
  f.dev.install_fault(fm);
  Guardian g;
  const auto out = g.run_protected(f.dev, nullptr, f.v.ft, *f.job, *f.cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::TransientRecovered);
  EXPECT_EQ(out.executions, 2);
}

TEST(Guardian, HangDetectedAndSurvivedWithRestart) {
  // Corrupt a TPACF write-retry address via fault injection: the kernel
  // livelocks; the guardian's watchdog kills and restarts it (Section IX.B —
  // the failure R-Naive and R-Scatter cannot handle).
  auto w = make_tpacf();
  auto v = build_variants(w->build_kernel(Scale::Tiny));
  const auto ds = w->make_dataset(42, Scale::Tiny);
  auto job = w->make_job(ds);
  gpusim::Device dev;
  auto pd = profile(dev, v, {job.get()});
  auto cb = make_configured_control_block(v.fift, pd);

  // Find the waddr site.
  const kir::FISite* waddr_site = nullptr;
  std::uint32_t waddr_index = 0;
  for (std::uint32_t i = 0; i < v.fift.fi_sites.size(); ++i)
    if (v.fift.fi_sites[i].var_name == "waddr" && !v.fift.fi_sites[i].dead_window) {
      waddr_site = &v.fift.fi_sites[i];
      waddr_index = i;
    }
  ASSERT_NE(waddr_site, nullptr);

  // Pick a thread that executes it.
  std::uint32_t thread = 0;
  for (std::uint32_t t = 0; t < pd.exec_counts[waddr_index].size(); ++t)
    if (pd.exec_counts[waddr_index][t] > 0) thread = t;

  swifi::FaultSpec spec;
  spec.site_id = waddr_site->site_id;
  spec.thread = thread;
  spec.occurrence = 1;
  spec.mask = 1u << 9;  // push the write address into an aliasing slot
  swifi::InjectingHooks hooks(v.fift, cb.get());
  hooks.arm(spec);

  auto args = job->setup(dev);
  gpusim::LaunchOptions opts;
  opts.hooks = &hooks;
  opts.watchdog_instructions = 2'000'000;
  const auto res = dev.launch(v.fift, job->config(), args, opts);
  // Either the corrupted address aliases a live slot (livelock -> Hang) or
  // leaves shared memory (crash); both are Failure-class and caught.
  EXPECT_NE(res.status, gpusim::LaunchStatus::Ok);

  // The guardian restarts it (fault is one-shot => restart succeeds).
  Guardian g;
  const auto out = g.run_protected(dev, nullptr, v.ft, *job, *cb);
  EXPECT_EQ(out.verdict, RecoveryVerdict::Success);
}

TEST(Guardian, RepeatedFailureWithHealthyDeviceIsUnsupportedSoftware) {
  // A kernel that always crashes (div by zero) on a healthy device.
  kir::KernelBuilder kb("always_crash");
  auto z = kb.param_i32("z");
  auto out = kb.param_ptr("out");
  kb.store(out, kir::i32c(1) / z);
  auto prog = kir::lower(kb.build());

  struct CrashJob : KernelJob {
    std::uint32_t addr = 0;
    std::vector<kir::Value> setup(gpusim::Device& dev) override {
      dev.reset_memory();
      addr = dev.mem().alloc(1);
      return {kir::Value::i32(0), kir::Value::ptr(addr)};
    }
    gpusim::LaunchConfig config() const override { return {}; }
    ProgramOutput read_output(const gpusim::Device&) const override { return {}; }
  } job;

  ControlBlock cb(prog);
  gpusim::Device dev;
  Guardian g;
  const auto out2 = g.run_protected(dev, nullptr, prog, job, cb);
  EXPECT_EQ(out2.verdict, RecoveryVerdict::UnsupportedSoftware);
  EXPECT_TRUE(out2.bist_ran);
  EXPECT_FALSE(dev.disabled());
}

// --- backoff daemon ---

TEST(BackoffDaemon, ReenablesDeviceOnceFaultClears) {
  gpusim::Device dev;
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Permanent;
  fm.component = gpusim::DeviceFaultModel::Component::ALU;
  fm.mask = 0x4;
  dev.install_fault(fm);
  dev.set_disabled(true);

  BackoffDaemon daemon(dev, 1.0);
  EXPECT_FALSE(daemon.tick(0.0));  // fault still present
  EXPECT_FALSE(daemon.tick(0.5));  // before backoff expires: no BIST run
  EXPECT_EQ(daemon.bist_runs(), 1);
  EXPECT_FALSE(daemon.tick(2.5));  // due again, still faulty
  EXPECT_EQ(daemon.bist_runs(), 2);
  EXPECT_GT(daemon.current_backoff(), 2.0);  // doubled twice

  dev.clear_fault();  // the intermittent fault goes away
  EXPECT_FALSE(daemon.tick(3.0));  // not due yet (backoff grew)
  EXPECT_TRUE(daemon.tick(100.0));
  EXPECT_FALSE(dev.disabled());
}

// --- alpha controller (Section VI(iii)) ---

TEST(AlphaController, IncreasesOnHighFalsePositiveRatio) {
  AlphaController ac;
  EXPECT_DOUBLE_EQ(ac.alpha(), 1.0);
  ac.update(0.30);
  EXPECT_DOUBLE_EQ(ac.alpha(), 10.0);
  ac.update(0.15);
  EXPECT_DOUBLE_EQ(ac.alpha(), 100.0);
}

TEST(AlphaController, DecreasesOnLowRatioWithFloorOne) {
  AlphaController ac;
  ac.set_alpha(100.0);
  ac.update(0.01);
  EXPECT_DOUBLE_EQ(ac.alpha(), 10.0);
  ac.update(0.01);
  EXPECT_DOUBLE_EQ(ac.alpha(), 1.0);
  ac.update(0.0);
  EXPECT_DOUBLE_EQ(ac.alpha(), 1.0);  // never below 1
}

TEST(AlphaController, StableInHysteresisBand) {
  AlphaController ac;
  ac.set_alpha(10.0);
  ac.update(0.07);  // between 5% and 10%
  EXPECT_DOUBLE_EQ(ac.alpha(), 10.0);
}
