// Tests for the fork-based process guardian (Section VI(i)): real child
// processes crashing, hanging and raising SDC alarms, supervised through
// pipes, waitpid and kill — the paper's actual guardian architecture.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>

#include "hauberk/posix_guardian.hpp"
#include "hauberk/runtime.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using core::ChildReport;
using core::ChildStatus;
using core::PosixGuardian;
using core::ProcessOutcome;

namespace {

PosixGuardian fast_guardian(double timeout = 2.0, int restarts = 2) {
  PosixGuardian::Config cfg;
  cfg.timeout_seconds = timeout;
  cfg.max_restarts = restarts;
  return PosixGuardian(cfg);
}

ChildReport ok_report(std::uint64_t digest, bool alarm = false) {
  ChildReport r;
  r.output_digest = digest;
  r.sdc_alarm = alarm;
  return r;
}

}  // namespace

TEST(PosixGuardian, CleanChildIsSuccess) {
  const auto g = fast_guardian();
  const auto run = g.run_once([] { return ok_report(42); });
  EXPECT_EQ(run.status, ChildStatus::CleanNoAlarm);
  EXPECT_EQ(run.report.output_digest, 42u);
  EXPECT_FALSE(run.killed);
}

TEST(PosixGuardian, CrashingChildDetectedViaWaitStatus) {
  const auto g = fast_guardian();
  const auto run = g.run_once([]() -> ChildReport {
    std::abort();  // SIGABRT in the child only
  });
  EXPECT_EQ(run.status, ChildStatus::Crashed);
  EXPECT_TRUE(WIFSIGNALED(run.wait_status));
}

TEST(PosixGuardian, ExitingNonzeroIsACrash) {
  const auto g = fast_guardian();
  const auto run = g.run_once([]() -> ChildReport { _exit(3); });
  EXPECT_EQ(run.status, ChildStatus::Crashed);
  ASSERT_TRUE(WIFEXITED(run.wait_status));
  EXPECT_EQ(WEXITSTATUS(run.wait_status), 3);
}

TEST(PosixGuardian, HangingChildKilledByTimeout) {
  const auto g = fast_guardian(/*timeout=*/0.3);
  const auto t0 = std::chrono::steady_clock::now();
  const auto run = g.run_once([]() -> ChildReport {
    for (;;) {}  // livelock in the child
  });
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_EQ(run.status, ChildStatus::Hung);
  EXPECT_TRUE(run.killed);
  EXPECT_LT(secs, 5.0) << "guardian must kill promptly, not wait forever";
}

TEST(PosixGuardian, AlarmWithIdenticalOutputsIsFalseAlarm) {
  const auto g = fast_guardian();
  const auto out = g.supervise([] { return ok_report(7, /*alarm=*/true); });
  EXPECT_EQ(out.verdict, ProcessOutcome::Verdict::FalseAlarmOrTransient);
  EXPECT_EQ(out.executions, 2);
}

TEST(PosixGuardian, AlarmWithDifferingOutputsIsSdcSuspected) {
  // Deterministically different digest per execution via a file-less channel:
  // the child derives its digest from its own pid (differs every fork).
  const auto g = fast_guardian();
  const auto out = g.supervise([] {
    return ok_report(static_cast<std::uint64_t>(getpid()), /*alarm=*/true);
  });
  EXPECT_EQ(out.verdict, ProcessOutcome::Verdict::SdcSuspected);
}

TEST(PosixGuardian, SupervisionSurvivesOneCrashViaRestart) {
  // The fault is "transient": it only strikes the first child.  Model it
  // with a PID-parity-free mechanism: a temp file records prior attempts.
  const std::string flag = "/tmp/hauberk_pg_restart_flag";
  std::remove(flag.c_str());
  const auto g = fast_guardian();
  const auto out = g.supervise([&]() -> ChildReport {
    if (FILE* f = std::fopen(flag.c_str(), "r")) {
      std::fclose(f);
      return ok_report(99);  // second attempt succeeds
    }
    std::fclose(std::fopen(flag.c_str(), "w"));
    std::abort();  // first attempt crashes (after leaving the marker)
  });
  std::remove(flag.c_str());
  EXPECT_EQ(out.verdict, ProcessOutcome::Verdict::RecoveredByRestart);
  EXPECT_GE(out.restarts, 1);
  EXPECT_EQ(out.last.report.output_digest, 99u);
}

TEST(PosixGuardian, PersistentCrashExhaustsRestarts) {
  const auto g = fast_guardian(/*timeout=*/2.0, /*restarts=*/2);
  const auto out = g.supervise([]() -> ChildReport { std::abort(); });
  EXPECT_EQ(out.verdict, ProcessOutcome::Verdict::Failed);
  EXPECT_EQ(out.executions, 3);  // initial + 2 restarts
  EXPECT_EQ(out.restarts, 2);
}

TEST(PosixGuardian, DigestIsStableAndSensitive) {
  const std::uint32_t a[3] = {1, 2, 3};
  const std::uint32_t b[3] = {1, 2, 4};
  EXPECT_EQ(PosixGuardian::digest(a, sizeof(a)), PosixGuardian::digest(a, sizeof(a)));
  EXPECT_NE(PosixGuardian::digest(a, sizeof(a)), PosixGuardian::digest(b, sizeof(b)));
}

TEST(PosixGuardian, SupervisesARealSimulatedGpuProgram) {
  // End-to-end: the child runs the CP program on the simulated GPU, digests
  // its output, and reports through the pipe.
  auto w = workloads::make_cp();
  const auto prog = kir::lower(w->build_kernel(workloads::Scale::Tiny));
  const auto ds = w->make_dataset(17, workloads::Scale::Tiny);

  const auto g = fast_guardian(/*timeout=*/10.0);
  auto child = [&]() -> ChildReport {
    gpusim::Device dev;
    auto job = w->make_job(ds);
    const auto args = job->setup(dev);
    const auto res = dev.launch(prog, job->config(), args);
    if (res.status != gpusim::LaunchStatus::Ok) _exit(2);  // crash semantics
    const auto out = job->read_output(dev);
    ChildReport r;
    r.output_digest = PosixGuardian::digest(out.words.data(), out.words.size() * 4);
    r.sdc_alarm = res.sdc_alarm;
    return r;
  };
  const auto out = g.supervise(child);
  EXPECT_EQ(out.verdict, ProcessOutcome::Verdict::Success);
  EXPECT_NE(out.last.report.output_digest, 0u);

  // Determinism across forks: two supervised runs agree on the digest.
  const auto out2 = g.supervise(child);
  EXPECT_EQ(out2.last.report.output_digest, out.last.report.output_digest);
}
