// Dataflow-graph walkthrough (Fig. 9): prints the CP kernel source, the
// dataflow graph of its loop with cumulative backward dataflow dependencies,
// the variable the selection algorithm protects, and finally the Hauberk-
// instrumented source (Fig. 8(c) non-loop detectors + Section V.B loop
// detectors, the HauberkCheckRange / HauberkCheckEqual calls of the paper's
// code listing).
//
// Usage: dataflow_graph [--program=CP|MRI-Q|...] [--maxvar=N]
#include <cstdio>

#include "common/cli.hpp"
#include "hauberk/translator.hpp"
#include "kir/printer.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string name = args.get("program", "CP");
  const int maxvar = static_cast<int>(args.get_int("maxvar", 1));

  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == name) w = std::move(cand);
  if (!w) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 1;
  }

  const auto kernel = w->build_kernel(workloads::Scale::Tiny);
  std::printf("=== original kernel source ===\n%s\n", kir::print_kernel(kernel).c_str());

  kir::Analysis an(kernel);
  for (const auto& ln : an.loops()) {
    if (ln.parent != kir::kNoLoop) continue;
    const auto df = an.loop_dataflow(ln.id);
    std::printf("=== Fig. 9: %s\n", kir::print_loop_dataflow(kernel, df).c_str());

    const auto plan = an.plan_loop_protection(ln.id, maxvar);
    std::printf("selection (Maxvar=%d):", maxvar);
    for (auto v : plan.selected)
      std::printf(" %s%s", kernel.vars[v].name.c_str(),
                  plan.self_accumulating.count(v) ? " (self-accumulating)" : "");
    std::printf("\ntrip count derivable: %s\n\n", plan.trip_count ? "yes" : "no");
  }

  core::TranslateOptions opt;
  opt.mode = core::LibMode::FT;
  opt.maxvar = maxvar;
  core::TranslateReport rep;
  const auto instrumented = core::translate(kernel, opt, &rep);
  std::printf("=== Hauberk FT instrumented source (%.3f ms transform) ===\n%s\n",
              rep.transform_seconds * 1e3, kir::print_kernel(instrumented).c_str());
  std::printf("placed: %d non-loop dup+checksum detectors, %zu loop detectors, "
              "%d protected parameters\n",
              rep.nonloop_protected, rep.loop_detectors.size(), rep.params_protected);
  return 0;
}
