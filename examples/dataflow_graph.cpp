// Dataflow-graph walkthrough (Fig. 9): prints the CP kernel source, the
// dataflow graph of its loop with cumulative backward dataflow dependencies,
// the variable the selection algorithm protects, and finally the Hauberk-
// instrumented source (Fig. 8(c) non-loop detectors + Section V.B loop
// detectors, the HauberkCheckRange / HauberkCheckEqual calls of the paper's
// code listing).
//
// Usage: dataflow_graph [--program=CP|MRI-Q|...] [--maxvar=N] [--dot]
//
// --dot emits the Fig. 9 graphs as Graphviz DOT instead of text, with the
// edges the lint coverage analyzer reports as reaching no detector drawn
// red/dashed (so the uncovered surface of an instrumented kernel is visible
// at a glance).
#include <cstdio>
#include <set>
#include <tuple>

#include "common/cli.hpp"
#include "hauberk/lint.hpp"
#include "hauberk/translator.hpp"
#include "kir/printer.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

/// Emit one DOT digraph over all top-level loop dataflow graphs.
void print_dot(const kir::Kernel& kernel, const kir::Analysis& an, int maxvar) {
  // Uncovered edges come from linting the instrumented kernel; original
  // variable ids are stable under instrumentation (passes only append vars).
  core::TranslateOptions opt;
  opt.mode = core::LibMode::FT;
  opt.maxvar = maxvar;
  const auto instrumented = core::translate(kernel, opt);
  const auto rep = lint::run_lint(instrumented, {});
  std::set<std::tuple<std::uint32_t, kir::VarId, kir::VarId>> uncovered;
  for (const auto& d : rep.diagnostics)
    if (d.kind == lint::DiagKind::UncoveredEdge) uncovered.insert({d.loop_id, d.var, d.var2});

  std::printf("digraph dataflow {\n  rankdir=BT;\n  node [shape=ellipse];\n");
  for (const auto& ln : an.loops()) {
    if (ln.parent != kir::kNoLoop) continue;
    const auto df = an.loop_dataflow(ln.id);
    std::printf("  subgraph cluster_loop%u {\n    label=\"loop %u\";\n", ln.id, ln.id);
    for (const auto v : df.loop_vars)
      std::printf("    v%u [label=\"%s\"];\n", v, kernel.vars[v].name.c_str());
    for (const auto& [def, uses] : df.uses)
      for (const auto use : uses)
        std::printf("    v%u -> v%u%s;\n", use, def,
                    uncovered.count({ln.id, def, use}) != 0
                        ? " [color=red, style=dashed, label=\"uncovered\"]"
                        : "");
    std::printf("  }\n");
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string name = args.get("program", "CP");
  const int maxvar = static_cast<int>(args.get_int("maxvar", 1));

  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == name) w = std::move(cand);
  if (!w) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 1;
  }

  const auto kernel = w->build_kernel(workloads::Scale::Tiny);
  if (args.has("dot")) {
    kir::Analysis an(kernel);
    print_dot(kernel, an, maxvar);
    return 0;
  }
  std::printf("=== original kernel source ===\n%s\n", kir::print_kernel(kernel).c_str());

  kir::Analysis an(kernel);
  for (const auto& ln : an.loops()) {
    if (ln.parent != kir::kNoLoop) continue;
    const auto df = an.loop_dataflow(ln.id);
    std::printf("=== Fig. 9: %s\n", kir::print_loop_dataflow(kernel, df).c_str());

    const auto plan = an.plan_loop_protection(ln.id, maxvar);
    std::printf("selection (Maxvar=%d):", maxvar);
    for (auto v : plan.selected)
      std::printf(" %s%s", kernel.vars[v].name.c_str(),
                  plan.self_accumulating.count(v) ? " (self-accumulating)" : "");
    std::printf("\ntrip count derivable: %s\n\n", plan.trip_count ? "yes" : "no");
  }

  core::TranslateOptions opt;
  opt.mode = core::LibMode::FT;
  opt.maxvar = maxvar;
  core::TranslateReport rep;
  const auto instrumented = core::translate(kernel, opt, &rep);
  std::printf("=== Hauberk FT instrumented source (%.3f ms transform) ===\n%s\n",
              rep.transform_seconds * 1e3, kir::print_kernel(instrumented).c_str());
  std::printf("placed: %d non-loop dup+checksum detectors, %zu loop detectors, "
              "%d protected parameters\n",
              rep.nonloop_protected, rep.loop_detectors.size(), rep.params_protected);
  return 0;
}
