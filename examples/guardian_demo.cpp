// Recovery-engine walkthrough (Section VI, Fig. 11): runs the CP program
// under the guardian through four scenarios:
//   1. healthy device                    -> Success,
//   2. misconfigured ranges              -> FalseAlarm + on-line learning,
//   3. transient FPU fault               -> TransientRecovered (reexecution),
//   4. permanent FPU fault + spare GPU   -> BIST -> disable -> migrate,
// and finally the backoff daemon re-enabling the device once the
// (intermittent) fault clears.
#include <cstdio>

#include "hauberk/recovery.hpp"
#include "hauberk/runtime.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;
using core::RecoveryVerdict;

namespace {

void report(const char* scenario, const core::RecoveryOutcome& out) {
  std::printf("%-38s -> %-20s (executions=%d, restarts=%d, bist=%s, disabled=%s)\n", scenario,
              core::recovery_verdict_name(out.verdict), out.executions, out.restarts,
              out.bist_ran ? "yes" : "no", out.device_disabled ? "yes" : "no");
}

}  // namespace

int main() {
  auto w = workloads::make_cp();
  const auto v = core::build_variants(w->build_kernel(workloads::Scale::Tiny));
  const auto ds = w->make_dataset(7, workloads::Scale::Tiny);
  auto job = w->make_job(ds);

  gpusim::Device dev;
  const auto profile = core::profile(dev, v, {job.get()});
  auto cb = core::make_configured_control_block(v.ft, profile);
  core::Guardian guardian;

  // 1. Healthy run.
  report("1. healthy device", guardian.run_protected(dev, nullptr, v.ft, *job, *cb));

  // 2. False alarm: break the configured ranges, let diagnosis fix them.
  for (auto& d : cb->detectors()) {
    if (d.meta.is_iteration_check || !d.configured) continue;
    d.ranges = core::RangeSet{};
    d.ranges.pos = {true, 1e20, 2e20};
  }
  report("2. misconfigured ranges", guardian.run_protected(dev, nullptr, v.ft, *job, *cb));
  report("   ... after on-line learning", guardian.run_protected(dev, nullptr, v.ft, *job, *cb));

  // 3. Transient fault: first run alarms, reexecution is clean.
  gpusim::DeviceFaultModel transient;
  transient.kind = gpusim::DeviceFaultModel::Kind::Transient;
  transient.component = gpusim::DeviceFaultModel::Component::FPU;
  transient.mask = 0x7fc00000;
  transient.duration_ops = 40;
  dev.install_fault(transient);
  report("3. transient FPU fault", guardian.run_protected(dev, nullptr, v.ft, *job, *cb));
  dev.clear_fault();

  // 4. Permanent fault with a spare device: BIST detects, job migrates.
  gpusim::DeviceFaultModel permanent;
  permanent.kind = gpusim::DeviceFaultModel::Kind::Permanent;
  permanent.component = gpusim::DeviceFaultModel::Component::FPU;
  permanent.mask = 0x7fc00000;
  permanent.period = 97;
  dev.install_fault(permanent);
  gpusim::Device spare;
  report("4. permanent FPU fault + spare", guardian.run_protected(dev, &spare, v.ft, *job, *cb));

  // 5. Backoff daemon: the fault eventually clears (intermittent), the
  //    device passes BIST and is re-enabled with exponentially spaced tests.
  core::BackoffDaemon daemon(dev, /*t_backoff_initial=*/1.0);
  double now = 0.0;
  bool reenabled = false;
  while (now < 16.0 && !reenabled) {
    if (now > 5.0 && dev.has_fault()) dev.clear_fault();  // fault goes away at t=5
    reenabled = daemon.tick(now);
    std::printf("   t=%4.1fs  backoff=%4.1fs  bist_runs=%d  device %s\n", now,
                daemon.current_backoff(), daemon.bist_runs(),
                dev.disabled() ? "disabled" : "ENABLED");
    now += 1.0;
  }
  std::printf("5. backoff daemon re-enabled the device after the fault cleared: %s\n",
              reenabled ? "yes" : "no");
  return 0;
}
