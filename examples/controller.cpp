// The evaluation controller (Fig. 7): the paper automates its five-binary
// flow with a GUI controller; this CLI drives the same flow for one program:
//
//   original binary      -> baseline performance
//   Hauberk profiler     -> fault-injection targets, golden output,
//                           value ranges (stored to a file)
//   Hauberk FT           -> protected performance
//   Hauberk FI           -> baseline error sensitivity
//   Hauberk FI&FT        -> Hauberk detection coverage
//
// Usage: controller [--program=CP] [--scale=small] [--ranges=/tmp/cp.ranges]
//        [--workers=N]   (campaign workers for steps 4/5; 0 = hw concurrency)
//        [--engine=reference|fast|sanitizer|threaded]
//                        (campaign trial interpreter; default fast)
//        [--protection=none|hamming|hsiao]
//                        (hardware ECC on every device, steps 1-5)
#include <cstdio>
#include <fstream>

#include "common/cli.hpp"
#include "hauberk/runtime.hpp"
#include "swifi/campaign.hpp"
#include "swifi/executor.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string name = args.get("program", "CP");
  const auto scale = args.get("scale", "small") == "tiny" ? workloads::Scale::Tiny
                                                          : workloads::Scale::Small;
  const std::string ranges_path = args.get("ranges", "/tmp/hauberk_" + name + ".ranges");

  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == name) w = std::move(cand);
  if (!w) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 1;
  }

  std::printf("=== Hauberk evaluation controller: %s ===\n\n", name.c_str());
  const auto cflags = common::parse_campaign_flags(args);
  for (const auto& err : args.errors()) std::fprintf(stderr, "error: %s\n", err.c_str());
  if (!args.ok()) return 2;
  gpusim::DeviceProps props;
  props.protection = static_cast<gpusim::ecc::Scheme>(cflags.protection);
  gpusim::Device dev(props);
  const auto v = core::build_variants(w->build_kernel(scale));
  const auto ds = w->make_dataset(args.get_u64("seed", 1), scale);
  auto job = w->make_job(ds);

  // 1. Original binary: baseline performance.
  auto bargs = job->setup(dev);
  const auto base = dev.launch(v.baseline, job->config(), bargs);
  std::printf("[1] baseline:   %llu modeled cycles, %llu instructions\n",
              static_cast<unsigned long long>(base.cycles),
              static_cast<unsigned long long>(base.instructions));

  // 2. Profiler binary: FI targets, golden output, value ranges -> file.
  const auto profile = core::profile(dev, v, {job.get()});
  {
    auto cb = core::make_configured_control_block(v.ft, profile);
    std::vector<core::RangeSet> sets;
    for (const auto& d : cb->detectors()) sets.push_back(d.ranges);
    std::ofstream out(ranges_path);
    core::save_ranges(out, sets);
  }
  std::size_t live_sites = 0;
  for (const auto& s : v.fi.fi_sites) live_sites += !s.dead_window;
  std::printf("[2] profiler:   %zu FI sites (%zu live-window), %zu detectors, "
              "golden output %zu words,\n                value ranges stored to %s\n",
              v.fi.fi_sites.size(), live_sites, v.profiler.detectors.size(),
              profile.golden.empty() ? 0 : profile.golden[0].size(), ranges_path.c_str());

  // 3. FT binary: protected performance (ranges loaded back from the file).
  std::vector<core::RangeSet> loaded;
  {
    std::ifstream in(ranges_path);
    loaded = core::load_ranges(in);
  }
  const auto make_loaded_cb = [&] {
    auto c = std::make_unique<core::ControlBlock>(v.fift);
    for (std::size_t d = 0; d < loaded.size(); ++d)
      if (!loaded[d].empty()) c->set_ranges(static_cast<int>(d), loaded[d]);
    return c;
  };
  auto cb = make_loaded_cb();
  auto fargs = job->setup(dev);
  gpusim::LaunchOptions fopts;
  fopts.hooks = cb.get();
  fopts.charge_control_block = true;
  const auto ft = dev.launch(v.ft, job->config(), fargs, fopts);
  std::printf("[3] FT:         %llu cycles (overhead %.1f%%), fault-free alarm: %s\n",
              static_cast<unsigned long long>(ft.cycles),
              100.0 * (static_cast<double>(ft.cycles) - static_cast<double>(base.cycles)) /
                  static_cast<double>(base.cycles),
              ft.sdc_alarm || cb->sdc_detected() ? "YES (bad!)" : "no");

  // 4. FI binary: baseline error sensitivity (trials spread across workers).
  const auto engine = static_cast<gpusim::ExecEngine>(cflags.engine);
  swifi::CampaignExecutor ex(cflags.workers);
  swifi::PlanOptions popt;
  popt.max_vars = static_cast<int>(args.get_int("vars", 20));
  popt.masks_per_var = static_cast<int>(args.get_int("masks", 10));
  popt.seed = args.get_u64("seed", 1) + 5;
  const auto fi_specs = swifi::plan_faults(v.fi, profile, popt);
  swifi::CampaignConfig fi_cfg;
  fi_cfg.engine = engine;
  fi_cfg.protection = props.protection;
  fi_cfg.pipeline = swifi::PipelineSpec::from_report(v.fi_report);
  const auto fi = ex.run(
      v.fi,
      [&] {
        swifi::WorkerContext ctx;
        ctx.device = std::make_unique<gpusim::Device>(props);
        ctx.job = w->make_job(ds);
        return ctx;
      },
      fi_specs, w->requirement(), fi_cfg);
  std::printf("[4] FI:         %llu faults -> %.1f%% failure, %.1f%% SDC, %.1f%% masked\n",
              static_cast<unsigned long long>(fi.counts.activated()),
              100.0 * fi.counts.ratio(fi.counts.failure),
              100.0 * fi.counts.ratio(fi.counts.undetected),
              100.0 * fi.counts.ratio(fi.counts.masked));

  // 5. FI&FT binary: Hauberk detection coverage (each worker reloads the
  // stored ranges into its own control block).
  const auto fift_specs = swifi::plan_faults(v.fift, profile, popt);
  swifi::CampaignConfig fift_cfg;
  fift_cfg.engine = engine;
  fift_cfg.protection = props.protection;
  fift_cfg.pipeline = swifi::PipelineSpec::from_report(v.fift_report);
  const auto fift = ex.run(
      v.fift,
      [&] {
        swifi::WorkerContext ctx;
        ctx.device = std::make_unique<gpusim::Device>(props);
        ctx.job = w->make_job(ds);
        ctx.cb = make_loaded_cb();
        return ctx;
      },
      fift_specs, w->requirement(), fift_cfg);
  std::printf("[5] FI&FT:      %llu faults -> coverage %.1f%% "
              "(%.1f%% detected, %.1f%% detected&masked, %.1f%% undetected)\n",
              static_cast<unsigned long long>(fift.counts.activated()),
              100.0 * fift.counts.coverage(),
              100.0 * fift.counts.ratio(fift.counts.detected),
              100.0 * fift.counts.ratio(fift.counts.detected_masked),
              100.0 * fift.counts.ratio(fift.counts.undetected));
  return 0;
}
