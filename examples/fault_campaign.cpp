// Fault-injection campaign CLI: run a SWIFI campaign against any benchmark
// program, with or without Hauberk protection, and print the outcome
// breakdown (the building block behind Figs. 1 and 14).
//
// Usage:
//   fault_campaign --program=MRI-Q [--bits=1] [--vars=20] [--masks=10]
//                  [--protected] [--scale=tiny|small|medium] [--seed=N]
//                  [--workers=N]   (campaign workers; 0 = hardware concurrency)
//                  [--sanitize]    (run trials under the sanitizer engine:
//                                   races / barrier divergence become their
//                                   own outcome classes)
//                  [--sanitize-cap=N]  (per-block sanitizer report cap)
//                  [--engine=reference|fast|sanitizer|threaded]
//                                  (trial interpreter; default fast — engines
//                                   are bitwise identical, only speed differs)
//                  [--protection=none|hamming|hsiao]
//                                  (hardware ECC on every campaign device;
//                                   single-bit memory errors correct, double-bit
//                                   errors detect — composes with --protected
//                                   for the hardware-vs-Hauberk comparison)
//                  [--plan=FILE]   (selective-hardening plan — kirtune
//                                   --emit-plan output — applied to the
//                                   instrumented variants; its digest is
//                                   folded into the campaign digest)
//                  [--prune=FILE]  (static pruning plan — kirprune
//                                   --emit-plan output — run one trial per
//                                   fault-site equivalence class, weighting
//                                   aggregates by class size)
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/prune.hpp"
#include "hauberk/runtime.hpp"
#include "swifi/campaign.hpp"
#include "swifi/executor.hpp"
#include "swifi/prune.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  for (const auto& f : args.unknown_flags({"program", "bits", "vars", "masks", "protected",
                                           "scale", "seed", "workers", "sanitize",
                                           "sanitize-cap", "engine", "protection",
                                           "plan", "prune"})) {
    std::fprintf(stderr, "error: unknown flag --%s\n", f.c_str());
    return 2;
  }
  const std::string name = args.get("program", "CP");
  const int bits = static_cast<int>(args.get_int("bits", 1));
  const bool use_ft = args.has("protected");
  const auto flags = common::parse_campaign_flags(args);
  const auto scale = args.get("scale", "small") == "tiny" ? workloads::Scale::Tiny
                                                          : workloads::Scale::Small;
  if (!args.ok()) {
    for (const auto& e : args.errors()) std::fprintf(stderr, "error: %s\n", e.c_str());
    return 2;
  }

  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == name) w = std::move(cand);
  for (auto& cand : workloads::graphics_suite())
    if (cand && cand->name() == name) w = std::move(cand);
  if (!w) {
    std::fprintf(stderr, "unknown program '%s' (try CP, MRI-FHD, MRI-Q, PNS, RPES, SAD, "
                         "TPACF, ocean-flow, ray-trace)\n", name.c_str());
    return 1;
  }

  core::TranslateOptions topt;
  if (!flags.plan.empty()) {
    try {
      topt.plan = std::make_shared<core::HardeningPlan>(core::load_plan(flags.plan));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: --plan: %s\n", ex.what());
      return 2;
    }
  }

  gpusim::DeviceProps props;
  props.protection = static_cast<gpusim::ecc::Scheme>(flags.protection);
  gpusim::Device dev(props);
  const auto v = core::build_variants(w->build_kernel(scale), topt);
  const auto ds = w->make_dataset(args.get_u64("seed", 1), scale);
  auto job = w->make_job(ds);
  const auto profile = core::profile(dev, v, {job.get()});

  swifi::PlanOptions opt;
  opt.max_vars = static_cast<int>(args.get_int("vars", 20));
  opt.masks_per_var = static_cast<int>(args.get_int("masks", 10));
  opt.error_bits = bits;
  opt.seed = args.get_u64("seed", 1) + 99;

  const auto& prog = use_ft ? v.fift : v.fi;
  const auto& prog_report = use_ft ? v.fift_report : v.fi_report;
  auto specs = swifi::plan_faults(prog, profile, opt);

  swifi::PrunedCampaign pruned;
  bool use_prune = false;
  if (!flags.prune.empty()) {
    try {
      const auto pplan = prune::load_pruning_plan(flags.prune);
      pruned = swifi::prune_specs(pplan, w->name(), prog, specs);
      specs = pruned.specs;
      use_prune = true;
      std::printf("pruning: %llu specs -> %llu representatives (%.1fx, %llu benign classes)\n",
                  static_cast<unsigned long long>(pruned.stats.total_specs),
                  static_cast<unsigned long long>(pruned.stats.kept_specs),
                  pruned.stats.reduction(),
                  static_cast<unsigned long long>(pruned.stats.benign_classes));
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: --prune: %s\n", ex.what());
      return 2;
    }
  }

  swifi::CampaignExecutor ex(flags.workers);
  std::printf("program %s (%s), %d-bit faults, %zu experiments, detectors %s, %d workers%s%s%s\n",
              w->name().c_str(), w->requirement().to_string().c_str(), bits, specs.size(),
              use_ft ? "ON (Hauberk FT)" : "off (baseline sensitivity)", ex.workers(),
              flags.sanitize ? ", sanitizer ON" : "",
              flags.protection != common::ProtectionKind::None ? ", ECC " : "",
              flags.protection != common::ProtectionKind::None
                  ? common::protection_kind_name(flags.protection)
                  : "");

  swifi::CampaignConfig cfg;
  cfg.engine = static_cast<gpusim::ExecEngine>(flags.engine);
  cfg.sanitize = flags.sanitize;
  cfg.sanitize_cap = static_cast<std::size_t>(flags.sanitize_cap);
  cfg.protection = props.protection;
  cfg.pipeline = swifi::PipelineSpec::from_report(prog_report);
  if (topt.plan) cfg.plan_digest = core::plan_digest(*topt.plan);
  if (use_prune) {
    cfg.prune_digest = pruned.plan_digest;
    cfg.trial_weights = pruned.weights;
  }
  const auto res = ex.run(
      prog,
      [&] {
        swifi::WorkerContext ctx;
        ctx.device = std::make_unique<gpusim::Device>(props);
        ctx.job = w->make_job(ds);
        if (use_ft) ctx.cb = core::make_configured_control_block(v.fift, profile);
        return ctx;
      },
      specs, w->requirement(), cfg);
  std::printf("instrumentation pipeline: %s (remark digest %016llx)\n",
              res.pipeline.c_str(), static_cast<unsigned long long>(res.remark_digest));
  const auto& c = res.counts;
  const auto pct = [&](std::uint64_t x) { return 100.0 * c.ratio(x); };
  std::printf("\n  failure (crash/hang) : %5.1f%%\n", pct(c.failure));
  std::printf("  masked               : %5.1f%%\n", pct(c.masked));
  std::printf("  detected & masked    : %5.1f%%\n", pct(c.detected_masked));
  std::printf("  detected             : %5.1f%%\n", pct(c.detected));
  std::printf("  undetected SDC       : %5.1f%%\n", pct(c.undetected));
  if (flags.sanitize) {
    std::printf("  race detected        : %5.1f%%\n", pct(c.race_detected));
    std::printf("  barrier divergence   : %5.1f%%\n", pct(c.barrier_divergence));
  }
  if (flags.protection != common::ProtectionKind::None) {
    std::printf("  ecc corrected        : %5.1f%%\n", pct(c.ecc_corrected));
    std::printf("  ecc uncorrectable    : %5.1f%%\n", pct(c.ecc_uncorrectable));
  }
  std::printf("  -------------------------------\n");
  std::printf("  detection coverage   : %5.1f%%\n", 100.0 * c.coverage());
  if (c.not_activated)
    std::printf("  (%llu planned faults never activated)\n",
                static_cast<unsigned long long>(c.not_activated));
  return 0;
}
