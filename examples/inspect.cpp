// Kernel inspection CLI: dump any benchmark program's source, instrumented
// source, bytecode disassembly, dataflow graphs, FI-site table, detector
// table and per-variant resource statistics.
//
// Usage:
//   inspect --program=CP [--what=source|ft|disasm|dataflow|sites|stats|all]
//   inspect --program=CP --print-passes [--mode=ft] [--maxvar=N] [--naive]
//   inspect --program=CP --dump-passes=DIR [--mode=ft]
//
// --print-passes shows the pass pipeline composed for the selected library
// mode plus the structured remarks each pass emitted (detector placed or
// skipped and why, Maxvar evictions) and the analysis-cache behavior;
// --dump-passes additionally writes the kernel IR before the first pass and
// after every pass to DIR, for before/after diffing of one transformation.
//
// Every mode accepts --plan=FILE (a kirtune --emit-plan hardening plan):
// instrumented output, pipelines, remarks and lint reports then reflect the
// plan's per-kernel/per-loop/per-variable selections.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string_view>

#include "common/cli.hpp"
#include "hauberk/passes/pass_manager.hpp"
#include "hauberk/plan.hpp"
#include "hauberk/runtime.hpp"
#include "kir/printer.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

core::LibMode mode_from(const std::string& s) {
  if (s == "baseline" || s == "none") return core::LibMode::None;
  if (s == "profiler") return core::LibMode::Profiler;
  if (s == "fi") return core::LibMode::FI;
  if (s == "fift" || s == "fi+ft") return core::LibMode::FIFT;
  return core::LibMode::FT;
}

/// Load --plan=FILE into `opt`; returns false (message printed) on failure.
bool apply_plan_flag(const common::CliArgs& args, core::TranslateOptions& opt) {
  const std::string path = args.get("plan", "");
  if (path.empty()) return true;
  try {
    opt.plan = std::make_shared<core::HardeningPlan>(core::load_plan(path));
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "--plan: %s\n", ex.what());
    return false;
  }
  return true;
}

/// The --print-passes / --dump-passes mode: compose the pipeline, run it
/// with a trace observer, and report passes, remarks and cache stats.
int inspect_passes(const kir::Kernel& kernel, const common::CliArgs& args) {
  core::TranslateOptions opt;
  opt.mode = mode_from(args.get("mode", "ft"));
  opt.maxvar = static_cast<int>(args.get_int("maxvar", 1));
  opt.naive_duplication = args.has("naive");
  opt.protect_loop = !args.has("no-loop");
  opt.protect_nonloop = !args.has("no-nonloop");
  if (!apply_plan_flag(args, opt)) return 2;

  core::TranslateOptions eff = opt;
  const core::PassPipeline pipe =
      opt.plan ? core::plan_to_pipeline(*opt.plan, opt, kernel.name, &eff)
               : core::pipeline_for(opt.mode, opt);
  std::printf("pipeline '%s' for kernel '%s':\n", pipe.name().c_str(), kernel.name.c_str());
  int n = 0;
  for (const auto& pn : pipe.pass_names()) std::printf("  %2d. %s\n", ++n, pn.c_str());

  const std::string dump_dir = args.get("dump-passes", "");
  int stage = 0;
  core::PassTraceFn trace;
  if (!dump_dir.empty()) {
    trace = [&](std::string_view st, const kir::Kernel& k, bool mutated) {
      const std::string path =
          dump_dir + "/" + (stage < 10 ? "0" : "") + std::to_string(stage) + "_" +
          std::string(st) + ".kir";
      ++stage;
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
      }
      out << kir::print_kernel(k);
      std::printf("  wrote %s%s\n", path.c_str(), mutated ? "  (pass mutated the AST)" : "");
    };
    std::printf("\nper-pass kernel dumps:\n");
  }

  core::TranslateReport rep;
  core::PassContext ctx(kir::clone_kernel(kernel), eff, rep);
  core::PassManager(std::move(trace)).run(pipe, ctx);

  std::printf("\nremarks (%zu):\n%s", rep.remarks.size(), core::format_remarks(rep).c_str());
  std::printf("\nanalysis cache: %llu hits, %llu misses, %llu invalidations (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(rep.analysis_cache.hits),
              static_cast<unsigned long long>(rep.analysis_cache.misses),
              static_cast<unsigned long long>(rep.analysis_cache.invalidations),
              100.0 * rep.analysis_cache.hit_rate());
  std::printf("remark digest: %016llx\n",
              static_cast<unsigned long long>(core::remark_digest(rep)));
  return 0;
}

void print_sites(const kir::BytecodeProgram& p) {
  std::printf("FI sites (%zu):\n", p.fi_sites.size());
  std::printf("  %-4s %-14s %-4s %-12s %-6s %s\n", "id", "variable", "type", "hw", "loop",
              "window");
  for (const auto& s : p.fi_sites) {
    const char* hw = "?";
    switch (s.hw) {
      case kir::HwComponent::ALU: hw = "ALU"; break;
      case kir::HwComponent::FPU: hw = "FPU"; break;
      case kir::HwComponent::RegisterFile: hw = "RegFile"; break;
      case kir::HwComponent::Scheduler: hw = "Scheduler"; break;
      case kir::HwComponent::Memory: hw = "Memory"; break;
    }
    std::printf("  %-4u %-14s %-4s %-12s %-6s %s\n", s.site_id, s.var_name.c_str(),
                kir::dtype_name(s.type), hw, s.in_loop ? "yes" : "no",
                s.dead_window ? "late" : "live");
  }
}

/// The --lint mode: instrument with the lint stage appended to the pipeline
/// (TranslateOptions::lint) and print the resulting LintReport.
int inspect_lint(const kir::Kernel& kernel, const common::CliArgs& args) {
  core::TranslateOptions opt;
  opt.mode = mode_from(args.get("mode", "ft"));
  opt.maxvar = static_cast<int>(args.get_int("maxvar", 1));
  opt.naive_duplication = args.has("naive");
  opt.lint = true;
  if (!apply_plan_flag(args, opt)) return 2;
  core::TranslateReport rep;
  (void)core::translate(kernel, opt, &rep);
  if (args.has("json"))
    std::fputs(rep.lint.to_json().c_str(), stdout);
  else
    std::fputs(rep.lint.to_string().c_str(), stdout);
  return rep.lint.errors > 0 ? 1 : 0;
}

void print_stats(const core::KernelVariants& v) {
  std::printf("variant statistics:\n");
  std::printf("  %-10s %-8s %-8s %-10s %-10s\n", "variant", "instrs", "regs", "detectors",
              "fi-sites");
  const struct {
    const char* name;
    const kir::BytecodeProgram* p;
  } rows[] = {{"baseline", &v.baseline}, {"profiler", &v.profiler}, {"ft", &v.ft},
              {"fi", &v.fi},             {"fi+ft", &v.fift}};
  for (const auto& r : rows)
    std::printf("  %-10s %-8zu %-8u %-10zu %-10zu\n", r.name, r.p->code.size(),
                r.p->register_demand(), r.p->detectors.size(), r.p->fi_sites.size());
  std::printf("  shared memory: %u bytes; translator: %d non-loop vars, %zu loop detectors, "
              "%.3f ms\n",
              v.ft.shared_mem_words * 4, v.ft_report.nonloop_protected,
              v.ft_report.loop_detectors.size(), v.ft_report.transform_seconds * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string name = args.get("program", "CP");
  const std::string what = args.get("what", "all");

  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == name) w = std::move(cand);
  for (auto& cand : workloads::graphics_suite())
    if (cand && cand->name() == name) w = std::move(cand);
  for (auto& cand : workloads::cpu_suite())
    if (cand && cand->name() == name) w = std::move(cand);
  if (!w && name == "cpu-matmul") w = workloads::make_cpu_matmul();
  if (!w) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 1;
  }

  const auto kernel = w->build_kernel(workloads::Scale::Small);
  if (args.has("print-passes") || args.has("dump-passes")) return inspect_passes(kernel, args);
  if (args.has("lint")) return inspect_lint(kernel, args);
  core::TranslateOptions topt;
  if (!apply_plan_flag(args, topt)) return 2;
  const auto v = core::build_variants(kernel, topt);
  const bool all = what == "all";

  if (all || what == "source")
    std::printf("=== source ===\n%s\n", kir::print_kernel(kernel).c_str());
  if (all || what == "ft")
    std::printf("=== Hauberk FT source ===\n%s\n", kir::print_kernel(v.ft_source).c_str());
  if (all || what == "dataflow") {
    kir::Analysis an(kernel);
    for (const auto& ln : an.loops())
      if (ln.parent == kir::kNoLoop)
        std::printf("=== %s", kir::print_loop_dataflow(kernel, an.loop_dataflow(ln.id)).c_str());
    std::printf("\n");
  }
  if (what == "disasm")  // verbose: only on request
    std::printf("=== baseline disassembly ===\n%s\n", kir::disassemble(v.baseline).c_str());
  if (all || what == "sites") print_sites(v.fi);
  if (all || what == "stats") print_stats(v);
  return 0;
}
