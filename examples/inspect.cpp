// Kernel inspection CLI: dump any benchmark program's source, instrumented
// source, bytecode disassembly, dataflow graphs, FI-site table, detector
// table and per-variant resource statistics.
//
// Usage:
//   inspect --program=CP [--what=source|ft|disasm|dataflow|sites|stats|all]
#include <cstdio>

#include "common/cli.hpp"
#include "hauberk/runtime.hpp"
#include "kir/printer.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

void print_sites(const kir::BytecodeProgram& p) {
  std::printf("FI sites (%zu):\n", p.fi_sites.size());
  std::printf("  %-4s %-14s %-4s %-12s %-6s %s\n", "id", "variable", "type", "hw", "loop",
              "window");
  for (const auto& s : p.fi_sites) {
    const char* hw = "?";
    switch (s.hw) {
      case kir::HwComponent::ALU: hw = "ALU"; break;
      case kir::HwComponent::FPU: hw = "FPU"; break;
      case kir::HwComponent::RegisterFile: hw = "RegFile"; break;
      case kir::HwComponent::Scheduler: hw = "Scheduler"; break;
      case kir::HwComponent::Memory: hw = "Memory"; break;
    }
    std::printf("  %-4u %-14s %-4s %-12s %-6s %s\n", s.site_id, s.var_name.c_str(),
                kir::dtype_name(s.type), hw, s.in_loop ? "yes" : "no",
                s.dead_window ? "late" : "live");
  }
}

void print_stats(const core::KernelVariants& v) {
  std::printf("variant statistics:\n");
  std::printf("  %-10s %-8s %-8s %-10s %-10s\n", "variant", "instrs", "regs", "detectors",
              "fi-sites");
  const struct {
    const char* name;
    const kir::BytecodeProgram* p;
  } rows[] = {{"baseline", &v.baseline}, {"profiler", &v.profiler}, {"ft", &v.ft},
              {"fi", &v.fi},             {"fi+ft", &v.fift}};
  for (const auto& r : rows)
    std::printf("  %-10s %-8zu %-8u %-10zu %-10zu\n", r.name, r.p->code.size(),
                r.p->register_demand(), r.p->detectors.size(), r.p->fi_sites.size());
  std::printf("  shared memory: %u bytes; translator: %d non-loop vars, %zu loop detectors, "
              "%.3f ms\n",
              v.ft.shared_mem_words * 4, v.ft_report.nonloop_protected,
              v.ft_report.loop_detectors.size(), v.ft_report.transform_seconds * 1e3);
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const std::string name = args.get("program", "CP");
  const std::string what = args.get("what", "all");

  std::unique_ptr<workloads::Workload> w;
  for (auto& cand : workloads::hpc_suite())
    if (cand->name() == name) w = std::move(cand);
  for (auto& cand : workloads::graphics_suite())
    if (cand && cand->name() == name) w = std::move(cand);
  if (!w) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 1;
  }

  const auto kernel = w->build_kernel(workloads::Scale::Small);
  const auto v = core::build_variants(kernel);
  const bool all = what == "all";

  if (all || what == "source")
    std::printf("=== source ===\n%s\n", kir::print_kernel(kernel).c_str());
  if (all || what == "ft")
    std::printf("=== Hauberk FT source ===\n%s\n", kir::print_kernel(v.ft_source).c_str());
  if (all || what == "dataflow") {
    kir::Analysis an(kernel);
    for (const auto& ln : an.loops())
      if (ln.parent == kir::kNoLoop)
        std::printf("=== %s", kir::print_loop_dataflow(kernel, an.loop_dataflow(ln.id)).c_str());
    std::printf("\n");
  }
  if (what == "disasm")  // verbose: only on request
    std::printf("=== baseline disassembly ===\n%s\n", kir::disassemble(v.baseline).c_str());
  if (all || what == "sites") print_sites(v.fi);
  if (all || what == "stats") print_stats(v);
  return 0;
}
