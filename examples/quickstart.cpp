// Quickstart: protect a GPU kernel with Hauberk in ~80 lines.
//
//  1. author a kernel in the kernel IR builder DSL,
//  2. build the five program variants (Fig. 7),
//  3. profile value ranges on a training run,
//  4. run under protection — then inject a fault and watch it get caught.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "hauberk/runtime.hpp"
#include "kir/builder.hpp"
#include "swifi/campaign.hpp"
#include "swifi/injector.hpp"

using namespace hauberk;
using namespace hauberk::kir;

namespace {

/// A tiny dot-product-style kernel: each thread accumulates x[i]*y[i] over a
/// strided range and writes one partial sum.
Kernel make_kernel() {
  KernelBuilder kb("dot_kernel");
  auto x = kb.param_ptr("x");
  auto y = kb.param_ptr("y");
  auto out = kb.param_ptr("out");
  auto n = kb.param_i32("n");

  auto tid = kb.let("tid", kb.thread_linear());
  auto nthreads = kb.let("nthreads", kb.bdim_x() * kb.gdim_x());
  auto acc = kb.let("acc", f32c(0.0f));
  kb.for_loop_step("i", tid, n, nthreads, [&](ExprH i) {
    kb.assign(acc, acc + kb.load_f32(x + i) * kb.load_f32(y + i));
  });
  kb.store(out + tid, acc);
  return kb.build();
}

/// Host-side data environment for the kernel.
class DotJob final : public core::KernelJob {
 public:
  explicit DotJob(int n) : n_(n) {}

  std::vector<Value> setup(gpusim::Device& dev) override {
    dev.reset_memory();
    std::vector<std::uint32_t> xs(static_cast<std::size_t>(n_)), ys(xs.size());
    for (int i = 0; i < n_; ++i) {
      xs[static_cast<std::size_t>(i)] = Value::f32(0.5f + 0.001f * static_cast<float>(i)).bits;
      ys[static_cast<std::size_t>(i)] = Value::f32(2.0f - 0.001f * static_cast<float>(i)).bits;
    }
    const auto xa = dev.mem().alloc(static_cast<std::uint32_t>(n_), gpusim::AllocClass::F32Data);
    const auto ya = dev.mem().alloc(static_cast<std::uint32_t>(n_), gpusim::AllocClass::F32Data);
    out_ = dev.mem().alloc(64, gpusim::AllocClass::F32Data);
    dev.mem().copy_in(xa, xs);
    dev.mem().copy_in(ya, ys);
    return {Value::ptr(xa), Value::ptr(ya), Value::ptr(out_), Value::i32(n_)};
  }

  gpusim::LaunchConfig config() const override { return {2, 1, 32, 1}; }

  core::ProgramOutput read_output(const gpusim::Device& dev) const override {
    core::ProgramOutput o;
    o.type = DType::F32;
    o.words.resize(64);
    dev.mem().copy_out(out_, o.words);
    return o;
  }

 private:
  int n_;
  std::uint32_t out_ = 0;
};

}  // namespace

int main() {
  // 1. The kernel and its five variants.
  const Kernel k = make_kernel();
  const auto v = core::build_variants(k);
  std::printf("kernel '%s': %d FI sites, %zu detectors, %d non-loop vars protected\n",
              k.name.c_str(), v.fi_report.fi_sites, v.ft.detectors.size(),
              v.ft_report.nonloop_protected);

  // 2. Profile value ranges on a training run.
  gpusim::Device dev;
  DotJob job(1024);
  const auto profile = core::profile(dev, v, {&job});
  auto cb = core::make_configured_control_block(v.fift, profile);
  for (const auto& d : cb->detectors())
    if (d.configured)
      std::printf("detector '%s': ranges %s\n", d.meta.name.c_str(), d.ranges.to_string().c_str());

  // 3. Protected fault-free run: no alarm, modest overhead.
  const auto base_args = job.setup(dev);
  const auto base = dev.launch(v.baseline, job.config(), base_args);
  const auto ft_args = job.setup(dev);
  gpusim::LaunchOptions ft_opts;
  ft_opts.hooks = cb.get();
  ft_opts.charge_control_block = true;
  const auto ft = dev.launch(v.ft, job.config(), ft_args, ft_opts);
  std::printf("\nfault-free protected run: alarm=%s, overhead=%.1f%%\n",
              ft.sdc_alarm ? "YES" : "no",
              100.0 * (static_cast<double>(ft.cycles) - static_cast<double>(base.cycles)) /
                  static_cast<double>(base.cycles));

  // 4. Inject a fault into the accumulator and watch Hauberk catch it.
  swifi::PlanOptions popt;
  popt.max_vars = 50;
  popt.masks_per_var = 1;
  popt.error_bits = 6;
  const auto specs = swifi::plan_faults(v.fift, profile, popt);
  const auto golden = swifi::golden_run(dev, v.fift, job, cb.get());
  workloads::Requirement req;
  req.kind = workloads::Requirement::Kind::GlobalRel;
  req.global_rel = 1e-4;
  req.rel = 0.002;

  int caught = 0, total = 0;
  for (const auto& spec : specs) {
    const auto o = swifi::run_one_fault(dev, v.fift, job, cb.get(), spec, golden.output, req,
                                        10'000'000);
    if (o == swifi::Outcome::NotActivated) continue;
    ++total;
    caught += o != swifi::Outcome::Undetected;
  }
  std::printf("injected %d faults: %d detected/masked/crashed, %d silent corruptions\n"
              "=> detection coverage %.1f%%\n",
              total, caught, total - caught, 100.0 * caught / total);
  return 0;
}
