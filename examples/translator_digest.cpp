// Translator golden-equivalence harness.
//
// Hashes the instrumented bytecode the Hauberk translator produces for every
// workload (7 Parboil + 2 graphics + 3 CPU programs) across all four library
// modes and the Maxvar / naive-duplication / Hauberk-L / Hauberk-NL ablation
// axes, and compares the digests against a checked-in golden file.  Any
// refactor of the translator (e.g. the pass-manager decomposition) must keep
// every digest bit-identical; a drifting configuration fails the check and
// its instrumented KIR source + disassembly are dumped for inspection.
//
// Usage:
//   translator_digest --print                 print all digests to stdout
//   translator_digest --update=FILE           (re)write the golden file
//   translator_digest --check=FILE            compare against FILE; exit 1 on
//                                             drift [--dump-dir=DIR]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "hauberk/translator.hpp"
#include "kir/bytecode.hpp"
#include "kir/printer.hpp"
#include "workloads/workload.hpp"

using namespace hauberk;

namespace {

// The digest itself (FNV-1a over every semantically meaningful bytecode
// field) lives in kir::program_digest so the printer round-trip tests pin on
// the exact same definition.
using kir::program_digest;

// --- the configuration matrix ---

struct Config {
  std::string name;
  core::TranslateOptions opt;
};

std::vector<Config> configs() {
  std::vector<Config> out;
  const struct {
    core::LibMode mode;
    const char* tag;
  } modes[] = {{core::LibMode::Profiler, "profiler"},
               {core::LibMode::FT, "ft"},
               {core::LibMode::FI, "fi"},
               {core::LibMode::FIFT, "fift"}};
  for (const auto& m : modes) {
    for (const int maxvar : {1, 2}) {
      for (const bool naive : {false, true}) {
        Config c;
        c.opt.mode = m.mode;
        c.opt.maxvar = maxvar;
        c.opt.naive_duplication = naive;
        c.name = std::string(m.tag) + ".maxvar" + std::to_string(maxvar) +
                 (naive ? ".naive" : "");
        out.push_back(std::move(c));
      }
    }
  }
  // Hauberk-L (loop detectors only) and Hauberk-NL (non-loop only) ablations.
  Config l;
  l.opt.mode = core::LibMode::FT;
  l.opt.protect_nonloop = false;
  l.name = "ft.hauberk-l";
  out.push_back(std::move(l));
  Config nl;
  nl.opt.mode = core::LibMode::FT;
  nl.opt.protect_loop = false;
  nl.name = "ft.hauberk-nl";
  out.push_back(std::move(nl));
  return out;
}

std::vector<std::unique_ptr<workloads::Workload>> all_workloads() {
  std::vector<std::unique_ptr<workloads::Workload>> out;
  for (auto& w : workloads::hpc_suite()) out.push_back(std::move(w));
  for (auto& w : workloads::graphics_suite()) out.push_back(std::move(w));
  for (auto& w : workloads::cpu_suite()) out.push_back(std::move(w));
  out.push_back(workloads::make_cpu_matmul());  // not in cpu_suite (Fig. 1 code class)
  return out;
}

struct Entry {
  std::string workload, config;
  std::uint64_t digest = 0;
  kir::Kernel instrumented;  ///< kept for drift dumps
};

std::vector<Entry> compute_all() {
  std::vector<Entry> out;
  const auto cfgs = configs();
  for (const auto& w : all_workloads()) {
    const auto kernel = w->build_kernel(workloads::Scale::Small);
    for (const auto& c : cfgs) {
      Entry e;
      e.workload = w->name();
      e.config = c.name;
      e.instrumented = core::translate(kernel, c.opt);
      e.digest = program_digest(kir::lower(e.instrumented));
      out.push_back(std::move(e));
    }
  }
  return out;
}

std::string line_of(const Entry& e) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-12s %-24s %016llx", e.workload.c_str(), e.config.c_str(),
                static_cast<unsigned long long>(e.digest));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  common::CliArgs args(argc, argv);
  const auto entries = compute_all();

  if (args.has("print") || (!args.has("check") && !args.has("update"))) {
    for (const auto& e : entries) std::printf("%s\n", line_of(e).c_str());
    return 0;
  }

  if (args.has("update")) {
    const std::string path = args.get("update");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << "# Instrumented-bytecode digests: workload, translator config, FNV-1a64.\n"
           "# Regenerate with: translator_digest --update=tests/golden/translator_digests.txt\n";
    for (const auto& e : entries) out << line_of(e) << "\n";
    std::printf("wrote %zu digests to %s\n", entries.size(), path.c_str());
    return 0;
  }

  // --check mode.
  const std::string path = args.get("check");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read golden file %s\n", path.c_str());
    return 1;
  }
  std::map<std::string, std::uint64_t> golden;  // "workload config" -> digest
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string w, c, h;
    if (!(ls >> w >> c >> h)) continue;
    golden[w + " " + c] = std::strtoull(h.c_str(), nullptr, 16);
  }

  const std::string dump_dir = args.get("dump-dir", "");
  int drift = 0, missing = 0;
  for (const auto& e : entries) {
    const auto it = golden.find(e.workload + " " + e.config);
    if (it == golden.end()) {
      std::fprintf(stderr, "MISSING golden entry: %s %s\n", e.workload.c_str(),
                   e.config.c_str());
      ++missing;
      continue;
    }
    if (it->second != e.digest) {
      std::fprintf(stderr, "DRIFT %s %s: golden %016llx, got %016llx\n", e.workload.c_str(),
                   e.config.c_str(), static_cast<unsigned long long>(it->second),
                   static_cast<unsigned long long>(e.digest));
      ++drift;
      if (!dump_dir.empty()) {
        std::string base = dump_dir + "/" + e.workload + "." + e.config;
        for (auto& ch : base)
          if (ch == ' ' || ch == '+') ch = '_';
        std::ofstream ks(base + ".kir");
        ks << kir::print_kernel(e.instrumented);
        std::ofstream ds(base + ".disasm");
        ds << kir::disassemble(kir::lower(e.instrumented));
      }
    }
  }
  if (golden.size() != entries.size())
    std::fprintf(stderr, "note: golden file has %zu entries, harness computed %zu\n",
                 golden.size(), entries.size());
  if (drift || missing) {
    std::fprintf(stderr, "translator drift: %d mismatches, %d missing (of %zu)\n", drift,
                 missing, entries.size());
    return 1;
  }
  std::printf("all %zu instrumented-bytecode digests match %s\n", entries.size(), path.c_str());
  return 0;
}
