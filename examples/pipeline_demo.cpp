// Multi-kernel protection demo: the HISTO-EQ histogram-equalization program
// (three dependent kernels) runs under per-kernel Hauberk protection; a
// transient hardware fault strikes mid-pipeline and is transparently
// recovered by the guardian's checkpointed reexecution.
#include <cstdio>

#include "hauberk/pipeline.hpp"
#include "hauberk/runtime.hpp"
#include "workloads/histo_eq.hpp"

using namespace hauberk;
using namespace hauberk::core;
using workloads::HistoEq;

int main() {
  const auto image = HistoEq::make_image(3, 1024);
  const auto kernels = HistoEq::build_kernels();

  std::vector<KernelVariants> variants;
  std::vector<std::unique_ptr<ControlBlock>> cbs;
  std::vector<PipelineStage> stages;
  std::vector<const kir::BytecodeProgram*> baselines;
  for (const auto& k : kernels) {
    variants.push_back(build_variants(k));
    std::printf("kernel %-12s %zu detectors, %d non-loop vars protected\n", k.name.c_str(),
                variants.back().ft.detectors.size(),
                variants.back().ft_report.nonloop_protected);
  }
  for (auto& v : variants) {
    cbs.push_back(std::make_unique<ControlBlock>(v.ft));
    stages.push_back({&v.ft, cbs.back().get()});
    baselines.push_back(&v.baseline);
  }

  HistoEq::Job job{image};
  gpusim::Device dev;

  // Inject a transient ALU fault that will corrupt the histogram kernel.
  gpusim::DeviceFaultModel fm;
  fm.kind = gpusim::DeviceFaultModel::Kind::Transient;
  fm.component = gpusim::DeviceFaultModel::Component::ALU;
  fm.mask = 0x00003f00;
  fm.duration_ops = 16;
  dev.install_fault(fm);

  Guardian guardian;
  const auto out = run_pipeline_protected(guardian, dev, nullptr, stages, baselines, job);

  std::printf("\npipeline %s after %d kernel executions\n",
              out.completed ? "completed" : "FAILED", out.total_executions);
  for (std::size_t s = 0; s < out.stages.size(); ++s)
    std::printf("  stage %zu (%s): %s, %d executions, %d checkpoint restores\n", s,
                kernels[s].name.c_str(), recovery_verdict_name(out.stages[s].verdict),
                out.stages[s].executions, out.stages[s].checkpoint_restores);

  const auto golden = HistoEq::golden(image);
  bool correct = out.output.words.size() == golden.size();
  for (std::size_t i = 0; correct && i < golden.size(); ++i)
    correct = static_cast<std::int32_t>(out.output.words[i]) == golden[i];
  std::printf("final output %s the native golden equalization\n",
              correct ? "MATCHES" : "DIFFERS FROM");
  return correct ? 0 : 1;
}
